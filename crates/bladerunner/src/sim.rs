//! The full-system discrete-event simulation.
//!
//! [`SystemSim`] wires every sans-io component together and drives them
//! with the [`simkit`] event queue: each output effect becomes a future
//! event, delayed by a sampled hop latency from the
//! [`crate::latency::LatencyModel`]. All randomness flows
//! from one seed, so any run is exactly reproducible.
//!
//! # Sharded parallel execution
//!
//! The system is partitioned into `config.logical_shards` independent
//! event loops ([`Shard`]), each owning a disjoint slice of the world:
//! devices and POPs shard by `device % pops` (a device always lives with
//! its POP), reverse proxies by `proxy`, BRASS hosts by `host`, and the
//! singleton backend (WAS, TAO, Pylon) lives on shard 0. Each shard has
//! its own event queue, RNG stream, metrics, and trace buffer.
//!
//! Execution proceeds in conservative windows: every round the
//! coordinator computes the earliest pending event across shards and runs
//! each shard — serially or on a worker pool, see
//! [`SystemSim::set_workers`] — up to `next + lookahead`, where the
//! lookahead is [`LatencyModel::min_cross_shard_hop`]. Events that target
//! another shard are collected in per-shard outboxes, merged at the
//! window barrier in `(time, src_shard, seq)` order
//! ([`simkit::shard::merge`]), clamped out of the closed window
//! ([`simkit::shard::clamp_to_window`]) and delivered before the
//! destination pops anything from the next window. Shared read-mostly
//! state (trace registry, topic subscriptions, device routing) lives
//! behind a lock that shards only *read* during a window; all writes are
//! queued as [`SharedOp`]s and applied at the barrier in shard order.
//!
//! The result is a simulation whose outputs are a pure function of
//! `(config, seed, workload)` — the worker count only decides which OS
//! thread executes a shard's window, never the order anything merges.

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, RwLock, RwLockReadGuard};

use brass::app::{DeviceId, FetchToken, WasRequest, WasResponse};
use brass::host::{BrassHost, HostConfig, HostEffect};
use burst::flow::{Admit, FlowWindow};
use burst::frame::{Delta, FlowStatus, Frame, StreamId};
use burst::json::Json;
use edge::device::{Device, DeviceOutput};
use edge::pop::{Pop, PopEffect};
use edge::proxy::{ProxyEffect, ReverseProxy};
use pylon::{HostId, PylonCluster, Topic};
use simkit::fxhash::{FxHashMap, FxHashSet};
use simkit::queue::EventQueue;
use simkit::rng::DetRng;
use simkit::shard::{clamp_to_window, merge, Envelope};
use simkit::snap::{self, Fp64, Snap, SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::{SimDuration, SimTime};
use simkit::trace::{DropReason, Hop, HopOutcome, TraceId, TraceLedger};
use tao::{ObjectId, Tao};
use was::service::{Rv, WebApplicationServer};
use was::UpdateEvent;

use crate::config::{LinkClass, SystemConfig};
use crate::latency::LatencyModel;
use crate::metrics::SystemMetrics;

/// Per-subsystem event-loop accounting: how many events the simulator
/// popped and handled, grouped by the layer the event models. This is the
/// denominator of the `scale` bench's events/sec figure and shows where
/// simulated work concentrates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// All events handled.
    pub total: u64,
    /// Workload injections: subscribes, cancels, mutations.
    pub workload: u64,
    /// Pylon publish / fan-out / subscription / node events.
    pub pylon: u64,
    /// TAO cross-region replication applies.
    pub tao: u64,
    /// BRASS-side work: WAS round-trips, timers, host maintenance.
    pub brass: u64,
    /// Client → server frame hops (POP, proxy, BRASS arrival).
    pub transport_up: u64,
    /// Server → client frame hops (proxy, POP, device arrival).
    pub transport_down: u64,
    /// Device churn: drops, reconnects and disconnect teardown.
    pub device_churn: u64,
    /// Fault-plan episodes: crashes, outages, recoveries, repairs.
    pub faults: u64,
    /// Heartbeat ticks, pings and pong round-trips.
    pub heartbeats: u64,
    /// Periodic metrics ticks (driven by the coordinator).
    pub metrics: u64,
}

impl EventStats {
    fn note(&mut self, ev: &Ev) {
        self.total += 1;
        let bucket = match ev {
            Ev::DeviceSubscribe { .. } | Ev::DeviceCancel { .. } | Ev::WasMutationExec { .. } => {
                &mut self.workload
            }
            Ev::PylonPublish { .. }
            | Ev::PylonDeliverHost { .. }
            | Ev::PylonSubscribeExec { .. }
            | Ev::PylonUnsubscribeExec { .. }
            | Ev::PylonHostFailed { .. }
            | Ev::PylonNode { .. } => &mut self.pylon,
            Ev::TaoReplicate { .. } => &mut self.tao,
            Ev::WasExec { .. }
            | Ev::WasReply { .. }
            | Ev::BrassTimer { .. }
            | Ev::BrassRedirect { .. }
            | Ev::BrassUpgrade { .. }
            | Ev::BrassHostBack { .. }
            | Ev::WasBackfillExec { .. }
            | Ev::NoteBackfill { .. } => &mut self.brass,
            Ev::AtPop { .. } | Ev::AtProxy { .. } | Ev::AtBrass { .. } => &mut self.transport_up,
            Ev::DownAtProxy { .. } | Ev::DownAtPop { .. } | Ev::AtDevice { .. } => {
                &mut self.transport_down
            }
            Ev::DeviceDrop { .. } | Ev::DeviceReconnect { .. } | Ev::ProxyDeviceGone { .. } => {
                &mut self.device_churn
            }
            Ev::BrassCrash { .. }
            | Ev::BrassRecover { .. }
            | Ev::ProxyOutage { .. }
            | Ev::ProxyBack { .. }
            | Ev::ProxyHostFailed { .. }
            | Ev::ProxyAddHost { .. }
            | Ev::ProxyHostRestarted { .. }
            | Ev::PopProxyFailed { .. }
            | Ev::PopAddProxy { .. }
            | Ev::DeviceVanish { .. } => &mut self.faults,
            Ev::HeartbeatTick | Ev::HbPingAtHost { .. } | Ev::PongFromHost { .. } => {
                &mut self.heartbeats
            }
        };
        *bucket += 1;
    }

    /// Field-wise accumulation (shard aggregation).
    fn accumulate(&mut self, other: &EventStats) {
        self.total += other.total;
        self.workload += other.workload;
        self.pylon += other.pylon;
        self.tao += other.tao;
        self.brass += other.brass;
        self.transport_up += other.transport_up;
        self.transport_down += other.transport_down;
        self.device_churn += other.device_churn;
        self.faults += other.faults;
        self.heartbeats += other.heartbeats;
        self.metrics += other.metrics;
    }

    /// The eleven counters in declaration order (snapshot layout).
    fn fields(&self) -> [u64; 11] {
        [
            self.total,
            self.workload,
            self.pylon,
            self.tao,
            self.brass,
            self.transport_up,
            self.transport_down,
            self.device_churn,
            self.faults,
            self.heartbeats,
            self.metrics,
        ]
    }

    /// Writes the stats into a snapshot.
    fn snap(&self, w: &mut SnapWriter) {
        for v in self.fields() {
            w.put_u64(v);
        }
    }

    /// Reads stats back, rejecting totals that don't add up: `total` is
    /// exactly the sum of the per-subsystem buckets by construction.
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let s = EventStats {
            total: r.get_u64()?,
            workload: r.get_u64()?,
            pylon: r.get_u64()?,
            tao: r.get_u64()?,
            brass: r.get_u64()?,
            transport_up: r.get_u64()?,
            transport_down: r.get_u64()?,
            device_churn: r.get_u64()?,
            faults: r.get_u64()?,
            heartbeats: r.get_u64()?,
            metrics: r.get_u64()?,
        };
        let buckets: u64 = s.fields()[1..].iter().sum();
        if buckets != s.total {
            return Err(SnapError::Invalid(format!(
                "event-stats buckets sum to {buckets}, total says {}",
                s.total
            )));
        }
        Ok(s)
    }

    /// Folds every counter into a rolling fingerprint.
    fn mix_fp(&self, fp: &mut Fp64) {
        for v in self.fields() {
            fp.mix_u64(v);
        }
    }
}

/// A simulation event.
#[derive(Debug)]
enum Ev {
    // ------------------------------------------------------------------
    // Workload.
    // ------------------------------------------------------------------
    /// A device opens a new request-stream with this header.
    DeviceSubscribe { device: u64, header: Json },
    /// A device cancels a stream.
    DeviceCancel { device: u64, sid: StreamId },
    /// A device issues a GraphQL mutation (already includes last-mile
    /// latency; `app` classifies it for metrics).
    WasMutationExec { gql: String, app: &'static str },

    // ------------------------------------------------------------------
    // Backend publish path.
    // ------------------------------------------------------------------
    /// An update event reaches Pylon. Boxed: every pending queue entry
    /// pays `size_of::<Ev>()`, so the fat payload lives behind a pointer.
    PylonPublish { event: Box<UpdateEvent> },
    /// Pylon forwards an event to one BRASS host. The event is shared:
    /// fanning out to N hosts enqueues N pointers to one allocation.
    PylonDeliverHost {
        host: usize,
        event: Arc<UpdateEvent>,
    },
    /// A cross-region TAO cache invalidation applies.
    TaoReplicate { event: Box<tao::ReplicationEvent> },

    // ------------------------------------------------------------------
    // BRASS subscriptions and async work.
    // ------------------------------------------------------------------
    /// A BRASS host's subscribe reaches (and replicates within) Pylon.
    PylonSubscribeExec {
        host: usize,
        topic: Topic,
        attempt: u32,
    },
    /// A BRASS host's unsubscribe reaches Pylon.
    PylonUnsubscribeExec { host: usize, topic: Topic },
    /// A BRASS-issued WAS request executes at the WAS.
    WasExec {
        host: usize,
        app: String,
        token: FetchToken,
        request: WasRequest,
        attributed: Option<SimTime>,
    },
    /// The WAS response arrives back at the BRASS.
    WasReply {
        host: usize,
        app: String,
        token: FetchToken,
        response: WasResponse,
        attributed: Option<SimTime>,
    },
    /// An application timer fires.
    BrassTimer {
        host: usize,
        app: String,
        token: u64,
    },

    // ------------------------------------------------------------------
    // Frame transport, client → server.
    // ------------------------------------------------------------------
    /// A device frame arrives at its POP. Frames are boxed throughout the
    /// transport variants: one long-lived timer or in-flight frame per
    /// stream would otherwise inflate every `Ev` in the wheel to the size
    /// of the fattest variant.
    AtPop { device: u64, frame: Box<Frame> },
    /// A frame arrives at a reverse proxy.
    AtProxy {
        proxy: usize,
        device: u64,
        frame: Box<Frame>,
    },
    /// A frame arrives at a BRASS host.
    AtBrass {
        host: usize,
        device: u64,
        frame: Box<Frame>,
    },

    // ------------------------------------------------------------------
    // Frame transport, server → client.
    // ------------------------------------------------------------------
    /// A response frame arrives at the stream's proxy on its way down.
    /// The proxy is resolved from the routing registry when the BRASS
    /// sends the frame; frames for devices with no known route are
    /// dropped at send time (they had nowhere to go).
    DownAtProxy {
        proxy: usize,
        /// The BRASS host that sent the frame; data flowing through the
        /// proxy credits this host's heartbeat monitor (a host drowning
        /// in load still proves liveness by the very frames it emits).
        host: usize,
        device: u64,
        frame: Box<Frame>,
        sent_at: SimTime,
    },
    /// A response frame arrives at the device's POP.
    DownAtPop {
        device: u64,
        frame: Box<Frame>,
        sent_at: SimTime,
    },
    /// A response frame arrives at the device.
    AtDevice {
        device: u64,
        frame: Box<Frame>,
        sent_at: SimTime,
    },

    // ------------------------------------------------------------------
    // Failures and maintenance.
    // ------------------------------------------------------------------
    /// A device's last-mile connection drops.
    DeviceDrop { device: u64 },
    /// A dropped device reconnects and resubscribes its streams.
    DeviceReconnect { device: u64, frames: Vec<Frame> },
    /// A BRASS redirects one stream to another host (load rebalancing).
    BrassRedirect {
        host: usize,
        device: u64,
        sid: StreamId,
        to_host: usize,
    },
    /// A BRASS host is drained for a software upgrade (proxies repair its
    /// streams onto other hosts).
    BrassUpgrade { host: usize },
    /// An upgraded BRASS host rejoins the routing pools.
    BrassHostBack { host: usize },
    /// A Pylon subscriber-KV node goes down / comes back.
    PylonNode { node: u64, up: bool },

    // ------------------------------------------------------------------
    // Chaos: unplanned failures and heartbeat-driven detection.
    // ------------------------------------------------------------------
    /// An *unplanned* BRASS host crash: its in-memory state dies and —
    /// unlike [`Ev::BrassUpgrade`] — nobody is told. Proxies learn only by
    /// missed heartbeat pongs.
    BrassCrash { host: usize },
    /// A crashed BRASS host comes back up (empty) and rejoins the pools.
    BrassRecover { host: usize },
    /// A reverse proxy goes dark (regional outage); POPs repair its
    /// streams onto surviving proxies.
    ProxyOutage { proxy: usize },
    /// A recovered reverse proxy rejoins its POPs.
    ProxyBack { proxy: usize },
    /// A device's last-mile link dies silently (no FIN): the server side
    /// learns only via POP heartbeats; the device reconnects with backoff.
    DeviceVanish { device: u64 },
    /// The per-shard heartbeat tick driving proxy→BRASS (and optionally
    /// POP→device) monitors for the proxies and POPs this shard owns.
    /// Never crosses shards: each shard self-schedules its own.
    HeartbeatTick,
    /// A proxy's heartbeat ping arrives at a BRASS host. The host-owning
    /// shard consults the *authoritative* liveness flag; a dead host
    /// simply never answers.
    HbPingAtHost {
        proxy: usize,
        host: usize,
        token: u64,
    },
    /// A live BRASS host's heartbeat answer arrives back at the proxy.
    PongFromHost {
        proxy: usize,
        host: usize,
        token: u64,
    },
    /// A device's gap-detection backfill poll executes at the WAS,
    /// recovering updates lost on the last mile.
    WasBackfillExec { device: u64, sid: StreamId },

    // ------------------------------------------------------------------
    // Cross-shard control messages (replacing what used to be direct
    // method calls between subsystems owned by different shards).
    // ------------------------------------------------------------------
    /// Pylon learns a BRASS host failed (heartbeat detection or planned
    /// drain) and purges its subscriptions. Runs on shard 0 with Pylon.
    PylonHostFailed { host: usize },
    /// A proxy learns a BRASS host failed (planned drain) and repairs the
    /// streams it had routed there.
    ProxyHostFailed { proxy: usize, host: usize },
    /// A proxy learns a BRASS host (re)joined and adds it to its pool.
    ProxyAddHost { proxy: usize, host: usize },
    /// A proxy observes its connections to a revived BRASS host reset:
    /// the crashed process restarted inside the heartbeat miss window,
    /// so detection never fired, but the new incarnation holds none of
    /// the old streams. The proxy re-establishes them from stored state.
    ProxyHostRestarted { proxy: usize, host: usize },
    /// A POP learns a reverse proxy went dark and repairs its streams
    /// onto surviving proxies.
    PopProxyFailed { pop: usize, proxy: usize },
    /// A POP learns a reverse proxy recovered.
    PopAddProxy { pop: usize, proxy: usize },
    /// A proxy learns (from a POP) that a device disconnected and tears
    /// its streams down.
    ProxyDeviceGone { proxy: usize, device: u64 },
    /// The device-owning shard learns that one of its streams lost a
    /// traced update somewhere else in the system, so a later backfill
    /// poll can recover it.
    NoteBackfill {
        device: u64,
        sid: StreamId,
        trace: TraceId,
    },
}

/// Routes an event to the shard owning the state it touches.
///
/// Devices co-locate with their POP (`device % pops`), so every
/// device-and-POP interaction is shard-local; proxies and hosts shard by
/// id; the singleton backend (WAS, TAO, Pylon) lives on shard 0.
fn shard_route(ev: &Ev, pops: usize, shards: usize) -> usize {
    let of_device = |d: u64| (d as usize % pops) % shards;
    match ev {
        Ev::DeviceSubscribe { device, .. }
        | Ev::DeviceCancel { device, .. }
        | Ev::DeviceDrop { device }
        | Ev::DeviceReconnect { device, .. }
        | Ev::DeviceVanish { device }
        | Ev::AtPop { device, .. }
        | Ev::DownAtPop { device, .. }
        | Ev::AtDevice { device, .. }
        | Ev::WasBackfillExec { device, .. }
        | Ev::NoteBackfill { device, .. } => of_device(*device),
        Ev::PopProxyFailed { pop, .. } | Ev::PopAddProxy { pop, .. } => pop % shards,
        Ev::AtProxy { proxy, .. }
        | Ev::DownAtProxy { proxy, .. }
        | Ev::ProxyOutage { proxy }
        | Ev::ProxyBack { proxy }
        | Ev::PongFromHost { proxy, .. }
        | Ev::ProxyHostFailed { proxy, .. }
        | Ev::ProxyAddHost { proxy, .. }
        | Ev::ProxyHostRestarted { proxy, .. }
        | Ev::ProxyDeviceGone { proxy, .. } => proxy % shards,
        Ev::AtBrass { host, .. }
        | Ev::WasReply { host, .. }
        | Ev::BrassTimer { host, .. }
        | Ev::BrassRedirect { host, .. }
        | Ev::BrassUpgrade { host }
        | Ev::BrassHostBack { host }
        | Ev::BrassCrash { host }
        | Ev::BrassRecover { host }
        | Ev::PylonDeliverHost { host, .. }
        | Ev::HbPingAtHost { host, .. } => host % shards,
        Ev::WasMutationExec { .. }
        | Ev::PylonPublish { .. }
        | Ev::TaoReplicate { .. }
        | Ev::PylonSubscribeExec { .. }
        | Ev::PylonUnsubscribeExec { .. }
        | Ev::WasExec { .. }
        | Ev::PylonNode { .. }
        | Ev::PylonHostFailed { .. } => 0,
        Ev::HeartbeatTick => unreachable!("heartbeat ticks are shard-local, never routed"),
    }
}

/// Maps a mutation-classification app name back to the `&'static str` the
/// scheduling helpers use. The set is closed (every `schedule_mutation`
/// call site passes one of these), so an unknown name in a snapshot means
/// the bytes don't describe a world this build can produce.
fn static_app(name: &str) -> Option<&'static str> {
    [
        "lvc",
        "typing",
        "active_status",
        "stories",
        "messenger",
        "likes",
        "notifications",
    ]
    .into_iter()
    .find(|s| *s == name)
}

/// One-line rendering of an event for the bisect event log, truncated so a
/// fat payload can't bloat the log.
fn ev_summary(ev: &Ev) -> String {
    let mut s = format!("{ev:?}");
    const MAX: usize = 160;
    if s.len() > MAX {
        let mut cut = MAX;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push('…');
    }
    s
}

/// Events are snapshotted with one tag byte per variant (declaration
/// order) followed by the fields in declaration order. `Box`/`Arc`
/// wrappers are memory shape, not state: they are flattened on write and
/// re-wrapped on read (an `Arc` shared across N queue entries restores as
/// N independent allocations, which no behaviour can observe).
impl Snap for Ev {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Ev::DeviceSubscribe { device, header } => {
                w.put_u8(0);
                w.put_u64(*device);
                header.snap(w);
            }
            Ev::DeviceCancel { device, sid } => {
                w.put_u8(1);
                w.put_u64(*device);
                sid.snap(w);
            }
            Ev::WasMutationExec { gql, app } => {
                w.put_u8(2);
                w.put_str(gql);
                w.put_str(app);
            }
            Ev::PylonPublish { event } => {
                w.put_u8(3);
                event.snap(w);
            }
            Ev::PylonDeliverHost { host, event } => {
                w.put_u8(4);
                w.put_usize(*host);
                event.snap(w);
            }
            Ev::TaoReplicate { event } => {
                w.put_u8(5);
                event.snap(w);
            }
            Ev::PylonSubscribeExec {
                host,
                topic,
                attempt,
            } => {
                w.put_u8(6);
                w.put_usize(*host);
                topic.snap(w);
                w.put_u32(*attempt);
            }
            Ev::PylonUnsubscribeExec { host, topic } => {
                w.put_u8(7);
                w.put_usize(*host);
                topic.snap(w);
            }
            Ev::WasExec {
                host,
                app,
                token,
                request,
                attributed,
            } => {
                w.put_u8(8);
                w.put_usize(*host);
                w.put_str(app);
                token.snap(w);
                request.snap(w);
                attributed.snap(w);
            }
            Ev::WasReply {
                host,
                app,
                token,
                response,
                attributed,
            } => {
                w.put_u8(9);
                w.put_usize(*host);
                w.put_str(app);
                token.snap(w);
                response.snap(w);
                attributed.snap(w);
            }
            Ev::BrassTimer { host, app, token } => {
                w.put_u8(10);
                w.put_usize(*host);
                w.put_str(app);
                w.put_u64(*token);
            }
            Ev::AtPop { device, frame } => {
                w.put_u8(11);
                w.put_u64(*device);
                frame.snap(w);
            }
            Ev::AtProxy {
                proxy,
                device,
                frame,
            } => {
                w.put_u8(12);
                w.put_usize(*proxy);
                w.put_u64(*device);
                frame.snap(w);
            }
            Ev::AtBrass {
                host,
                device,
                frame,
            } => {
                w.put_u8(13);
                w.put_usize(*host);
                w.put_u64(*device);
                frame.snap(w);
            }
            Ev::DownAtProxy {
                proxy,
                host,
                device,
                frame,
                sent_at,
            } => {
                w.put_u8(14);
                w.put_usize(*proxy);
                w.put_usize(*host);
                w.put_u64(*device);
                frame.snap(w);
                sent_at.snap(w);
            }
            Ev::DownAtPop {
                device,
                frame,
                sent_at,
            } => {
                w.put_u8(15);
                w.put_u64(*device);
                frame.snap(w);
                sent_at.snap(w);
            }
            Ev::AtDevice {
                device,
                frame,
                sent_at,
            } => {
                w.put_u8(16);
                w.put_u64(*device);
                frame.snap(w);
                sent_at.snap(w);
            }
            Ev::DeviceDrop { device } => {
                w.put_u8(17);
                w.put_u64(*device);
            }
            Ev::DeviceReconnect { device, frames } => {
                w.put_u8(18);
                w.put_u64(*device);
                w.put_usize(frames.len());
                for f in frames {
                    f.snap(w);
                }
            }
            Ev::BrassRedirect {
                host,
                device,
                sid,
                to_host,
            } => {
                w.put_u8(19);
                w.put_usize(*host);
                w.put_u64(*device);
                sid.snap(w);
                w.put_usize(*to_host);
            }
            Ev::BrassUpgrade { host } => {
                w.put_u8(20);
                w.put_usize(*host);
            }
            Ev::BrassHostBack { host } => {
                w.put_u8(21);
                w.put_usize(*host);
            }
            Ev::PylonNode { node, up } => {
                w.put_u8(22);
                w.put_u64(*node);
                w.put_bool(*up);
            }
            Ev::BrassCrash { host } => {
                w.put_u8(23);
                w.put_usize(*host);
            }
            Ev::BrassRecover { host } => {
                w.put_u8(24);
                w.put_usize(*host);
            }
            Ev::ProxyOutage { proxy } => {
                w.put_u8(25);
                w.put_usize(*proxy);
            }
            Ev::ProxyBack { proxy } => {
                w.put_u8(26);
                w.put_usize(*proxy);
            }
            Ev::DeviceVanish { device } => {
                w.put_u8(27);
                w.put_u64(*device);
            }
            Ev::HeartbeatTick => w.put_u8(28),
            Ev::HbPingAtHost { proxy, host, token } => {
                w.put_u8(29);
                w.put_usize(*proxy);
                w.put_usize(*host);
                w.put_u64(*token);
            }
            Ev::PongFromHost { proxy, host, token } => {
                w.put_u8(30);
                w.put_usize(*proxy);
                w.put_usize(*host);
                w.put_u64(*token);
            }
            Ev::WasBackfillExec { device, sid } => {
                w.put_u8(31);
                w.put_u64(*device);
                sid.snap(w);
            }
            Ev::PylonHostFailed { host } => {
                w.put_u8(32);
                w.put_usize(*host);
            }
            Ev::ProxyHostFailed { proxy, host } => {
                w.put_u8(33);
                w.put_usize(*proxy);
                w.put_usize(*host);
            }
            Ev::ProxyAddHost { proxy, host } => {
                w.put_u8(34);
                w.put_usize(*proxy);
                w.put_usize(*host);
            }
            Ev::ProxyHostRestarted { proxy, host } => {
                w.put_u8(39);
                w.put_usize(*proxy);
                w.put_usize(*host);
            }
            Ev::PopProxyFailed { pop, proxy } => {
                w.put_u8(35);
                w.put_usize(*pop);
                w.put_usize(*proxy);
            }
            Ev::PopAddProxy { pop, proxy } => {
                w.put_u8(36);
                w.put_usize(*pop);
                w.put_usize(*proxy);
            }
            Ev::ProxyDeviceGone { proxy, device } => {
                w.put_u8(37);
                w.put_usize(*proxy);
                w.put_u64(*device);
            }
            Ev::NoteBackfill { device, sid, trace } => {
                w.put_u8(38);
                w.put_u64(*device);
                sid.snap(w);
                trace.snap(w);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Ev> {
        let tag = r.get_u8()?;
        Ok(match tag {
            0 => Ev::DeviceSubscribe {
                device: r.get_u64()?,
                header: Json::restore(r)?,
            },
            1 => Ev::DeviceCancel {
                device: r.get_u64()?,
                sid: StreamId::restore(r)?,
            },
            2 => {
                let gql = r.get_str()?;
                let name = r.get_str()?;
                let app = static_app(&name)
                    .ok_or_else(|| SnapError::Invalid(format!("unknown mutation app {name:?}")))?;
                Ev::WasMutationExec { gql, app }
            }
            3 => Ev::PylonPublish {
                event: Box::new(UpdateEvent::restore(r)?),
            },
            4 => Ev::PylonDeliverHost {
                host: r.get_usize()?,
                event: Arc::new(UpdateEvent::restore(r)?),
            },
            5 => Ev::TaoReplicate {
                event: Box::new(tao::ReplicationEvent::restore(r)?),
            },
            6 => Ev::PylonSubscribeExec {
                host: r.get_usize()?,
                topic: Topic::restore(r)?,
                attempt: r.get_u32()?,
            },
            7 => Ev::PylonUnsubscribeExec {
                host: r.get_usize()?,
                topic: Topic::restore(r)?,
            },
            8 => Ev::WasExec {
                host: r.get_usize()?,
                app: r.get_str()?,
                token: FetchToken::restore(r)?,
                request: WasRequest::restore(r)?,
                attributed: Option::<SimTime>::restore(r)?,
            },
            9 => Ev::WasReply {
                host: r.get_usize()?,
                app: r.get_str()?,
                token: FetchToken::restore(r)?,
                response: WasResponse::restore(r)?,
                attributed: Option::<SimTime>::restore(r)?,
            },
            10 => Ev::BrassTimer {
                host: r.get_usize()?,
                app: r.get_str()?,
                token: r.get_u64()?,
            },
            11 => Ev::AtPop {
                device: r.get_u64()?,
                frame: Box::new(Frame::restore(r)?),
            },
            12 => Ev::AtProxy {
                proxy: r.get_usize()?,
                device: r.get_u64()?,
                frame: Box::new(Frame::restore(r)?),
            },
            13 => Ev::AtBrass {
                host: r.get_usize()?,
                device: r.get_u64()?,
                frame: Box::new(Frame::restore(r)?),
            },
            14 => Ev::DownAtProxy {
                proxy: r.get_usize()?,
                host: r.get_usize()?,
                device: r.get_u64()?,
                frame: Box::new(Frame::restore(r)?),
                sent_at: SimTime::restore(r)?,
            },
            15 => Ev::DownAtPop {
                device: r.get_u64()?,
                frame: Box::new(Frame::restore(r)?),
                sent_at: SimTime::restore(r)?,
            },
            16 => Ev::AtDevice {
                device: r.get_u64()?,
                frame: Box::new(Frame::restore(r)?),
                sent_at: SimTime::restore(r)?,
            },
            17 => Ev::DeviceDrop {
                device: r.get_u64()?,
            },
            18 => {
                let device = r.get_u64()?;
                let n = r.get_len()?;
                let mut frames = Vec::with_capacity(n);
                for _ in 0..n {
                    frames.push(Frame::restore(r)?);
                }
                Ev::DeviceReconnect { device, frames }
            }
            19 => Ev::BrassRedirect {
                host: r.get_usize()?,
                device: r.get_u64()?,
                sid: StreamId::restore(r)?,
                to_host: r.get_usize()?,
            },
            20 => Ev::BrassUpgrade {
                host: r.get_usize()?,
            },
            21 => Ev::BrassHostBack {
                host: r.get_usize()?,
            },
            22 => Ev::PylonNode {
                node: r.get_u64()?,
                up: r.get_bool()?,
            },
            23 => Ev::BrassCrash {
                host: r.get_usize()?,
            },
            24 => Ev::BrassRecover {
                host: r.get_usize()?,
            },
            25 => Ev::ProxyOutage {
                proxy: r.get_usize()?,
            },
            26 => Ev::ProxyBack {
                proxy: r.get_usize()?,
            },
            27 => Ev::DeviceVanish {
                device: r.get_u64()?,
            },
            28 => Ev::HeartbeatTick,
            29 => Ev::HbPingAtHost {
                proxy: r.get_usize()?,
                host: r.get_usize()?,
                token: r.get_u64()?,
            },
            30 => Ev::PongFromHost {
                proxy: r.get_usize()?,
                host: r.get_usize()?,
                token: r.get_u64()?,
            },
            31 => Ev::WasBackfillExec {
                device: r.get_u64()?,
                sid: StreamId::restore(r)?,
            },
            32 => Ev::PylonHostFailed {
                host: r.get_usize()?,
            },
            33 => Ev::ProxyHostFailed {
                proxy: r.get_usize()?,
                host: r.get_usize()?,
            },
            34 => Ev::ProxyAddHost {
                proxy: r.get_usize()?,
                host: r.get_usize()?,
            },
            35 => Ev::PopProxyFailed {
                pop: r.get_usize()?,
                proxy: r.get_usize()?,
            },
            36 => Ev::PopAddProxy {
                pop: r.get_usize()?,
                proxy: r.get_usize()?,
            },
            37 => Ev::ProxyDeviceGone {
                proxy: r.get_usize()?,
                device: r.get_u64()?,
            },
            38 => Ev::NoteBackfill {
                device: r.get_u64()?,
                sid: StreamId::restore(r)?,
                trace: TraceId::restore(r)?,
            },
            39 => Ev::ProxyHostRestarted {
                proxy: r.get_usize()?,
                host: r.get_usize()?,
            },
            other => return Err(SnapError::Invalid(format!("unknown event tag {other}"))),
        })
    }
}

/// A device's protocol machine, either live or parked in its compact
/// hibernation form.
///
/// Parking and rehydrating are pure data transforms ([`Device::hibernate`]
/// / [`Device::rehydrate`]): no RNG draws, no scheduling, no observable
/// state change — so whether a device happens to be parked when an event
/// arrives can never perturb results, only resident bytes.
enum DeviceSlot {
    Live(Device),
    Parked(Box<[u8]>),
}

struct DeviceState {
    slot: DeviceSlot,
    link: LinkClass,
    /// Interned header language: an index into [`SystemSim`]'s lang table
    /// (devices overwhelmingly share a handful of languages, so a u16 id
    /// replaces a per-device heap `String`).
    lang: u16,
    connected: bool,
    /// Consecutive recent drops, driving exponential reconnect backoff.
    drop_streak: u32,
    /// When the last drop happened (streaks decay after quiet periods).
    last_drop_at: SimTime,
    /// Earliest time the next downstream frame may reach the device. The
    /// device ↔ POP link is one ordered connection, so frames must not
    /// overtake each other just because their latency samples happened to
    /// invert — a reordered reliable-app frame would be discarded as
    /// stale, turning a latency fluke into a lost message.
    next_arrival: SimTime,
    /// Egress flow-control window over the last mile: data bytes put on
    /// the wire and not yet arrived. Sized by
    /// `config.egress_window_bytes` (0 = flow control off).
    flow: FlowWindow,
    /// Streams told `FlowStatus::Degraded` and still owed their terminal
    /// `Recovered` once the window drains.
    degraded_sids: Vec<StreamId>,
    /// Frames (data *and* control) currently on the wire toward the
    /// device — the POP-egress queue depth.
    inflight_frames: u64,
}

impl DeviceState {
    /// The live device machine, rehydrating first if parked. `id` is the
    /// map key (not stored in the state — that would duplicate it).
    fn wake(&mut self, id: u64) -> &mut Device {
        if let DeviceSlot::Parked(blob) = &self.slot {
            self.slot = DeviceSlot::Live(Device::rehydrate(id, blob));
        }
        match &mut self.slot {
            DeviceSlot::Live(d) => d,
            DeviceSlot::Parked(_) => unreachable!("rehydrated above"),
        }
    }

    /// Open-stream count without waking a parked device (the metrics tick
    /// peeks the frozen blob instead of rehydrating the whole fleet).
    fn open_streams(&self) -> usize {
        match &self.slot {
            DeviceSlot::Live(d) => d.open_streams(),
            DeviceSlot::Parked(blob) => Device::frozen_open_streams(blob),
        }
    }

    /// Open stream ids without waking a parked device.
    fn open_sids(&self) -> Vec<StreamId> {
        match &self.slot {
            DeviceSlot::Live(d) => d.open_sids(),
            DeviceSlot::Parked(blob) => Device::frozen_open_sids(blob),
        }
    }

    /// Parks the device into its compact frozen form if it is quiescent:
    /// connected, nothing on the wire toward it, no flow-control episode
    /// in progress, and no recent drop streak (churning devices stay live
    /// to avoid park/rehydrate thrash around their reconnect bursts).
    /// Devices with no streams stay live too — an empty `Device` holds no
    /// heap at all, so its blob would cost more than it saves.
    fn maybe_park(&mut self, hibernation: bool) {
        if !hibernation
            || !self.connected
            || self.inflight_frames != 0
            || !self.degraded_sids.is_empty()
            || self.flow.in_flight() != 0
            || self.drop_streak != 0
        {
            return;
        }
        if let DeviceSlot::Live(d) = &self.slot {
            if d.open_streams() > 0 {
                self.slot = DeviceSlot::Parked(d.hibernate());
            }
        }
    }

    /// Writes the device into a snapshot. The protocol machine reuses the
    /// hibernation blob ([`Device::hibernate`] is total and lossless), with
    /// a tag remembering whether the resident form was live or parked —
    /// park state is pure memory shape, but preserving it keeps a resumed
    /// process's hibernation census identical to the original's.
    fn snap(&self, w: &mut SnapWriter) {
        match &self.slot {
            DeviceSlot::Live(d) => {
                w.put_u8(0);
                w.put_bytes(&d.hibernate());
            }
            DeviceSlot::Parked(blob) => {
                w.put_u8(1);
                w.put_bytes(blob);
            }
        }
        w.put_u8(self.link.snap_tag());
        w.put_u16(self.lang);
        w.put_bool(self.connected);
        w.put_u32(self.drop_streak);
        self.last_drop_at.snap(w);
        self.next_arrival.snap(w);
        self.flow.snap(w);
        w.put_usize(self.degraded_sids.len());
        for sid in &self.degraded_sids {
            sid.snap(w);
        }
        w.put_u64(self.inflight_frames);
    }

    /// Reads a device back. `id` is the map key (the blob doesn't store
    /// it, mirroring [`DeviceState::wake`]).
    fn restore(id: u64, r: &mut SnapReader<'_>) -> SnapResult<DeviceState> {
        let slot_tag = r.get_u8()?;
        let blob = r.get_bytes()?;
        let slot = match slot_tag {
            0 => DeviceSlot::Live(Device::rehydrate(id, &blob)),
            1 => DeviceSlot::Parked(blob.into_boxed_slice()),
            other => {
                return Err(SnapError::Invalid(format!(
                    "unknown device slot tag {other}"
                )))
            }
        };
        let link_tag = r.get_u8()?;
        let link = LinkClass::from_snap_tag(link_tag)
            .ok_or_else(|| SnapError::Invalid(format!("unknown link class tag {link_tag}")))?;
        let lang = r.get_u16()?;
        let connected = r.get_bool()?;
        let drop_streak = r.get_u32()?;
        let last_drop_at = SimTime::restore(r)?;
        let next_arrival = SimTime::restore(r)?;
        let flow = FlowWindow::restore(r)?;
        let n = r.get_len()?;
        let mut degraded_sids = Vec::with_capacity(n);
        for _ in 0..n {
            degraded_sids.push(StreamId::restore(r)?);
        }
        Ok(DeviceState {
            slot,
            link,
            lang,
            connected,
            drop_streak,
            last_drop_at,
            next_arrival,
            flow,
            degraded_sids,
            inflight_frames: r.get_u64()?,
        })
    }
}

// ----------------------------------------------------------------------
// Shared cross-shard state.
// ----------------------------------------------------------------------

/// Read-mostly registries every shard consults. Shards take short read
/// locks during a window; all writes are queued as [`SharedOp`]s and
/// applied by the coordinator at the window barrier, in shard order, so
/// the contents are identical no matter how shards are scheduled.
struct SharedInner {
    /// object → trace of the most recent update event referencing it, used
    /// to attribute payload fetches, frames, and renders back to traces.
    /// (Updates sharing an object — e.g. one message fanned to N mailboxes —
    /// resolve to the most recent trace.)
    object_trace: FxHashMap<ObjectId, TraceId>,
    /// (topic, object) → trace. One mutation can fan one object to many
    /// topics as *distinct* update events (a message separately added to
    /// each member mailbox, §4); deliveries resolved through the stream's
    /// subscription topic land on the exact per-mailbox trace instead of
    /// collapsing onto the object's most recent one.
    topic_object_trace: FxHashMap<(Topic, ObjectId), TraceId>,
    /// Streams subscribed per topic (Fig. 7 publication accounting).
    topic_streams: FxHashMap<Topic, Vec<(u64, StreamId)>>,
    /// Reverse of [`Self::topic_streams`]: the topic each open stream
    /// subscribed to; powers per-frame app attribution.
    stream_topic: FxHashMap<(u64, StreamId), Topic>,
    /// device → proxy carrying its streams (learned from POP routing).
    device_proxy: FxHashMap<u64, usize>,
    /// Mirror of host liveness, maintained from crash/recover ops. Only
    /// consulted when a recovered proxy rebuilds its host roster; the
    /// *authoritative* flags live on each host's owning shard.
    host_up: Vec<bool>,
}

/// A deferred write to [`SharedInner`], applied at the window barrier.
enum SharedOp {
    /// Register (or re-point) an object's trace.
    ObjectTrace(ObjectId, TraceId),
    /// Register the trace of one (topic, object) fan-out leg.
    TopicObjectTrace(Topic, ObjectId, TraceId),
    /// Register a stream's subscription topic.
    StreamTopicInsert(u64, StreamId, Topic),
    /// A stream closed: drop its topic registration on both sides.
    StreamRemove(u64, StreamId),
    /// A stream subscribed to a topic (Fig. 7 accounting).
    TopicStreamPush(Topic, u64, StreamId),
    /// A POP routed a device through a proxy.
    DeviceProxy(u64, usize),
    /// A BRASS host crashed or recovered (liveness mirror).
    HostUp(usize, bool),
}

fn apply_shared_op(shared: &mut SharedInner, op: SharedOp) {
    match op {
        SharedOp::ObjectTrace(object, trace) => {
            shared.object_trace.insert(object, trace);
        }
        SharedOp::TopicObjectTrace(topic, object, trace) => {
            shared.topic_object_trace.insert((topic, object), trace);
        }
        SharedOp::StreamTopicInsert(device, sid, topic) => {
            shared.stream_topic.insert((device, sid), topic);
        }
        SharedOp::StreamRemove(device, sid) => {
            if let Some(topic) = shared.stream_topic.remove(&(device, sid)) {
                if let Some(streams) = shared.topic_streams.get_mut(&topic) {
                    streams.retain(|&(d, s)| !(d == device && s == sid));
                }
            }
        }
        SharedOp::TopicStreamPush(topic, device, sid) => {
            shared
                .topic_streams
                .entry(topic)
                .or_default()
                .push((device, sid));
        }
        SharedOp::DeviceProxy(device, proxy) => {
            shared.device_proxy.insert(device, proxy);
        }
        SharedOp::HostUp(host, up) => {
            if host < shared.host_up.len() {
                shared.host_up[host] = up;
            }
        }
    }
}

/// State shared between shards: the registries and the trace ledger.
struct World {
    shared: RwLock<SharedInner>,
    /// The per-update hop ledger: every admitted update's journey through
    /// write → Pylon → BRASS → BURST → device, with drop attribution.
    /// Shards buffer records locally and the coordinator folds them in at
    /// each barrier, in shard order.
    ledger: RwLock<TraceLedger>,
}

/// A buffered trace-ledger record awaiting the window barrier.
type LedRec = (TraceId, Hop, SimTime, HopOutcome);

/// What one shard reports from a coordinator-driven metrics tick.
struct TickSummary {
    /// Open streams across ALL owned devices (connected or not).
    active_streams: u64,
    /// Sum of BRASS delivery decisions over owned hosts.
    decisions: u64,
    /// `(device, sid)` keys served by owned, live hosts.
    live: Vec<(u64, StreamId)>,
    /// `(device, sid)` keys open on owned, connected devices.
    open: Vec<(u64, StreamId)>,
    /// The shard's rolling state fingerprint at this tick
    /// ([`Shard::fingerprint`]).
    fp: u64,
}

// ----------------------------------------------------------------------
// A shard: one event loop over a disjoint slice of the system.
// ----------------------------------------------------------------------

/// One logical event loop owning a disjoint slice of the system: the
/// devices/POPs, proxies, and BRASS hosts whose ids hash to it, plus —
/// on shard 0 — the singleton backend (WAS, TAO, Pylon). Component
/// vectors are allocated full-size on every shard so indices stay global;
/// a shard only ever touches the slots it owns.
struct Shard {
    id: usize,
    /// Total logical shard count (`config.logical_shards`).
    shards: usize,
    config: SystemConfig,
    latency: LatencyModel,
    /// This shard's private RNG stream, forked off the master seed.
    rng: DetRng,
    queue: EventQueue<Ev>,
    world: Arc<World>,

    /// The web application servers + TAO (shard 0 only).
    was: Option<WebApplicationServer>,
    /// The Pylon cluster (shard 0 only).
    pylon: Option<PylonCluster>,

    hosts: Vec<BrassHost>,
    proxies: Vec<ReverseProxy>,
    pops: Vec<Pop>,
    /// Authoritative liveness for *owned* hosts (a crash is invisible to
    /// Pylon deliveries — the rest of the system must *detect* the death
    /// through missed heartbeats, never observe this flag directly).
    host_up: Vec<bool>,
    /// Authoritative liveness for *owned* proxies.
    proxy_up: Vec<bool>,
    /// The overload model's backlog clock per owned BRASS host: the
    /// instant the host finishes everything admitted so far. Events
    /// arriving while `busy_until > now` queue behind the backlog (and
    /// are shed once the mailbox cap is hit). Unused (stays ZERO) when
    /// `config.brass_service_us == 0`.
    host_busy_until: Vec<SimTime>,

    /// The shard's device fleet, keyed by uid. A sorted vec, not a hash
    /// map: the fleet is built in ascending-id order, lives for the whole
    /// run, and at seven figures a hash table's empty buckets alone cost
    /// hundreds of megabytes (entries are 144 B each).
    devices: simkit::collections::SortedVecMap<u64, DeviceState>,
    /// (device, sid) → traces lost in delivery to that stream, recoverable
    /// by a WAS backfill poll (gap detection or reconnect).
    pending_backfill: FxHashMap<(u64, StreamId), Vec<TraceId>>,
    /// Pylon event delivery time per (owned host, object), for
    /// BRASS-latency attribution of later payload fetches.
    object_delivered: FxHashMap<(usize, ObjectId), SimTime>,
    /// Subscription start times (device-observed subscribe latency).
    sub_started: FxHashMap<(u64, StreamId), SimTime>,

    metrics: SystemMetrics,
    event_stats: EventStats,

    // Window products, drained by the coordinator at each barrier.
    /// Events targeting other shards, in emission order.
    outbox: Vec<(SimTime, Ev)>,
    /// Deferred writes to the shared registries, in emission order.
    ops: Vec<SharedOp>,
    /// Trace-ledger records buffered for the barrier, in emission order.
    led_pending: Vec<LedRec>,

    /// Per-event log for divergence bisection: every popped event's
    /// `(time, summary)` in execution order, kept only while a bisect
    /// harness switches it on ([`SystemSim::set_event_log`]).
    evlog: Option<Vec<(SimTime, String)>>,
}

impl Shard {
    fn new(id: usize, config: &SystemConfig, master: &DetRng, world: Arc<World>) -> Self {
        let shards = config.logical_shards;
        let (was, pylon) = if id == 0 {
            (
                Some(WebApplicationServer::new(Tao::new(config.tao.clone()))),
                Some(PylonCluster::new(config.pylon.clone())),
            )
        } else {
            (None, None)
        };
        let hosts: Vec<BrassHost> = (0..config.brass_hosts)
            .map(|i| {
                let mut h = BrassHost::new(HostConfig::small(i));
                h.register_standard_apps();
                h
            })
            .collect();
        let host_ids: Vec<u32> = (0..config.brass_hosts).collect();
        let proxies: Vec<ReverseProxy> = (0..config.proxies)
            .map(|i| {
                ReverseProxy::new(i, config.route_strategy, host_ids.clone()).with_heartbeat(
                    config.heartbeat_interval.as_micros(),
                    config.heartbeat_misses,
                )
            })
            .collect();
        let proxy_ids: Vec<u32> = (0..config.proxies).collect();
        let pops: Vec<Pop> = (0..config.pops)
            .map(|i| Pop::new(i, proxy_ids.clone()))
            .collect();
        let mut queue = EventQueue::new();
        // Every shard drives its own heartbeat monitors; ticks never
        // cross shards.
        queue.schedule(SimTime::ZERO + config.heartbeat_interval, Ev::HeartbeatTick);
        Shard {
            id,
            shards,
            latency: LatencyModel::table3(),
            rng: master.fork(0x5A4D_0000 + id as u64),
            queue,
            world,
            was,
            pylon,
            hosts,
            proxies,
            pops,
            host_up: vec![true; config.brass_hosts as usize],
            proxy_up: vec![true; config.proxies as usize],
            host_busy_until: vec![SimTime::ZERO; config.brass_hosts as usize],
            devices: simkit::collections::SortedVecMap::new(),
            pending_backfill: FxHashMap::default(),
            object_delivered: FxHashMap::default(),
            sub_started: FxHashMap::default(),
            metrics: SystemMetrics::new(config.metrics_horizon, config.metrics_interval),
            event_stats: EventStats::default(),
            outbox: Vec::new(),
            ops: Vec::new(),
            led_pending: Vec::new(),
            evlog: None,
            config: config.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Plumbing.
    // ------------------------------------------------------------------

    fn was_ref(&mut self) -> &mut WebApplicationServer {
        self.was.as_mut().expect("the WAS lives on shard 0")
    }

    fn pylon_ref(&mut self) -> &mut PylonCluster {
        self.pylon.as_mut().expect("Pylon lives on shard 0")
    }

    fn owns_device(&self, device: u64) -> bool {
        (device as usize % self.pops.len()) % self.shards == self.id
    }

    /// Schedules an event: locally if this shard owns the target state,
    /// otherwise into the outbox for the barrier exchange. All handler
    /// scheduling funnels through here, so the serial and threaded drivers
    /// produce byte-identical schedules by construction.
    fn send(&mut self, at: SimTime, ev: Ev) {
        let dest = shard_route(&ev, self.pops.len(), self.shards);
        if dest == self.id {
            self.queue.schedule(at, ev);
        } else {
            self.outbox.push((at, ev));
        }
    }

    /// A short-lived read guard over the shared registries. Guards are
    /// always taken sequentially (never nested) inside handlers.
    fn shared(&self) -> RwLockReadGuard<'_, SharedInner> {
        self.world.shared.read().unwrap()
    }

    /// Buffers a trace-ledger record for the window barrier.
    fn record(&mut self, trace: TraceId, hop: Hop, at: SimTime, outcome: HopOutcome) {
        self.led_pending.push((trace, hop, at, outcome));
    }

    /// Queues a shared-registry write for the window barrier.
    fn op(&mut self, op: SharedOp) {
        self.ops.push(op);
    }

    /// Whether a trace already reached its device (rendered or
    /// backfilled), per the merged ledger *plus this shard's own buffered
    /// records*. Other shards' unmerged records are deliberately invisible
    /// — the serial driver has exactly the same visibility, which is what
    /// keeps worker counts out of the results.
    fn trace_resolved(&self, trace: TraceId) -> bool {
        {
            let ledger = self.world.ledger.read().unwrap();
            if ledger.is_delivered(trace) || ledger.is_backfilled(trace) {
                return true;
            }
        }
        self.led_pending.iter().any(|(t, hop, _, out)| {
            *t == trace
                && *out == HopOutcome::Ok
                && matches!(hop, Hop::DeviceRender | Hop::WasBackfill)
        })
    }

    /// Runs this shard's loop up to and including `end`, after folding in
    /// the envelopes the barrier routed here.
    fn run_window(&mut self, end: SimTime, incoming: Vec<Envelope<Ev>>) {
        for env in incoming {
            self.queue.schedule(env.at, env.event);
        }
        while let Some((now, ev)) = self.queue.pop_until(end) {
            self.event_stats.note(&ev);
            if let Some(log) = &mut self.evlog {
                log.push((now, ev_summary(&ev)));
            }
            self.handle(now, ev);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::DeviceSubscribe { device, header } => self.on_device_subscribe(now, device, header),
            Ev::DeviceCancel { device, sid } => self.on_device_cancel(now, device, sid),
            Ev::WasMutationExec { gql, app } => self.on_was_mutation(now, &gql, app),
            Ev::PylonPublish { event } => self.on_pylon_publish(now, *event),
            Ev::PylonDeliverHost { host, event } => self.on_pylon_deliver(now, host, event),
            Ev::TaoReplicate { event } => self.was_ref().tao_mut().apply_replication(&event),
            Ev::PylonSubscribeExec {
                host,
                topic,
                attempt,
            } => self.on_pylon_subscribe_exec(now, host, topic, attempt),
            Ev::PylonUnsubscribeExec { host, topic } => {
                let _ = self.pylon_ref().unsubscribe(&topic, HostId(host as u32));
            }
            Ev::WasExec {
                host,
                app,
                token,
                request,
                attributed,
            } => self.on_was_exec(now, host, app, token, request, attributed),
            Ev::WasReply {
                host,
                app,
                token,
                response,
                attributed,
            } => self.on_was_reply(now, host, app, token, response, attributed),
            Ev::BrassTimer { host, app, token } => {
                let fx = self.hosts[host].on_timer(&app, token, now);
                self.process_host_effects(now, host, fx, None);
            }
            Ev::AtPop { device, frame } => self.on_at_pop(now, device, *frame),
            Ev::AtProxy {
                proxy,
                device,
                frame,
            } => self.on_at_proxy(now, proxy, device, *frame),
            Ev::AtBrass {
                host,
                device,
                frame,
            } => self.on_at_brass(now, host, device, *frame),
            Ev::DownAtProxy {
                proxy,
                host,
                device,
                frame,
                sent_at,
            } => self.on_down_at_proxy(now, proxy, host, device, *frame, sent_at),
            Ev::DownAtPop {
                device,
                frame,
                sent_at,
            } => self.on_down_at_pop(now, device, *frame, sent_at),
            Ev::AtDevice {
                device,
                frame,
                sent_at,
            } => self.on_at_device(now, device, *frame, sent_at),
            Ev::DeviceDrop { device } => self.on_device_drop(now, device),
            Ev::DeviceReconnect { device, frames } => self.on_device_reconnect(now, device, frames),
            Ev::BrassRedirect {
                host,
                device,
                sid,
                to_host,
            } => {
                let fx =
                    self.hosts[host].redirect_stream(DeviceId(device), sid, to_host as u32, now);
                self.process_host_effects(now, host, fx, None);
            }
            Ev::BrassUpgrade { host } => self.on_brass_upgrade(now, host),
            Ev::BrassHostBack { host } => self.on_brass_host_back(now, host),
            Ev::PylonNode { node, up } => {
                if up {
                    self.pylon_ref().node_up(node);
                } else {
                    self.pylon_ref().node_down(node);
                }
            }
            Ev::BrassCrash { host } => self.on_brass_crash(now, host),
            Ev::BrassRecover { host } => self.on_brass_recover(now, host),
            Ev::ProxyOutage { proxy } => self.on_proxy_outage(now, proxy),
            Ev::ProxyBack { proxy } => self.on_proxy_back(now, proxy),
            Ev::DeviceVanish { device } => self.on_device_vanish(now, device),
            Ev::HeartbeatTick => self.on_heartbeat_tick(now),
            Ev::HbPingAtHost { proxy, host, token } => {
                // The host-owning shard consults the authoritative flag: a
                // dead host simply never answers. A *live but overloaded*
                // host answers late — the pong waits behind the ingress
                // backlog, which is exactly how overload masquerades as
                // death to a naive heartbeat monitor.
                if host < self.host_up.len() && self.host_up[host] {
                    let qdelay = self
                        .host_admit(now, host, false)
                        .unwrap_or(SimDuration::ZERO);
                    let back = self.latency.proxy_brass(&mut self.rng);
                    self.send(now + qdelay + back, Ev::PongFromHost { proxy, host, token });
                }
            }
            Ev::PongFromHost { proxy, host, token } => {
                if self.proxy_up[proxy] {
                    self.proxies[proxy].on_host_pong(host as u32, token);
                }
            }
            Ev::PylonHostFailed { host } => self.pylon_ref().host_failed(HostId(host as u32)),
            Ev::ProxyHostFailed { proxy, host } => self.on_proxy_host_failed(now, proxy, host),
            Ev::ProxyAddHost { proxy, host } => self.on_proxy_add_host(now, proxy, host),
            Ev::ProxyHostRestarted { proxy, host } => {
                self.on_proxy_host_restarted(now, proxy, host)
            }
            Ev::PopProxyFailed { pop, proxy } => {
                let fx = self.pops[pop].on_proxy_failed(proxy as u32);
                self.process_pop_effects(now, fx);
            }
            Ev::PopAddProxy { pop, proxy } => {
                let fx = self.pops[pop].add_proxy(proxy as u32);
                self.process_pop_effects(now, fx);
            }
            Ev::ProxyDeviceGone { proxy, device } => {
                if proxy < self.proxies.len() && self.proxy_up[proxy] {
                    let pfx = self.proxies[proxy].on_device_disconnected(device);
                    self.process_proxy_effects(now, proxy, pfx);
                }
            }
            Ev::NoteBackfill { device, sid, trace } => {
                self.pending_backfill
                    .entry((device, sid))
                    .or_default()
                    .push(trace);
            }
            Ev::WasBackfillExec { device, sid } => self.on_was_backfill(now, device, sid),
        }
    }
}

impl Shard {
    /// Re-freezes a device if it is eligible (see
    /// [`DeviceState::maybe_park`]). Called at the end of every handler
    /// that woke the device machine.
    fn park(&mut self, device: u64) {
        let hibernation = self.config.hibernation;
        if let Some(state) = self.devices.get_mut(&device) {
            state.maybe_park(hibernation);
        }
    }

    fn on_device_subscribe(&mut self, now: SimTime, device: u64, header: Json) {
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            return;
        }
        // Device stream cap ("each mobile app up to 20 concurrent
        // streams"): the oldest stream makes room for the new one.
        let evict: Vec<StreamId> = {
            let open = state.open_sids();
            let over = (open.len() + 1).saturating_sub(self.config.max_streams_per_device);
            open.into_iter().take(over).collect()
        };
        for sid in evict {
            self.on_device_cancel(now, device, sid);
        }
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        // Fig. 7 registry: which topic does this stream's subscription
        // target? Resolved before the header moves into the stream.
        let sub_topic = brass::resolve::resolve(&header).ok().map(|sub| sub.topic);
        let (sid, frame) = state.wake(device).open_stream(header, Vec::new());
        let link = state.link;
        state.maybe_park(self.config.hibernation);
        self.metrics.subscriptions.inc();
        self.metrics.ts_subscriptions.inc(now);
        self.metrics.stream_opened(device, sid, now);
        self.sub_started.insert((device, sid), now);
        if let Some(topic) = sub_topic {
            self.op(SharedOp::TopicStreamPush(topic, device, sid));
            self.op(SharedOp::StreamTopicInsert(device, sid, topic));
        }
        let delay = self.latency.last_mile(link, &mut self.rng);
        self.send(
            now + delay,
            Ev::AtPop {
                device,
                frame: frame.into(),
            },
        );
    }

    fn on_device_cancel(&mut self, now: SimTime, device: u64, sid: StreamId) {
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        let frame = state.wake(device).cancel_stream(sid);
        let link = state.link;
        state.maybe_park(self.config.hibernation);
        let Some(frame) = frame else {
            return;
        };
        self.metrics.cancellations.inc();
        self.metrics.stream_closed(device, sid, now);
        self.op(SharedOp::StreamRemove(device, sid));
        let delay = self.latency.last_mile(link, &mut self.rng);
        self.send(
            now + delay,
            Ev::AtPop {
                device,
                frame: frame.into(),
            },
        );
    }

    fn on_was_mutation(&mut self, now: SimTime, gql: &str, app: &'static str) {
        let Ok(outcome) = self.was_ref().execute_mutation(gql, now.as_millis()) else {
            return;
        };
        self.metrics.mutations.inc();
        for rep in outcome.replication {
            let d = self.latency.cross_region(&mut self.rng);
            self.send(now + d, Ev::TaoReplicate { event: rep.into() });
        }
        let was_delay = self
            .latency
            .was_mutation(outcome.was_latency_ms, &mut self.rng);
        self.metrics
            .app(app)
            .was_handling
            .record(was_delay.as_millis_f64());
        for event in outcome.events {
            // The write committed: open the update's trace.
            let trace = TraceId(event.id);
            self.op(SharedOp::ObjectTrace(event.object, trace));
            self.op(SharedOp::TopicObjectTrace(event.topic, event.object, trace));
            self.record(trace, Hop::TaoCommit, now, HopOutcome::Ok);
            self.send(
                now + was_delay,
                Ev::PylonPublish {
                    event: event.into(),
                },
            );
        }
    }

    fn on_pylon_publish(&mut self, now: SimTime, event: UpdateEvent) {
        self.metrics.publications.inc();
        self.metrics.ts_publications.inc(now);
        let watchers: Vec<(u64, StreamId)> = {
            let shared = self.shared();
            shared
                .topic_streams
                .get(&event.topic)
                .cloned()
                .unwrap_or_default()
        };
        for (d, s) in watchers {
            self.metrics.publication_for_stream(d, s);
        }
        let outcome = self.pylon_ref().publish(&event.topic, event.id);
        let subscribers = outcome.fast_forwards.len() + outcome.late_forwards.len();
        let publish_outcome = if subscribers == 0 {
            HopOutcome::Dropped(DropReason::NoSubscribers)
        } else {
            HopOutcome::Ok
        };
        self.record(TraceId(event.id), Hop::PylonPublish, now, publish_outcome);
        let fanout = self.latency.pylon_fanout(subscribers, &mut self.rng);
        if subscribers < 10_000 {
            self.metrics
                .pylon_fanout_small
                .record(fanout.as_millis_f64());
        } else {
            self.metrics
                .pylon_fanout_large
                .record(fanout.as_millis_f64());
        }
        // Fan-out pressure: one publish puts `subscribers` deliveries in
        // flight at once — the Pylon-stage queue depth under a hot topic.
        self.metrics.q_pylon_fanout.enqueued_n(subscribers as u64);
        self.metrics
            .q_pylon_fanout
            .observe_depth(now, subscribers as u64);
        // One allocation, N pointers: the fan-out shares the event.
        let event = Arc::new(event);
        for host in outcome.fast_forwards {
            self.send(
                now + fanout,
                Ev::PylonDeliverHost {
                    host: host.0 as usize,
                    event: Arc::clone(&event),
                },
            );
        }
        for host in outcome.late_forwards {
            let extra = self.latency.pylon_late_extra(&mut self.rng);
            self.send(
                now + fanout + extra,
                Ev::PylonDeliverHost {
                    host: host.0 as usize,
                    event: Arc::clone(&event),
                },
            );
        }
    }

    fn on_pylon_deliver(&mut self, now: SimTime, host: usize, event: Arc<UpdateEvent>) {
        if host >= self.hosts.len() {
            return;
        }
        self.metrics.q_pylon_fanout.dequeued_n(1);
        if !self.host_up[host] {
            // Pylon has not yet purged a crashed host's subscriptions
            // (that happens when a proxy's heartbeats detect the death);
            // events fanned to it meanwhile die here.
            self.record(
                TraceId(event.id),
                Hop::PylonDeliver,
                now,
                HopOutcome::Dropped(DropReason::HostDown),
            );
            return;
        }
        // The host's ingress mailbox: events beyond the service rate
        // queue; events beyond the mailbox cap are shed — attributed, so
        // the ledger never shows unaccounted loss under overload.
        let Some(qdelay) = self.host_admit(now, host, true) else {
            self.record(
                TraceId(event.id),
                Hop::PylonDeliver,
                now,
                HopOutcome::Dropped(DropReason::MailboxOverflow),
            );
            return;
        };
        self.object_delivered.insert((host, event.object), now);
        self.record(TraceId(event.id), Hop::PylonDeliver, now, HopOutcome::Ok);
        let fx = self.hosts[host].on_pylon_event(&event, now);
        // Effects materialise once the host works through its backlog;
        // attribution stays at `now`, so the brass_processing histogram
        // captures the queueing delay — that's the latency curve bending
        // upward as offered load approaches capacity.
        self.process_host_effects(now + qdelay, host, fx, Some(now));
    }

    fn on_pylon_subscribe_exec(&mut self, now: SimTime, host: usize, topic: Topic, attempt: u32) {
        match self.pylon_ref().subscribe(&topic, HostId(host as u32)) {
            Ok(()) => {}
            Err(_) => {
                self.metrics.quorum_failures.inc();
                // CP subscribe failed; BRASS retries with capped
                // exponential backoff until quorum returns.
                self.send(
                    now + SystemSim::quorum_retry_backoff(attempt),
                    Ev::PylonSubscribeExec {
                        host,
                        topic,
                        attempt: attempt.saturating_add(1),
                    },
                );
            }
        }
    }

    fn on_was_exec(
        &mut self,
        now: SimTime,
        host: usize,
        app: String,
        token: FetchToken,
        request: WasRequest,
        attributed: Option<SimTime>,
    ) {
        let response = match request {
            WasRequest::FetchObject { viewer, object } => {
                let response = match self.was_ref().fetch_for_viewer(0, viewer, object) {
                    Ok((payload, _)) => WasResponse::Payload(payload.into()),
                    Err(was::WasError::PrivacyDenied) => WasResponse::Denied,
                    Err(_) => WasResponse::NotFound,
                };
                // The payload fetch is the final BRASS-processing gate:
                // the WAS privacy check decides whether the update survives.
                let trace = { self.shared().object_trace.get(&object).copied() };
                if let Some(trace) = trace {
                    let outcome = match &response {
                        WasResponse::Payload(_) => HopOutcome::Ok,
                        WasResponse::Denied => HopOutcome::Dropped(DropReason::PrivacyBlock),
                        _ => HopOutcome::Dropped(DropReason::NotFound),
                    };
                    self.record(trace, Hop::BrassProcess, now, outcome);
                }
                response
            }
            WasRequest::Friends { uid } => WasResponse::Friends(self.was_ref().friends_of(uid)),
            WasRequest::MailboxAfter { uid, after_seq } => {
                let q = match after_seq {
                    Some(a) => format!("{{ mailbox(uid: {uid}, afterSeq: {a}) }}"),
                    None => format!("{{ mailbox(uid: {uid}) }}"),
                };
                let entries = self
                    .was_ref()
                    .execute_query(0, &q)
                    .ok()
                    .and_then(|o| {
                        o.response.get("mailbox").map(|m| {
                            m.items()
                                .iter()
                                .filter_map(|e| {
                                    let seq = e.get("seq").and_then(Rv::as_int)? as u64;
                                    let obj = e.get("messageId").and_then(Rv::as_int)? as u64;
                                    Some((seq, ObjectId(obj)))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .unwrap_or_default();
                WasResponse::Mailbox(entries)
            }
        };
        let back = self.latency.brass_was_rtt(&mut self.rng) / 2;
        self.send(
            now + back,
            Ev::WasReply {
                host,
                app,
                token,
                response,
                attributed,
            },
        );
    }

    fn on_was_reply(
        &mut self,
        now: SimTime,
        host: usize,
        app: String,
        token: FetchToken,
        response: WasResponse,
        attributed: Option<SimTime>,
    ) {
        let fx = self.hosts[host].on_was_response(&app, token, response, now);
        self.process_host_effects(now, host, fx, attributed);
    }

    /// The M/D/1-style BRASS ingress model: each admitted piece of work
    /// costs `brass_service_us` of host time, so work arriving faster
    /// than the service rate queues behind the host's `busy_until` clock.
    ///
    /// Returns the queueing delay the arrival waits behind (`None` means
    /// the mailbox cap was hit and the arrival must be shed). With
    /// `charge == false` the arrival only *observes* the backlog (control
    /// frames and heartbeat pongs are delayed by the queue but don't
    /// consume a service slot). A no-op returning zero delay when the
    /// overload model is off (`brass_service_us == 0`).
    fn host_admit(&mut self, now: SimTime, host: usize, charge: bool) -> Option<SimDuration> {
        let service = self.config.brass_service_us;
        if service == 0 {
            return Some(SimDuration::ZERO);
        }
        let busy = self.host_busy_until[host];
        let backlog = busy.saturating_since(now);
        if !charge {
            return Some(backlog);
        }
        let depth = backlog.as_micros() / service;
        let cap = self.config.brass_mailbox_capacity;
        if cap > 0 && depth >= cap {
            self.metrics.q_brass_mailbox.observe_depth(now, depth);
            self.metrics.q_brass_mailbox.dropped_n(1);
            self.metrics.mailbox_sheds.inc();
            return None;
        }
        let start = if busy > now { busy } else { now };
        self.host_busy_until[host] = start + SimDuration::from_micros(service);
        self.metrics.q_brass_mailbox.enqueued_n(1);
        self.metrics.q_brass_mailbox.dequeued_n(1);
        self.metrics.q_brass_mailbox.observe_depth(now, depth + 1);
        Some(backlog)
    }

    /// Converts BRASS host effects into scheduled events.
    ///
    /// `attributed` carries the instant the update event arrived at the
    /// host, for the Fig. 9 "BRASS host processing" histogram.
    fn process_host_effects(
        &mut self,
        now: SimTime,
        host: usize,
        effects: Vec<HostEffect>,
        attributed: Option<SimTime>,
    ) {
        for effect in effects {
            match effect {
                HostEffect::PylonSubscribe(topic) => {
                    let d = self.latency.sub_replication(&mut self.rng);
                    self.metrics.sub_replication.record(d.as_millis_f64());
                    self.send(
                        now + d,
                        Ev::PylonSubscribeExec {
                            host,
                            topic,
                            attempt: 0,
                        },
                    );
                }
                HostEffect::PylonUnsubscribe(topic) => {
                    let d = self.latency.sub_replication(&mut self.rng);
                    self.send(now + d, Ev::PylonUnsubscribeExec { host, topic });
                }
                HostEffect::Was {
                    app,
                    token,
                    request,
                } => {
                    // Payload fetches inherit attribution from the event
                    // that referenced the object (covers buffered apps).
                    let attr = match &request {
                        WasRequest::FetchObject { object, .. } => self
                            .object_delivered
                            .get(&(host, *object))
                            .copied()
                            .or(attributed),
                        _ => attributed,
                    };
                    let d = self.latency.brass_was_rtt(&mut self.rng) / 2;
                    self.send(
                        now + d,
                        Ev::WasExec {
                            host,
                            app,
                            token,
                            request,
                            attributed: attr,
                        },
                    );
                }
                HostEffect::DropUpdate { object, reason } => {
                    let trace = { self.shared().object_trace.get(&object).copied() };
                    if let Some(trace) = trace {
                        self.record(trace, Hop::BrassProcess, now, HopOutcome::Dropped(reason));
                    }
                }
                HostEffect::Send { device, frame } => {
                    let proc = self.latency.brass_processing(&mut self.rng);
                    let send_at = now + proc;
                    for trace in self.frame_traces(device.0, &frame) {
                        self.record(trace, Hop::BrassSend, send_at, HopOutcome::Ok);
                    }
                    if let Some(event_at) = attributed {
                        // Only data batches count as event processing.
                        if matches!(&frame, Frame::Response { batch, .. }
                            if batch.iter().any(|d| matches!(d, burst::frame::Delta::Update { .. })))
                        {
                            let app_name = self.app_of_device_frame(device.0, &frame);
                            self.metrics
                                .app(&app_name)
                                .brass_processing
                                .record(send_at.saturating_since(event_at).as_millis_f64());
                        }
                    }
                    // The downstream route is resolved *at send time* from
                    // the shared registry; frames for devices with no known
                    // route die here (they had nowhere to go), exactly as
                    // they used to die unrouted at the proxy layer.
                    let proxy = { self.shared().device_proxy.get(&device.0).copied() };
                    if let Some(proxy) = proxy {
                        let d = self.latency.proxy_brass(&mut self.rng);
                        self.send(
                            send_at + d,
                            Ev::DownAtProxy {
                                proxy,
                                host,
                                device: device.0,
                                frame: frame.into(),
                                sent_at: send_at,
                            },
                        );
                    }
                }
                HostEffect::Timer { at, app, token } => {
                    self.send(at, Ev::BrassTimer { host, app, token });
                }
            }
        }
    }

    /// Best-effort application attribution for a downstream frame: one
    /// reverse-map lookup on the stream's registered topic.
    fn app_of_device_frame(&self, device: u64, frame: &Frame) -> String {
        let shared = self.shared();
        let topic = frame
            .sid()
            .and_then(|sid| shared.stream_topic.get(&(device, sid)));
        let Some(topic) = topic else {
            return "unknown".into();
        };
        match topic.family() {
            "LVC" => "lvc".into(),
            "TI" => "typing".into(),
            "Status" => "active_status".into(),
            "Stories" => "stories".into(),
            "Msgr" => "messenger".into(),
            "Likes" => "likes".into(),
            "Notif" => "notifications".into(),
            other => other.to_owned(),
        }
    }

    /// The trace ids of every update payload a frame carries, in batch
    /// order. The owning stream's subscription topic disambiguates
    /// fan-out: one mutation can reference the same object from many
    /// topics under distinct traces (per-mailbox message adds).
    fn frame_traces(&self, device: u64, frame: &Frame) -> Vec<TraceId> {
        let shared = self.shared();
        let topic = frame
            .sid()
            .and_then(|sid| shared.stream_topic.get(&(device, sid)).copied());
        frame
            .update_payloads()
            .filter_map(|p| payload_trace(&shared, topic, p))
            .collect()
    }
}

/// Resolves an update payload to its trace id via the embedded TAO
/// object id. Payloads without an `"id"` field (or for objects written
/// before tracing started) are simply untraced. When the delivering
/// stream's topic is known, the (topic, object) fan-out leg wins over
/// the object's most recent trace.
///
/// Runs on every update of every frame at every transport hop, so the
/// id is pulled out with the single-pass [`burst::json::top_level_u64`]
/// scanner instead of a full allocating parse.
fn payload_trace(shared: &SharedInner, topic: Option<Topic>, payload: &[u8]) -> Option<TraceId> {
    let id = burst::json::top_level_u64(payload, "id")?;
    let object = ObjectId(id);
    if let Some(topic) = topic {
        if let Some(trace) = shared.topic_object_trace.get(&(topic, object)) {
            return Some(*trace);
        }
    }
    shared.object_trace.get(&object).copied()
}

/// The wire bytes a frame charges against a device's egress flow window,
/// or `None` for control frames. Only data (update-carrying response)
/// frames consume window: flow-control signalling, terminations and
/// protocol replies must keep flowing through the very congestion the
/// window reports, or Degraded/Recovered could never be delivered.
fn frame_data_bytes(frame: &Frame) -> Option<u64> {
    match frame {
        Frame::Response { batch, .. }
            if batch.iter().any(|d| matches!(d, Delta::Update { .. })) =>
        {
            Some(frame.wire_size() as u64)
        }
        _ => None,
    }
}

impl Shard {
    fn on_at_pop(&mut self, now: SimTime, device: u64, frame: Frame) {
        if !self.devices.contains_key(&device) {
            return;
        }
        // A device's POP is derived, not stored: devices co-locate with
        // `device % pops` (the same rule `shard_route` uses).
        let pop = device as usize % self.pops.len();
        let fx = self.pops[pop].on_device_frame(device, frame, now.as_micros());
        self.process_pop_effects(now, fx);
    }

    fn on_at_proxy(&mut self, now: SimTime, proxy: usize, device: u64, frame: Frame) {
        if proxy >= self.proxies.len() {
            return;
        }
        if !self.proxy_up[proxy] {
            // Connection refused: the POP retries through its (repaired)
            // proxy assignment, modelling the edge's TCP-level failover.
            let d = self.latency.pop_proxy(&mut self.rng);
            self.send(
                now + d,
                Ev::AtPop {
                    device,
                    frame: frame.into(),
                },
            );
            return;
        }
        let fx = self.proxies[proxy].on_downstream_frame(device, frame, now.as_micros());
        self.process_proxy_effects(now, proxy, fx);
    }

    fn process_proxy_effects(&mut self, now: SimTime, proxy: usize, effects: Vec<ProxyEffect>) {
        for effect in effects {
            match effect {
                ProxyEffect::ToBrass {
                    host,
                    device,
                    frame,
                } => {
                    let d = self.latency.proxy_brass(&mut self.rng);
                    self.send(
                        now + d,
                        Ev::AtBrass {
                            host: host as usize,
                            device,
                            frame: frame.into(),
                        },
                    );
                }
                ProxyEffect::ToDevice { device, frame } => {
                    let d = self.latency.pop_proxy(&mut self.rng);
                    self.send(
                        now + d,
                        Ev::DownAtPop {
                            device,
                            frame: frame.into(),
                            sent_at: now,
                        },
                    );
                }
                ProxyEffect::PingHost { host, token } => {
                    self.metrics.hb_pings.inc();
                    // The ping travels to the host's shard, which holds the
                    // authoritative liveness flag; a dead host never answers.
                    let d = self.latency.proxy_brass(&mut self.rng);
                    self.send(
                        now + d,
                        Ev::HbPingAtHost {
                            proxy,
                            host: host as usize,
                            token,
                        },
                    );
                }
                ProxyEffect::HostDown { host } => {
                    // Heartbeat-detected BRASS death: signal Pylon so the
                    // dead host's subscriptions are purged (axiom 1). The
                    // proxy's own stream repair rides in the same batch.
                    self.metrics.host_failures_detected.inc();
                    self.send(
                        now,
                        Ev::PylonHostFailed {
                            host: host as usize,
                        },
                    );
                }
            }
        }
    }

    fn on_at_brass(&mut self, now: SimTime, host: usize, device: u64, frame: Frame) {
        if host >= self.hosts.len() {
            return;
        }
        if !self.host_up[host] {
            // Frames to a crashed host vanish. Streams routed here stay
            // broken until a proxy's heartbeats detect the death and
            // repair them onto a healthy host.
            return;
        }
        let fx = match frame {
            Frame::Subscribe { sid, header, .. } => {
                self.hosts[host].on_subscribe(DeviceId(device), sid, header, now)
            }
            Frame::Cancel { sid } => self.hosts[host].on_cancel(DeviceId(device), sid, now),
            Frame::Ack { sid, seq } => self.hosts[host].on_ack(DeviceId(device), sid, seq, now),
            _ => Vec::new(),
        };
        // Control frames ride the same ingress queue as data (their
        // replies wait behind the backlog) but don't consume a service
        // slot or get shed — subscribes must survive the very overload
        // they arrive into.
        let qdelay = self
            .host_admit(now, host, false)
            .unwrap_or(SimDuration::ZERO);
        self.process_host_effects(now + qdelay, host, fx, None);
    }

    fn on_down_at_proxy(
        &mut self,
        now: SimTime,
        proxy: usize,
        host: usize,
        device: u64,
        frame: Frame,
        sent_at: SimTime,
    ) {
        if proxy >= self.proxies.len() {
            return;
        }
        if !self.proxy_up[proxy] {
            // Downstream frames through a dead proxy are lost until the
            // POP re-homes the device's streams onto a live proxy.
            let traces: Vec<TraceId> = self.frame_traces(device, &frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::BurstDeliver,
                    DropReason::HostDown,
                );
            }
            return;
        }
        // Overload starvation fix: a host too backlogged to answer pings
        // promptly still streams data through this proxy — that data is
        // proof of life, so credit its heartbeat monitor before the miss
        // counter can cross the threshold and trigger a spurious repair
        // storm on a healthy (just slow) host.
        self.proxies[proxy].note_host_activity(host as u32);
        let fx = self.proxies[proxy].on_upstream_frame(device, frame, now.as_micros());
        for effect in fx {
            if let ProxyEffect::ToDevice { device, frame } = effect {
                let d = self.latency.pop_proxy(&mut self.rng);
                self.send(
                    now + d,
                    Ev::DownAtPop {
                        device,
                        frame: frame.into(),
                        sent_at,
                    },
                );
            }
        }
    }

    fn on_down_at_pop(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        if !self.devices.contains_key(&device) {
            return;
        }
        let pop = device as usize % self.pops.len();
        let fx = self.pops[pop].on_proxy_frame(device, frame, now.as_micros());
        for effect in fx {
            if let PopEffect::ToDevice { device, frame } = effect {
                self.schedule_to_device(now, device, frame, sent_at);
            }
        }
    }

    /// Records a lost delivery and — when the losing stream is known —
    /// remembers the trace so a later WAS backfill poll (gap detection or
    /// reconnect) can recover it. When the loss happens away from the
    /// device's shard, the note travels there as an event.
    fn register_backfill_drop(
        &mut self,
        now: SimTime,
        device: u64,
        sid: Option<StreamId>,
        trace: TraceId,
        hop: Hop,
        reason: DropReason,
    ) {
        self.record(trace, hop, now, HopOutcome::Dropped(reason));
        if let Some(sid) = sid {
            if self.owns_device(device) {
                self.pending_backfill
                    .entry((device, sid))
                    .or_default()
                    .push(trace);
            } else {
                self.send(now, Ev::NoteBackfill { device, sid, trace });
            }
        }
    }

    fn schedule_to_device(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        let Some(state) = self.devices.get(&device) else {
            return;
        };
        let link = state.link;
        if !state.connected {
            // Best effort: frames to disconnected devices vanish (the
            // traces stay backfill-recoverable after reconnect).
            let traces = self.frame_traces(device, &frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::BurstDeliver,
                    DropReason::DeviceDisconnected,
                );
            }
            return;
        }
        if self.rng.chance(self.config.last_mile_drop) {
            self.metrics.frames_lost.inc();
            let traces = self.frame_traces(device, &frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::BurstDeliver,
                    DropReason::LastMileLoss,
                );
            }
            return;
        }
        // Egress flow control: data frames beyond the device's byte window
        // are shed *with attribution* (backfill-recoverable), and the
        // first shed of an episode tells the device it is Degraded. Only
        // frames that actually reach the wire charge the window, so the
        // admit sits after the disconnect/loss checks above.
        if let Some(bytes) = frame_data_bytes(&frame) {
            let admit = self
                .devices
                .get_mut(&device)
                .expect("checked above")
                .flow
                .try_send(bytes);
            match admit {
                Admit::Ok => {
                    let depth = self.devices[&device].flow.in_flight();
                    self.metrics.q_flow_window.enqueued_n(1);
                    self.metrics.q_flow_window.observe_depth(now, depth);
                }
                shed => {
                    self.metrics.flow_sheds.inc();
                    self.metrics.q_flow_window.dropped_n(1);
                    let traces = self.frame_traces(device, &frame);
                    for trace in traces {
                        self.register_backfill_drop(
                            now,
                            device,
                            frame.sid(),
                            trace,
                            Hop::BurstDeliver,
                            DropReason::FlowControl,
                        );
                    }
                    if matches!(shed, Admit::ShedDegrade) {
                        if let Some(sid) = frame.sid() {
                            let state = self.devices.get_mut(&device).expect("checked above");
                            if !state.degraded_sids.contains(&sid) {
                                state.degraded_sids.push(sid);
                            }
                            self.metrics.flow_degraded_signals.inc();
                            let notice = Frame::Response {
                                sid,
                                batch: vec![Delta::FlowStatus(FlowStatus::Degraded)],
                            };
                            // Control frame: bypasses the window on the
                            // recursive call, so this terminates.
                            self.schedule_to_device(now, device, notice, now);
                        }
                    }
                    return;
                }
            }
        }
        for trace in self.frame_traces(device, &frame) {
            self.record(trace, Hop::BurstDeliver, now, HopOutcome::Ok);
        }
        let d = self.latency.last_mile(link, &mut self.rng);
        // FIFO last mile: the connection is ordered, so a frame sent later
        // never arrives earlier (head-of-line, not reordering).
        let at = (now + d).max(self.devices[&device].next_arrival);
        {
            let state = self.devices.get_mut(&device).expect("checked above");
            state.next_arrival = at;
            state.inflight_frames += 1;
        }
        self.metrics.q_pop_egress.enqueued_n(1);
        let depth = self.devices[&device].inflight_frames;
        self.metrics.q_pop_egress.observe_depth(now, depth);
        self.send(
            at,
            Ev::AtDevice {
                device,
                frame: frame.into(),
                sent_at,
            },
        );
    }

    fn on_at_device(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        self.at_device_inner(now, device, frame, sent_at);
        // The frame drained and the machine reacted: if the device is now
        // quiescent it goes back to its frozen form until the next event.
        self.park(device);
    }

    fn at_device_inner(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        let app = self.app_of_device_frame(device, &frame);
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        // Egress accounting drains unconditionally — every frame put on
        // the wire arrives here exactly once, delivered or not. Draining
        // before the connected check is what makes admission/drain
        // symmetric, and that symmetry guarantees the terminal Recovered.
        state.inflight_frames = state.inflight_frames.saturating_sub(1);
        let egress_depth = state.inflight_frames;
        let mut recovered_sids: Vec<StreamId> = Vec::new();
        let mut flow_depth = None;
        if let Some(bytes) = frame_data_bytes(&frame) {
            if state.flow.on_drained(bytes) {
                recovered_sids = std::mem::take(&mut state.degraded_sids);
                recovered_sids.sort_unstable_by_key(|sid| sid.0);
            }
            flow_depth = Some(state.flow.in_flight());
        }
        self.metrics.q_pop_egress.dequeued_n(1);
        self.metrics.q_pop_egress.observe_depth(now, egress_depth);
        if let Some(depth) = flow_depth {
            self.metrics.q_flow_window.dequeued_n(1);
            self.metrics.q_flow_window.observe_depth(now, depth);
        }
        for sid in recovered_sids {
            // The backlog drained past the low-water mark: every stream
            // that was told Degraded now gets its terminal Recovered.
            self.metrics.flow_recovered_signals.inc();
            let notice = Frame::Response {
                sid,
                batch: vec![Delta::FlowStatus(FlowStatus::Recovered)],
            };
            self.schedule_to_device(now, device, notice, now);
        }
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            // The device dropped while the frame was in flight on the last
            // mile.
            let traces = self.frame_traces(device, &frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::DeviceRender,
                    DropReason::DeviceDisconnected,
                );
            }
            return;
        }
        // Device-observed subscription latency: first response on a stream.
        if let Some(sid) = frame.sid() {
            if let Some(started) = self.sub_started.remove(&(device, sid)) {
                self.metrics
                    .sub_e2e
                    .record(now.saturating_since(started).as_millis_f64());
            }
        }
        let outputs = state.wake(device).on_frame(&frame);
        let mut rendered_on: Option<StreamId> = None;
        for out in outputs {
            match out {
                DeviceOutput::Render { payload, sid } => {
                    rendered_on = Some(sid);
                    self.metrics.deliveries.inc();
                    self.metrics.ts_deliveries.inc(now);
                    let lat = self.metrics.app(&app);
                    lat.brass_to_device
                        .record(now.saturating_since(sent_at).as_millis_f64());
                    // Total publish time: the payload carries the original
                    // application timestamp.
                    if let Some(created) = burst::json::top_level_u64(&payload, "created_ms") {
                        let created = SimTime::from_millis(created);
                        lat.total
                            .record(now.saturating_since(created).as_millis_f64());
                    }
                    let trace = {
                        let shared = self.shared();
                        let topic = shared.stream_topic.get(&(device, sid)).copied();
                        payload_trace(&shared, topic, &payload)
                    };
                    if let Some(trace) = trace {
                        self.record(trace, Hop::DeviceRender, now, HopOutcome::Ok);
                    }
                }
                DeviceOutput::StreamEnded { sid, retry } => {
                    self.metrics.stream_closed(device, sid, now);
                    if retry {
                        let Some(state) = self.devices.get_mut(&device) else {
                            return;
                        };
                        if let Some(frame) = state.wake(device).retry_stream(sid) {
                            let link = state.link;
                            let d = self.latency.last_mile(link, &mut self.rng);
                            self.send(
                                now + d,
                                Ev::AtPop {
                                    device,
                                    frame: frame.into(),
                                },
                            );
                        }
                    }
                }
                DeviceOutput::Send(frame) => {
                    // Protocol replies (pongs, flow-control) go back up.
                    let link = self.devices[&device].link;
                    let d = self.latency.last_mile(link, &mut self.rng);
                    self.send(
                        now + d,
                        Ev::AtPop {
                            device,
                            frame: frame.into(),
                        },
                    );
                }
                DeviceOutput::BackfillPoll { sid } => {
                    // Gap detected: the device polls the WAS directly for
                    // the window it missed (the paper's at-most-once
                    // streams push reliability into app-level refetch).
                    self.metrics.backfill_polls.inc();
                    let link = self.devices[&device].link;
                    let d = self.latency.last_mile(link, &mut self.rng)
                        + self.latency.edge_to_was(&mut self.rng);
                    self.send(now + d, Ev::WasBackfillExec { device, sid });
                }
                DeviceOutput::ConnectivityChanged { .. } => {}
            }
        }
        // Reliable applications acknowledge receipt; the BRASS's retention
        // buffer shrinks and retransmission stops.
        if app == "messenger" {
            if let Some(sid) = rendered_on {
                let Some(state) = self.devices.get_mut(&device) else {
                    return;
                };
                if let Some(ack) = state.wake(device).ack(sid) {
                    let link = state.link;
                    let d = self.latency.last_mile(link, &mut self.rng);
                    self.send(
                        now + d,
                        Ev::AtPop {
                            device,
                            frame: ack.into(),
                        },
                    );
                }
            }
        }
    }

    /// The delay before a dropped device's next reconnect attempt: capped
    /// exponential backoff on its recent drop streak, plus deterministic
    /// jitter so a mass-disconnect does not come back as one synchronized
    /// thundering herd.
    fn reconnect_backoff(&mut self, now: SimTime, device: u64) -> SimDuration {
        let base = self.config.reconnect_delay;
        let Some(state) = self.devices.get_mut(&device) else {
            return base;
        };
        // A quiet couple of minutes forgives the streak.
        if now.saturating_since(state.last_drop_at) > SimDuration::from_secs(120) {
            state.drop_streak = 0;
        }
        let streak = state.drop_streak;
        state.drop_streak = streak.saturating_add(1);
        state.last_drop_at = now;
        let capped_us =
            (base.as_micros() << streak.min(5)).min(SimDuration::from_secs(60).as_micros());
        let jitter_us = self.rng.below(capped_us / 2 + 1);
        SimDuration::from_micros(capped_us + jitter_us)
    }

    /// Forgets a device's flow-control state when its connection dies:
    /// the window (and any pending Degraded episode) lives on the
    /// connection, and reconnect starts a fresh one. `inflight_frames`
    /// is deliberately left alone — frames still on the wire will arrive
    /// and decrement it regardless of connection state.
    fn reset_flow_state(&mut self, device: u64) {
        if let Some(state) = self.devices.get_mut(&device) {
            state.flow.reset();
            state.degraded_sids.clear();
        }
    }

    fn on_device_drop(&mut self, now: SimTime, device: u64) {
        self.reset_flow_state(device);
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            return;
        }
        state.connected = false;
        let resubscribes = state.wake(device).on_connection_lost();
        self.metrics.connection_drops.inc();
        self.metrics.ts_connection_drops.inc(now);
        let pop = device as usize % self.pops.len();
        let fx = self.pops[pop].on_device_disconnected(device);
        // DeviceGone teardown rides through the shared effect fan-out; the
        // false-positive reconnect branch inside it no-ops because the
        // device is already marked disconnected.
        self.process_pop_effects(now, fx);
        let backoff = self.reconnect_backoff(now, device);
        self.send(
            now + backoff,
            Ev::DeviceReconnect {
                device,
                frames: resubscribes,
            },
        );
    }

    /// A *silent* link death: no FIN reaches the POP, so server-side state
    /// lingers until POP heartbeats notice (or the device's reconnect
    /// overwrites it). The device itself notices quickly and reconnects on
    /// the same backoff schedule as an announced drop.
    fn on_device_vanish(&mut self, now: SimTime, device: u64) {
        self.reset_flow_state(device);
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            return;
        }
        state.connected = false;
        let resubscribes = state.wake(device).on_connection_lost();
        self.metrics.device_vanishes.inc();
        self.metrics.connection_drops.inc();
        self.metrics.ts_connection_drops.inc(now);
        // Deliberately NO pop/proxy notification here — that's the point.
        let backoff = self.reconnect_backoff(now, device);
        self.send(
            now + backoff,
            Ev::DeviceReconnect {
                device,
                frames: resubscribes,
            },
        );
    }

    fn on_device_reconnect(&mut self, now: SimTime, device: u64, frames: Vec<Frame>) {
        self.reset_flow_state(device);
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        state.connected = true;
        let link = state.link;
        for frame in frames {
            self.metrics.subscriptions.inc();
            self.metrics.ts_subscriptions.inc(now);
            if let Some(sid) = frame.sid() {
                self.sub_started.insert((device, sid), now);
            }
            let d = self.latency.last_mile(link, &mut self.rng);
            self.send(
                now + d,
                Ev::AtPop {
                    device,
                    frame: frame.into(),
                },
            );
        }
        // Anything lost while the device was away is refetched from the
        // WAS once the connection is back.
        let mut missed: Vec<StreamId> = self
            .pending_backfill
            .keys()
            .filter(|&&(d, _)| d == device)
            .map(|&(_, sid)| sid)
            .collect();
        missed.sort_unstable_by_key(|sid| sid.0);
        for sid in missed {
            self.metrics.backfill_polls.inc();
            let d = self.latency.last_mile(link, &mut self.rng)
                + self.latency.edge_to_was(&mut self.rng);
            self.send(now + d, Ev::WasBackfillExec { device, sid });
        }
    }

    /// Executes a device's backfill poll at the WAS: every trace lost on
    /// the way to this stream that never made it by other means is
    /// recovered out-of-band.
    fn on_was_backfill(&mut self, now: SimTime, device: u64, sid: StreamId) {
        let Some(lost) = self.pending_backfill.remove(&(device, sid)) else {
            return;
        };
        for trace in lost {
            if self.trace_resolved(trace) {
                continue;
            }
            self.metrics.backfills.inc();
            self.record(trace, Hop::WasBackfill, now, HopOutcome::Ok);
        }
    }

    /// Drops (with attribution) every update recently delivered to a host
    /// that it may still have been buffering when its in-memory state
    /// died. Traces that already rendered are left alone; anything else
    /// gets a `HostDown` drop so the ledger still accounts for it.
    fn spill_host_buffers(&mut self, now: SimTime, host: usize) {
        let mut objects: Vec<ObjectId> = self
            .object_delivered
            .keys()
            .filter(|&&(h, _)| h == host)
            .map(|&(_, o)| o)
            .collect();
        objects.sort_unstable_by_key(|o| o.0);
        let traces: Vec<TraceId> = {
            let shared = self.shared();
            objects
                .iter()
                .filter_map(|o| shared.object_trace.get(o).copied())
                .collect()
        };
        for trace in traces {
            if self.trace_resolved(trace) {
                continue;
            }
            self.record(
                trace,
                Hop::BrassProcess,
                now,
                HopOutcome::Dropped(DropReason::HostDown),
            );
        }
    }

    fn on_brass_upgrade(&mut self, now: SimTime, host: usize) {
        // The host's in-memory stream state is lost; Pylon drops its
        // subscriptions; proxies repair every affected stream elsewhere.
        // This is the *planned* path: everyone is told immediately.
        self.spill_host_buffers(now, host);
        let mut fresh = BrassHost::new(HostConfig::small(host as u32));
        fresh.register_standard_apps();
        self.hosts[host] = fresh;
        // A replacement process starts with an empty ingress mailbox.
        self.host_busy_until[host] = SimTime::ZERO;
        self.send(now, Ev::PylonHostFailed { host });
        for proxy in 0..self.config.proxies as usize {
            self.send(now, Ev::ProxyHostFailed { proxy, host });
        }
    }

    /// A planned (upgrade) or healed (crash) host rejoins every live
    /// proxy's routing pool with a fresh heartbeat monitor.
    fn on_brass_host_back(&mut self, now: SimTime, host: usize) {
        for proxy in 0..self.config.proxies as usize {
            self.send(now, Ev::ProxyAddHost { proxy, host });
        }
    }

    /// One proxy learns a BRASS host died (planned drain) and repairs the
    /// streams it had routed there. The repair burst is recorded in the
    /// proxy-reconnect series (additive buckets, so per-proxy records sum
    /// to the fleet-wide delta).
    fn on_proxy_host_failed(&mut self, now: SimTime, proxy: usize, host: usize) {
        if proxy >= self.proxies.len() || !self.proxy_up[proxy] {
            return;
        }
        let before = self.proxies[proxy].counters().induced_reconnects;
        let fx = self.proxies[proxy].on_brass_host_failed(host as u32, now.as_micros());
        self.process_proxy_effects(now, proxy, fx);
        let delta = self.proxies[proxy].counters().induced_reconnects - before;
        self.metrics.ts_proxy_reconnects.record(now, delta as f64);
    }

    /// One proxy observes the connection reset from a sub-threshold
    /// crash/revive and re-establishes the streams it had routed to the
    /// restarted host. No-op when heartbeat detection already fired (the
    /// host left the pool and the failed/add_host pair owns repair).
    fn on_proxy_host_restarted(&mut self, now: SimTime, proxy: usize, host: usize) {
        if proxy >= self.proxies.len() || !self.proxy_up[proxy] {
            return;
        }
        let before = self.proxies[proxy].counters().induced_reconnects;
        let fx = self.proxies[proxy].on_host_restarted(host as u32, now.as_micros());
        self.process_proxy_effects(now, proxy, fx);
        let delta = self.proxies[proxy].counters().induced_reconnects - before;
        self.metrics.ts_proxy_reconnects.record(now, delta as f64);
    }

    fn on_proxy_add_host(&mut self, now: SimTime, proxy: usize, host: usize) {
        if proxy >= self.proxies.len() || !self.proxy_up[proxy] {
            return;
        }
        let before = self.proxies[proxy].counters().induced_reconnects;
        let fx = self.proxies[proxy].add_host(host as u32);
        self.process_proxy_effects(now, proxy, fx);
        let delta = self.proxies[proxy].counters().induced_reconnects - before;
        self.metrics.ts_proxy_reconnects.record(now, delta as f64);
    }

    fn on_brass_crash(&mut self, now: SimTime, host: usize) {
        if host >= self.hosts.len() || !self.host_up[host] {
            return;
        }
        self.host_up[host] = false;
        self.op(SharedOp::HostUp(host, false));
        self.metrics.host_crashes.inc();
        // In-memory state — stream tables, app buffers — dies instantly;
        // updates the host was still holding are dropped with attribution.
        self.spill_host_buffers(now, host);
        let mut fresh = BrassHost::new(HostConfig::small(host as u32));
        fresh.register_standard_apps();
        self.hosts[host] = fresh;
        // The backlog died with the process: whatever replaces it starts
        // with an empty ingress mailbox.
        self.host_busy_until[host] = SimTime::ZERO;
        // Crucially, NOTHING is signalled here: Pylon keeps fanning events
        // at the corpse and proxies keep routing to it until their
        // heartbeat monitors cross the miss threshold.
    }

    fn on_brass_recover(&mut self, now: SimTime, host: usize) {
        if host >= self.hosts.len() || self.host_up[host] {
            return;
        }
        self.host_up[host] = true;
        self.op(SharedOp::HostUp(host, true));
        // The restarted process resets every proxy's connections to it —
        // that reset, not heartbeat detection, is what lets proxies
        // repair streams after a crash shorter than the miss window.
        for proxy in 0..self.config.proxies as usize {
            self.send(now, Ev::ProxyHostRestarted { proxy, host });
        }
        self.on_brass_host_back(now, host);
    }

    fn on_proxy_outage(&mut self, now: SimTime, proxy: usize) {
        if proxy >= self.proxies.len() || !self.proxy_up[proxy] {
            return;
        }
        self.proxy_up[proxy] = false;
        self.metrics.proxy_outages.inc();
        // POPs see the region's connections reset: each drops the proxy
        // from its pool and repairs affected streams onto survivors
        // (axiom 2), signalling Degraded/Recovered to devices (axiom 1).
        for pop in 0..self.config.pops as usize {
            self.send(now, Ev::PopProxyFailed { pop, proxy });
        }
    }

    fn on_proxy_back(&mut self, now: SimTime, proxy: usize) {
        if proxy >= self.proxies.len() || self.proxy_up[proxy] {
            return;
        }
        // The proxy restarts empty with the full host roster minus hosts
        // already known dead (per the shared liveness mirror); anything
        // that dies later is re-detected by its fresh heartbeat monitors.
        let host_ids: Vec<u32> = (0..self.config.brass_hosts).collect();
        let mut fresh = ReverseProxy::new(proxy as u32, self.config.route_strategy, host_ids)
            .with_heartbeat(
                self.config.heartbeat_interval.as_micros(),
                self.config.heartbeat_misses,
            );
        {
            let shared = self.shared();
            for (h, up) in shared.host_up.iter().enumerate() {
                if !*up {
                    fresh.remove_host(h as u32);
                }
            }
        }
        self.proxies[proxy] = fresh;
        self.proxy_up[proxy] = true;
        for pop in 0..self.config.pops as usize {
            self.send(now, Ev::PopAddProxy { pop, proxy });
        }
    }

    /// The per-shard heartbeat tick: the shard's live proxies ping their
    /// BRASS hosts (and repair streams off hosts that crossed the miss
    /// threshold); its POPs ping devices when device heartbeats are on.
    fn on_heartbeat_tick(&mut self, now: SimTime) {
        for proxy in 0..self.proxies.len() {
            if proxy % self.shards != self.id || !self.proxy_up[proxy] {
                continue;
            }
            let before = self.proxies[proxy].counters().induced_reconnects;
            let fx = self.proxies[proxy].on_heartbeat_tick(now.as_micros());
            self.process_proxy_effects(now, proxy, fx);
            let delta = self.proxies[proxy].counters().induced_reconnects - before;
            if delta > 0 {
                self.metrics.ts_proxy_reconnects.record(now, delta as f64);
            }
        }
        if self.config.device_heartbeats {
            for pop in 0..self.pops.len() {
                if pop % self.shards != self.id {
                    continue;
                }
                let fx = self.pops[pop].on_heartbeat_tick(now.as_micros());
                self.process_pop_effects(now, fx);
            }
        }
        self.queue
            .schedule(now + self.config.heartbeat_interval, Ev::HeartbeatTick);
    }

    /// Shared POP-effect fan-out (frames up to proxies, frames down to
    /// devices, device-gone teardown at the owning proxy).
    fn process_pop_effects(&mut self, now: SimTime, effects: Vec<PopEffect>) {
        for effect in effects {
            match effect {
                PopEffect::ToProxy {
                    proxy,
                    device,
                    frame,
                } => {
                    self.op(SharedOp::DeviceProxy(device, proxy as usize));
                    let d = self.latency.pop_proxy(&mut self.rng);
                    self.send(
                        now + d,
                        Ev::AtProxy {
                            proxy: proxy as usize,
                            device,
                            frame: frame.into(),
                        },
                    );
                }
                PopEffect::ToDevice { device, frame } => {
                    self.schedule_to_device(now, device, frame, now);
                }
                PopEffect::DeviceGone { proxy, device } => {
                    self.send(
                        now,
                        Ev::ProxyDeviceGone {
                            proxy: proxy as usize,
                            device,
                        },
                    );
                    // The reap can be a false positive: the device is alive
                    // but its pongs died on a lossy link. The POP has
                    // already closed the connection under it, so the device
                    // sees the transport die and reconnects on the normal
                    // backoff schedule (otherwise it would sit "connected"
                    // with streams no server knows about, forever).
                    let resubscribes = match self.devices.get_mut(&device) {
                        Some(state) if state.connected => {
                            state.connected = false;
                            state.flow.reset();
                            state.degraded_sids.clear();
                            self.metrics.connection_drops.inc();
                            self.metrics.ts_connection_drops.inc(now);
                            Some(state.wake(device).on_connection_lost())
                        }
                        _ => None,
                    };
                    if let Some(resubscribes) = resubscribes {
                        let backoff = self.reconnect_backoff(now, device);
                        self.send(
                            now + backoff,
                            Ev::DeviceReconnect {
                                device,
                                frames: resubscribes,
                            },
                        );
                    }
                }
            }
        }
    }

    /// One coordinator-driven metrics tick: samples this shard's slice of
    /// the fleet and reports the cross-shard aggregates the root series
    /// need. Also rotates the object-attribution window.
    fn shard_tick(&mut self, at: SimTime) -> TickSummary {
        let active_streams: u64 = self.devices.values().map(|d| d.open_streams() as u64).sum();
        let decisions: u64 = (0..self.hosts.len())
            .filter(|h| h % self.shards == self.id)
            .map(|h| self.hosts[h].total_app_counters().decisions)
            .sum();
        let mut live: Vec<(u64, StreamId)> = Vec::new();
        for h in 0..self.hosts.len() {
            if h % self.shards == self.id && self.host_up[h] {
                live.extend(self.hosts[h].stream_keys());
            }
        }
        let mut open: Vec<(u64, StreamId)> = Vec::new();
        for (&id, state) in &self.devices {
            if !state.connected {
                continue;
            }
            open.extend(state.open_sids().into_iter().map(|sid| (id, sid)));
        }
        // Rotate the attribution map so it cannot grow without bound —
        // but keep a window covering application buffering horizons, so a
        // crash can still attribute the updates it takes down with it.
        const ATTRIBUTION_WINDOW: SimDuration = SimDuration::from_secs(30);
        self.object_delivered
            .retain(|_, t| at.saturating_since(*t) <= ATTRIBUTION_WINDOW);
        TickSummary {
            active_streams,
            decisions,
            live,
            open,
            fp: self.fingerprint(),
        }
    }

    /// A cheap rolling fingerprint of this shard's *executed* history:
    /// the RNG stream position, every event-stats counter, and the
    /// metrics digest — all of which change only when events run, never
    /// when they are merely scheduled. Two runs of the same
    /// `(config, seed, workload)` agree on every shard's fingerprint at
    /// every tick; the first tick where they disagree brackets the first
    /// diverging event, and (deliberately) a future event sitting
    /// unexecuted in the queue does not diverge the hash early — the
    /// bisect engine depends on divergence showing up at the tick where
    /// behaviour actually differs.
    fn fingerprint(&self) -> u64 {
        let mut fp = Fp64::new();
        fp.mix_u64(self.id as u64);
        for word in self.rng.state() {
            fp.mix_u64(word);
        }
        self.event_stats.mix_fp(&mut fp);
        self.metrics.mix_fingerprint(&mut fp);
        fp.value()
    }

    /// Writes this shard's complete state into a snapshot: RNG stream,
    /// event queue, the shard-0 backend, every *owned* component slot,
    /// liveness and backlog vectors, the device fleet, the attribution
    /// maps, metrics, and event stats. Must be called at a window barrier
    /// (the coordinator only snapshots at metrics-tick boundaries), where
    /// the outbox, deferred registry writes, and buffered ledger records
    /// are all drained — their contents are ordering products of a window
    /// in flight, not resumable state.
    fn snap(&self, w: &mut SnapWriter) {
        assert!(
            self.outbox.is_empty() && self.ops.is_empty() && self.led_pending.is_empty(),
            "shard snapshot taken mid-window"
        );
        for word in self.rng.state() {
            w.put_u64(word);
        }
        self.queue.snap(w);
        match &self.was {
            Some(was) => {
                w.put_bool(true);
                was.snap(w);
            }
            None => w.put_bool(false),
        }
        match &self.pylon {
            Some(pylon) => {
                w.put_bool(true);
                pylon.snap(w);
            }
            None => w.put_bool(false),
        }
        // Component vectors are allocated full-size on every shard but a
        // shard only ever touches the slots it owns; foreign slots are
        // pristine `new()` state and are rebuilt, not serialized.
        let owned = |i: usize| i % self.shards == self.id;
        for section in [
            (0..self.hosts.len())
                .filter(|&h| owned(h))
                .collect::<Vec<_>>(),
            (0..self.proxies.len()).filter(|&p| owned(p)).collect(),
            (0..self.pops.len())
                .filter(|&p| p % self.shards == self.id)
                .collect(),
        ] {
            w.put_usize(section.len());
        }
        for h in (0..self.hosts.len()).filter(|&h| owned(h)) {
            w.put_usize(h);
            self.hosts[h].snap(w);
        }
        for p in (0..self.proxies.len()).filter(|&p| owned(p)) {
            w.put_usize(p);
            self.proxies[p].snap(w);
        }
        for p in (0..self.pops.len()).filter(|&p| owned(p)) {
            w.put_usize(p);
            self.pops[p].snap(w);
        }
        w.put_usize(self.host_up.len());
        for up in &self.host_up {
            w.put_bool(*up);
        }
        w.put_usize(self.proxy_up.len());
        for up in &self.proxy_up {
            w.put_bool(*up);
        }
        w.put_usize(self.host_busy_until.len());
        for t in &self.host_busy_until {
            t.snap(w);
        }
        w.put_usize(self.devices.len());
        for (&id, d) in &self.devices {
            w.put_u64(id);
            d.snap(w);
        }
        // Hash maps in sorted key order so the same logical state always
        // snapshots to the same bytes; the Vec values keep their order
        // verbatim (backfill traces replay in arrival order).
        let mut backfill: Vec<_> = self.pending_backfill.iter().collect();
        backfill.sort_by_key(|(k, _)| **k);
        w.put_usize(backfill.len());
        for (&(device, sid), traces) in backfill {
            w.put_u64(device);
            sid.snap(w);
            w.put_usize(traces.len());
            for t in traces {
                t.snap(w);
            }
        }
        let mut delivered: Vec<_> = self.object_delivered.iter().collect();
        delivered.sort_by_key(|((host, object), _)| (*host, object.0));
        w.put_usize(delivered.len());
        for (&(host, object), at) in delivered {
            w.put_usize(host);
            w.put_u64(object.0);
            at.snap(w);
        }
        let mut started: Vec<_> = self.sub_started.iter().collect();
        started.sort_by_key(|(k, _)| **k);
        w.put_usize(started.len());
        for (&(device, sid), at) in started {
            w.put_u64(device);
            sid.snap(w);
            at.snap(w);
        }
        self.metrics.snap(w);
        self.event_stats.snap(w);
    }

    /// Rebuilds a shard from [`Shard::snap`] bytes, validating ownership
    /// (every restored slot, device, and map key must hash to this shard)
    /// and sorted-key order so a hostile or stale snapshot can't smuggle
    /// in state the live sharding could never produce.
    fn restore(
        id: usize,
        config: &SystemConfig,
        world: Arc<World>,
        r: &mut SnapReader<'_>,
    ) -> SnapResult<Shard> {
        // Start from a pristine shard (correct full-size component
        // vectors, empty queue) and overwrite everything stateful. The
        // fork seed doesn't matter: the RNG is replaced from the snapshot.
        let mut s = Shard::new(id, config, &DetRng::new(0), world);
        let shards = s.shards;
        s.rng = DetRng::from_state([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?]);
        s.queue = EventQueue::restore(r)?;
        let has_was = r.get_bool()?;
        if has_was != (id == 0) {
            return Err(SnapError::Invalid(format!(
                "WAS present on shard {id} (singleton backend lives on shard 0)"
            )));
        }
        s.was = if has_was {
            Some(WebApplicationServer::restore(r)?)
        } else {
            None
        };
        let has_pylon = r.get_bool()?;
        if has_pylon != (id == 0) {
            return Err(SnapError::Invalid(format!(
                "Pylon present on shard {id} (singleton backend lives on shard 0)"
            )));
        }
        s.pylon = if has_pylon {
            Some(PylonCluster::restore(r)?)
        } else {
            None
        };
        let owned = |i: usize| i % shards == id;
        let expect = |len: usize| (0..len).filter(|&i| owned(i)).count();
        let n_hosts = r.get_len()?;
        let n_proxies = r.get_len()?;
        let n_pops = r.get_len()?;
        if n_hosts != expect(s.hosts.len())
            || n_proxies != expect(s.proxies.len())
            || n_pops != expect(s.pops.len())
        {
            return Err(SnapError::Invalid(format!(
                "shard {id} owned-slot counts {n_hosts}/{n_proxies}/{n_pops} don't match config"
            )));
        }
        let mut last: Option<usize> = None;
        for _ in 0..n_hosts {
            let h = r.get_usize()?;
            if h >= s.hosts.len() || !owned(h) || last.is_some_and(|l| h <= l) {
                return Err(SnapError::Invalid(format!(
                    "bad host slot {h} on shard {id}"
                )));
            }
            last = Some(h);
            s.hosts[h] = BrassHost::restore(r)?;
            if s.hosts[h].host_id() != HostId(h as u32) {
                return Err(SnapError::Invalid(format!(
                    "host slot {h} holds id {}",
                    s.hosts[h].host_id().0
                )));
            }
        }
        let mut last: Option<usize> = None;
        for _ in 0..n_proxies {
            let p = r.get_usize()?;
            if p >= s.proxies.len() || !owned(p) || last.is_some_and(|l| p <= l) {
                return Err(SnapError::Invalid(format!(
                    "bad proxy slot {p} on shard {id}"
                )));
            }
            last = Some(p);
            s.proxies[p] = ReverseProxy::restore(r)?;
            if s.proxies[p].id() != p as u32 {
                return Err(SnapError::Invalid(format!(
                    "proxy slot {p} holds id {}",
                    s.proxies[p].id()
                )));
            }
        }
        let mut last: Option<usize> = None;
        for _ in 0..n_pops {
            let p = r.get_usize()?;
            if p >= s.pops.len() || !owned(p) || last.is_some_and(|l| p <= l) {
                return Err(SnapError::Invalid(format!(
                    "bad POP slot {p} on shard {id}"
                )));
            }
            last = Some(p);
            s.pops[p] = Pop::restore(r)?;
            if s.pops[p].id() != p as u32 {
                return Err(SnapError::Invalid(format!(
                    "POP slot {p} holds id {}",
                    s.pops[p].id()
                )));
            }
        }
        for (name, len) in [("host_up", s.host_up.len()), ("proxy_up", s.proxy_up.len())] {
            let n = r.get_len()?;
            if n != len {
                return Err(SnapError::Invalid(format!(
                    "{name} length {n}, config says {len}"
                )));
            }
            for i in 0..n {
                let up = r.get_bool()?;
                if name == "host_up" {
                    s.host_up[i] = up;
                } else {
                    s.proxy_up[i] = up;
                }
            }
        }
        let n = r.get_len()?;
        if n != s.host_busy_until.len() {
            return Err(SnapError::Invalid(format!(
                "host_busy_until length {n}, config says {}",
                s.host_busy_until.len()
            )));
        }
        for i in 0..n {
            s.host_busy_until[i] = SimTime::restore(r)?;
        }
        let n = r.get_len()?;
        let mut last_dev: Option<u64> = None;
        for _ in 0..n {
            let dev = r.get_u64()?;
            if last_dev.is_some_and(|l| dev <= l) {
                return Err(SnapError::Invalid(format!(
                    "device ids not strictly ascending at {dev}"
                )));
            }
            if !s.owns_device(dev) {
                return Err(SnapError::Invalid(format!(
                    "device {dev} doesn't belong on shard {id}"
                )));
            }
            last_dev = Some(dev);
            let state = DeviceState::restore(dev, r)?;
            s.devices.insert(dev, state);
        }
        let n = r.get_len()?;
        let mut last_key: Option<(u64, StreamId)> = None;
        for _ in 0..n {
            let device = r.get_u64()?;
            let sid = StreamId::restore(r)?;
            if last_key.is_some_and(|l| (device, sid) <= l) {
                return Err(SnapError::Invalid(
                    "pending-backfill keys not strictly ascending".into(),
                ));
            }
            last_key = Some((device, sid));
            let m = r.get_len()?;
            let mut traces = Vec::with_capacity(m);
            for _ in 0..m {
                traces.push(TraceId::restore(r)?);
            }
            s.pending_backfill.insert((device, sid), traces);
        }
        let n = r.get_len()?;
        let mut last_key: Option<(usize, u64)> = None;
        for _ in 0..n {
            let host = r.get_usize()?;
            let object = ObjectId(r.get_u64()?);
            if last_key.is_some_and(|l| (host, object.0) <= l) {
                return Err(SnapError::Invalid(
                    "object-delivered keys not strictly ascending".into(),
                ));
            }
            if host >= s.hosts.len() || !owned(host) {
                return Err(SnapError::Invalid(format!(
                    "object-delivered host {host} not owned by shard {id}"
                )));
            }
            last_key = Some((host, object.0));
            s.object_delivered
                .insert((host, object), SimTime::restore(r)?);
        }
        let n = r.get_len()?;
        let mut last_key: Option<(u64, StreamId)> = None;
        for _ in 0..n {
            let device = r.get_u64()?;
            let sid = StreamId::restore(r)?;
            if last_key.is_some_and(|l| (device, sid) <= l) {
                return Err(SnapError::Invalid(
                    "sub-started keys not strictly ascending".into(),
                ));
            }
            last_key = Some((device, sid));
            s.sub_started.insert((device, sid), SimTime::restore(r)?);
        }
        s.metrics = SystemMetrics::restore(r, config.metrics_horizon, config.metrics_interval)?;
        s.event_stats = EventStats::restore(r)?;
        Ok(s)
    }
}

// ----------------------------------------------------------------------
// The coordinator: conservative windows over the shard set.
// ----------------------------------------------------------------------

/// A command the coordinator sends a worker thread.
enum Cmd {
    /// Run one shard's loop up to `end` after delivering `incoming`.
    Run {
        shard: usize,
        end: SimTime,
        incoming: Vec<Envelope<Ev>>,
    },
    /// Take one shard's metrics-tick sample at `at`.
    Tick { shard: usize, at: SimTime },
    /// Serialize one shard's state (only ever sent at a tick barrier).
    Snap { shard: usize },
}

/// What one shard hands back from a window: its barrier products and the
/// time of its next pending event.
struct WindowRes {
    shard: usize,
    outbox: Vec<(SimTime, Ev)>,
    ops: Vec<SharedOp>,
    led: Vec<LedRec>,
    next: Option<SimTime>,
}

enum WorkerRes {
    Window(WindowRes),
    Tick { shard: usize, summary: TickSummary },
    Snap { shard: usize, bytes: Vec<u8> },
}

/// A worker thread's loop: serve Run/Tick commands for the shards this
/// worker owns until the coordinator hangs up.
fn worker_loop(
    mut shards: Vec<(usize, &mut Shard)>,
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<WorkerRes>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Run {
                shard,
                end,
                incoming,
            } => {
                let (_, s) = shards
                    .iter_mut()
                    .find(|(i, _)| *i == shard)
                    .expect("command routed to the owning worker");
                s.run_window(end, incoming);
                let res = WindowRes {
                    shard,
                    outbox: std::mem::take(&mut s.outbox),
                    ops: std::mem::take(&mut s.ops),
                    led: std::mem::take(&mut s.led_pending),
                    next: s.queue.peek_time(),
                };
                let _ = tx.send(WorkerRes::Window(res));
            }
            Cmd::Tick { shard, at } => {
                let (_, s) = shards
                    .iter_mut()
                    .find(|(i, _)| *i == shard)
                    .expect("command routed to the owning worker");
                let summary = s.shard_tick(at);
                let _ = tx.send(WorkerRes::Tick { shard, summary });
            }
            Cmd::Snap { shard } => {
                let (_, s) = shards
                    .iter_mut()
                    .find(|(i, _)| *i == shard)
                    .expect("command routed to the owning worker");
                let mut w = SnapWriter::new();
                s.snap(&mut w);
                let _ = tx.send(WorkerRes::Snap {
                    shard,
                    bytes: w.into_bytes(),
                });
            }
        }
    }
}

/// The window barrier, shared verbatim by the serial and threaded
/// drivers: apply deferred registry writes and ledger records in shard
/// order, then wrap, merge, and route the cross-shard mail. Everything
/// here is ordered by `(shard, emission index)` or `(time, src, seq)` —
/// never by thread completion order.
fn apply_barrier(
    world: &World,
    pending_incoming: &mut [Vec<Envelope<Ev>>],
    pops: usize,
    shards: usize,
    window_end: SimTime,
    mut results: Vec<WindowRes>,
) {
    debug_assert!(results.windows(2).all(|w| w[0].shard < w[1].shard));
    {
        let mut shared = world.shared.write().unwrap();
        for r in results.iter_mut() {
            for op in r.ops.drain(..) {
                apply_shared_op(&mut shared, op);
            }
        }
    }
    {
        let mut ledger = world.ledger.write().unwrap();
        for r in results.iter_mut() {
            for (trace, hop, at, outcome) in r.led.drain(..) {
                ledger.record(trace, hop, at, outcome);
            }
        }
    }
    let outboxes: Vec<Vec<Envelope<Ev>>> = results
        .into_iter()
        .map(|r| {
            let src = r.shard;
            r.outbox
                .into_iter()
                .enumerate()
                .map(|(i, (at, event))| Envelope {
                    at: clamp_to_window(at, window_end),
                    src_shard: src,
                    seq: i as u64,
                    event,
                })
                .collect()
        })
        .collect();
    for env in merge(outboxes) {
        let dest = shard_route(&env.event, pops, shards);
        pending_incoming[dest].push(env);
    }
}

/// Folds per-shard tick samples into the root time series (active
/// streams, decision deltas, stream availability) exactly as the
/// un-sharded metrics tick used to.
fn record_tick(
    root_metrics: &mut SystemMetrics,
    root_stats: &mut EventStats,
    decisions_at_tick: &mut u64,
    fingerprints: &mut Vec<(SimTime, u64)>,
    ledger_fp: u64,
    at: SimTime,
    summaries: Vec<TickSummary>,
) {
    // The per-tick run fingerprint: tick time, the ledger's rolling hash,
    // and every shard's state digest (in shard order), plus the fleet
    // aggregates the root series are about to record. Cumulative by
    // construction — once two runs disagree at a tick, they disagree at
    // every later tick, which is what lets the bisect harness
    // binary-search the series.
    let mut fp = Fp64::new();
    fp.mix_u64(at.as_micros());
    fp.mix_u64(ledger_fp);
    for s in &summaries {
        fp.mix_u64(s.fp);
        fp.mix_u64(s.active_streams);
        fp.mix_u64(s.decisions);
        fp.mix_u64(s.live.len() as u64);
        fp.mix_u64(s.open.len() as u64);
    }
    fingerprints.push((at, fp.value()));
    root_stats.total += 1;
    root_stats.metrics += 1;
    let active: u64 = summaries.iter().map(|s| s.active_streams).sum();
    root_metrics.ts_active_streams.record(at, active as f64);
    let decisions: u64 = summaries.iter().map(|s| s.decisions).sum();
    // Saturating: a crashed/upgraded host restarts with zeroed counters,
    // so the fleet total can move backwards across a tick.
    root_metrics
        .ts_decisions
        .record(at, decisions.saturating_sub(*decisions_at_tick) as f64);
    *decisions_at_tick = decisions;
    // One availability sample: of all open streams on currently-connected
    // devices, the fraction a live BRASS host is serving right now.
    let mut live: FxHashSet<(u64, StreamId)> = FxHashSet::default();
    for s in &summaries {
        live.extend(s.live.iter().copied());
    }
    let mut open = 0u64;
    let mut served = 0u64;
    for s in &summaries {
        for key in &s.open {
            open += 1;
            if live.contains(key) {
                served += 1;
            }
        }
    }
    let fraction = if open == 0 {
        1.0
    } else {
        served as f64 / open as f64
    };
    root_metrics.record_availability(at, fraction);
}

/// Serializes the coordinator-level state plus the already-serialized
/// per-shard bodies into one snapshot body (unsealed). Shared by the
/// serial driver (which serializes shards inline) and the threaded driver
/// (which collects bodies from the workers owning the shards).
#[allow(clippy::too_many_arguments)]
fn assemble_snapshot_body(
    config: &SystemConfig,
    at: SimTime,
    next_metrics_tick: SimTime,
    tick_index: u64,
    decisions_at_tick: u64,
    rng: &DetRng,
    langs: &[String],
    scenario_sids: &FxHashMap<u64, u64>,
    world: &World,
    root_metrics: &SystemMetrics,
    root_stats: &EventStats,
    fingerprints: &[(SimTime, u64)],
    pending_incoming: &[Vec<Envelope<Ev>>],
    shard_bodies: &[Vec<u8>],
    driver_blob: &[u8],
) -> Vec<u8> {
    let mut w = SnapWriter::new();
    // The config is part of the experiment definition, not the state:
    // resume requires the caller to rebuild the exact same config and
    // only validates it (by its Debug rendering, which covers every
    // field) instead of round-tripping every nested knob.
    w.put_str(&format!("{config:?}"));
    at.snap(&mut w);
    next_metrics_tick.snap(&mut w);
    w.put_u64(tick_index);
    w.put_u64(decisions_at_tick);
    for word in rng.state() {
        w.put_u64(word);
    }
    w.put_usize(langs.len());
    for l in langs {
        w.put_str(l);
    }
    snap::snap_map(scenario_sids, &mut w);
    {
        let shared = world.shared.read().unwrap();
        let mut traces: Vec<_> = shared.object_trace.iter().collect();
        traces.sort_by_key(|(k, _)| k.0);
        w.put_usize(traces.len());
        for (object, trace) in traces {
            w.put_u64(object.0);
            trace.snap(&mut w);
        }
        let mut fanout_traces: Vec<_> = shared.topic_object_trace.iter().collect();
        fanout_traces
            .sort_by(|a, b| (a.0 .0.as_str(), a.0 .1 .0).cmp(&(b.0 .0.as_str(), b.0 .1 .0)));
        w.put_usize(fanout_traces.len());
        for (&(topic, object), trace) in fanout_traces {
            topic.snap(&mut w);
            w.put_u64(object.0);
            trace.snap(&mut w);
        }
        let mut topics: Vec<_> = shared.topic_streams.iter().collect();
        topics.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        w.put_usize(topics.len());
        for (topic, streams) in topics {
            topic.snap(&mut w);
            // Verbatim: publication fan-out walks this vec in push order.
            w.put_usize(streams.len());
            for (device, sid) in streams {
                w.put_u64(*device);
                sid.snap(&mut w);
            }
        }
        let mut stream_topics: Vec<_> = shared.stream_topic.iter().collect();
        stream_topics.sort_by_key(|(k, _)| **k);
        w.put_usize(stream_topics.len());
        for (&(device, sid), topic) in stream_topics {
            w.put_u64(device);
            sid.snap(&mut w);
            topic.snap(&mut w);
        }
        let mut proxies: Vec<_> = shared.device_proxy.iter().collect();
        proxies.sort_by_key(|(k, _)| **k);
        w.put_usize(proxies.len());
        for (&device, &proxy) in proxies {
            w.put_u64(device);
            w.put_usize(proxy);
        }
        w.put_usize(shared.host_up.len());
        for up in &shared.host_up {
            w.put_bool(*up);
        }
    }
    world.ledger.read().unwrap().snap(&mut w);
    root_metrics.snap(&mut w);
    root_stats.snap(&mut w);
    w.put_usize(fingerprints.len());
    for (tick, fp) in fingerprints {
        tick.snap(&mut w);
        w.put_u64(*fp);
    }
    w.put_usize(pending_incoming.len());
    for mailbox in pending_incoming {
        // Verbatim: envelope order is queue insertion order, which breaks
        // ties between same-time events.
        w.put_usize(mailbox.len());
        for env in mailbox {
            env.at.snap(&mut w);
            w.put_usize(env.src_shard);
            w.put_u64(env.seq);
            env.event.snap(&mut w);
        }
    }
    w.put_usize(shard_bodies.len());
    for body in shard_bodies {
        w.put_bytes(body);
    }
    w.put_bytes(driver_blob);
    w.into_bytes()
}

/// Delivers one policy-captured snapshot: into the in-memory ring and/or
/// onto disk, per the configured policy.
fn store_snapshot(
    snapshots: &mut Vec<(SimTime, Vec<u8>)>,
    keep: bool,
    dir: &Option<PathBuf>,
    tick: SimTime,
    sealed: Vec<u8>,
) {
    if let Some(dir) = dir {
        let path = dir.join(format!("snap-{:012}.brsnap", tick.as_micros()));
        std::fs::write(&path, &sealed)
            .unwrap_or_else(|e| panic!("writing snapshot {}: {e}", path.display()));
    }
    if keep {
        snapshots.push((tick, sealed));
    }
}

/// The full-system simulation: a set of logical shards driven in
/// conservative parallel windows by this coordinator. See the module docs
/// for the synchronisation contract.
pub struct SystemSim {
    config: SystemConfig,
    latency: LatencyModel,
    /// The master RNG: workload generators and fixture setup draw from it;
    /// every shard's private stream is forked off it at construction.
    rng: DetRng,
    /// Worker threads driving shard windows (1 = serial). Purely a
    /// performance knob: results are identical for any value.
    workers: usize,
    now: SimTime,
    next_metrics_tick: SimTime,
    world: Arc<World>,
    shards: Vec<Shard>,
    /// Cross-shard envelopes awaiting delivery at each shard's next
    /// window, in `(time, src_shard, seq)` order.
    pending_incoming: Vec<Vec<Envelope<Ev>>>,
    /// Root-recorded series (metrics ticks aggregate across shards).
    root_metrics: SystemMetrics,
    root_stats: EventStats,
    /// Root + all shards, folded after every `run_until`.
    merged_metrics: SystemMetrics,
    merged_stats: EventStats,
    /// Decisions seen at the last metrics tick (for per-bucket deltas).
    decisions_at_tick: u64,
    /// Scenario bookkeeping: predicted next stream id per device.
    scenario_sids: FxHashMap<u64, u64>,
    /// The interned header-language table; [`DeviceState::lang`] indexes
    /// into it.
    langs: Vec<String>,
    /// Per-metrics-tick rolling run fingerprints `(tick, fp)` accumulated
    /// since construction (or since the snapshot this run resumed from,
    /// which carries the earlier ones).
    fingerprints: Vec<(SimTime, u64)>,
    /// Metrics ticks fired so far (the snapshot cadence counter).
    tick_index: u64,
    /// Snapshot policy: capture every N metrics ticks (0 = never).
    snapshot_every: u64,
    /// Keep policy-captured snapshots in memory (the bisect harness
    /// restores from them).
    snapshot_keep: bool,
    /// Also write policy-captured snapshots into this directory.
    snapshot_dir: Option<PathBuf>,
    /// In-memory snapshots captured by the policy: `(tick, sealed bytes)`.
    snapshots: Vec<(SimTime, Vec<u8>)>,
    /// Opaque harness state carried inside snapshots: the driving bench
    /// serializes its workload cursors here so a resumed process can pick
    /// up injection exactly where the original left off.
    driver_blob: Vec<u8>,
}

impl SystemSim {
    /// Builds a system: `config.logical_shards` event loops around a
    /// shared world, with the periodic metrics tick driven from here.
    pub fn new(config: SystemConfig, seed: u64) -> Self {
        let rng = DetRng::new(seed);
        let world = Arc::new(World {
            shared: RwLock::new(SharedInner {
                object_trace: FxHashMap::default(),
                topic_object_trace: FxHashMap::default(),
                topic_streams: FxHashMap::default(),
                stream_topic: FxHashMap::default(),
                device_proxy: FxHashMap::default(),
                host_up: vec![true; config.brass_hosts as usize],
            }),
            ledger: RwLock::new(TraceLedger::with_retention(config.trace_retention)),
        });
        let shards: Vec<Shard> = (0..config.logical_shards)
            .map(|id| Shard::new(id, &config, &rng, Arc::clone(&world)))
            .collect();
        let pending_incoming = (0..config.logical_shards).map(|_| Vec::new()).collect();
        let mut sim = SystemSim {
            latency: LatencyModel::table3(),
            rng,
            workers: 1,
            now: SimTime::ZERO,
            next_metrics_tick: SimTime::ZERO + config.metrics_interval,
            world,
            shards,
            pending_incoming,
            root_metrics: SystemMetrics::new(config.metrics_horizon, config.metrics_interval),
            root_stats: EventStats::default(),
            merged_metrics: SystemMetrics::new(config.metrics_horizon, config.metrics_interval),
            merged_stats: EventStats::default(),
            decisions_at_tick: 0,
            scenario_sids: FxHashMap::default(),
            langs: Vec::new(),
            fingerprints: Vec::new(),
            tick_index: 0,
            snapshot_every: 0,
            snapshot_keep: false,
            snapshot_dir: None,
            snapshots: Vec::new(),
            driver_blob: Vec::new(),
            config,
        };
        sim.rebuild_merged();
        sim
    }

    /// Sets the number of worker threads driving shard windows. `1` (the
    /// default) runs shards serially on the caller's thread. Any value is
    /// safe at any time: the worker count decides only which OS thread
    /// executes a shard, never what the simulation computes — metrics and
    /// trace ledger are bit-identical across worker counts.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The WAS (for fixture setup: videos, threads, friendships).
    pub fn was_mut(&mut self) -> &mut WebApplicationServer {
        self.shards[0].was_ref()
    }

    /// The Pylon cluster (failure injection, counters).
    pub fn pylon(&self) -> &PylonCluster {
        self.shards[0]
            .pylon
            .as_ref()
            .expect("Pylon lives on shard 0")
    }

    /// Mutable Pylon access (tests probe quorum topology directly).
    pub fn pylon_mut(&mut self) -> &mut PylonCluster {
        self.shards[0].pylon_ref()
    }

    /// The configuration this world was built under.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Collected metrics, aggregated across shards.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.merged_metrics
    }

    /// Mutable metrics access (harnesses add their own annotations).
    /// Annotations land on the merged aggregate, which is rebuilt — and
    /// the annotation lost — by the next `run_until`.
    pub fn metrics_mut(&mut self) -> &mut SystemMetrics {
        &mut self.merged_metrics
    }

    /// The hop-ledger of every update traced through this run.
    pub fn trace_ledger(&self) -> RwLockReadGuard<'_, TraceLedger> {
        self.world.ledger.read().unwrap()
    }

    /// Per-subsystem counts of events handled so far, across shards.
    pub fn event_stats(&self) -> &EventStats {
        &self.merged_stats
    }

    /// Total BRASS delivery decisions across hosts.
    pub fn total_decisions(&self) -> u64 {
        let l = self.shards.len();
        (0..self.config.brass_hosts as usize)
            .map(|h| self.shards[h % l].hosts[h].total_app_counters().decisions)
            .sum()
    }

    /// Total proxy-induced stream reconnects across proxies.
    pub fn total_proxy_reconnects(&self) -> u64 {
        let l = self.shards.len();
        (0..self.config.proxies as usize)
            .map(|p| self.shards[p % l].proxies[p].counters().induced_reconnects)
            .sum()
    }

    /// A device's current state (testing). Returns an owned snapshot: the
    /// resident form may be the compact hibernation blob, which is
    /// rehydrated here without disturbing the simulation.
    pub fn device(&self, device: u64) -> Option<Device> {
        self.shards[self.device_shard(device)]
            .devices
            .get(&device)
            .map(|d| match &d.slot {
                DeviceSlot::Live(dev) => dev.clone(),
                DeviceSlot::Parked(blob) => Device::rehydrate(device, blob),
            })
    }

    /// Fleet hibernation census: `(parked, total)` devices. Parked devices
    /// hold their whole protocol state in one compact frozen blob.
    pub fn hibernation_census(&self) -> (usize, usize) {
        let mut parked = 0;
        let mut total = 0;
        for shard in &self.shards {
            total += shard.devices.len();
            parked += shard
                .devices
                .values()
                .filter(|d| matches!(d.slot, DeviceSlot::Parked(_)))
                .count();
        }
        (parked, total)
    }

    /// Whether a BRASS host is currently up (testing / fault plans).
    pub fn host_is_up(&self, host: usize) -> bool {
        let l = self.shards.len();
        self.shards[host % l]
            .host_up
            .get(host)
            .copied()
            .unwrap_or(false)
    }

    /// Whether a reverse proxy is currently up (testing / fault plans).
    pub fn proxy_is_up(&self, proxy: usize) -> bool {
        let l = self.shards.len();
        self.shards[proxy % l]
            .proxy_up
            .get(proxy)
            .copied()
            .unwrap_or(false)
    }

    /// The `(device, sid)` keys a BRASS host currently serves, sorted.
    pub fn host_stream_keys(&self, host: usize) -> Vec<(u64, StreamId)> {
        let l = self.shards.len();
        self.shards[host % l]
            .hosts
            .get(host)
            .map(|h| h.stream_keys())
            .unwrap_or_default()
    }

    /// Current simulated time (the high-water mark of `run_until`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The per-run RNG (workload generators share the seed stream).
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Scenario bookkeeping: per-device counters predicting the next
    /// client-generated stream id (devices allocate sids sequentially).
    pub fn scenario_sid_counters(&mut self) -> &mut FxHashMap<u64, u64> {
        &mut self.scenario_sids
    }

    fn device_shard(&self, device: u64) -> usize {
        (device as usize % self.config.pops as usize) % self.shards.len()
    }

    /// Routes an externally-scheduled event into the owning shard's queue.
    fn schedule(&mut self, at: SimTime, ev: Ev) {
        let dest = shard_route(&ev, self.config.pops as usize, self.shards.len());
        self.shards[dest].queue.schedule(at, ev);
    }

    /// Backoff before quorum-subscribe retry `attempt + 1`. The exponent
    /// is clamped *before* shifting: attempts grow without bound under a
    /// long partition, and `1u64 << 64` would overflow.
    fn quorum_retry_backoff(attempt: u32) -> SimDuration {
        const CAP_SECS: u64 = 30;
        SimDuration::from_secs((1u64 << attempt.min(5)).min(CAP_SECS))
    }

    // ------------------------------------------------------------------
    // Fixture and workload helpers.
    // ------------------------------------------------------------------

    /// Creates a user in the WAS plus their device at the edge.
    /// Returns the shared id (user uid == device id).
    pub fn create_user_device(&mut self, name: &str, lang: &str) -> u64 {
        let uid = self.was_mut().create_user(name, lang);
        let weights: Vec<f64> = self.config.link_mix.iter().map(|(_, p)| *p).collect();
        let cat = simkit::dist::Categorical::new(&weights);
        let link = self.config.link_mix[cat.sample_index(&mut self.rng)].0;
        let lang = self.intern_lang(lang);
        let shard = self.device_shard(uid);
        self.shards[shard].devices.insert(
            uid,
            DeviceState {
                slot: DeviceSlot::Live(Device::new(uid)),
                link,
                lang,
                connected: true,
                drop_streak: 0,
                last_drop_at: SimTime::ZERO,
                next_arrival: SimTime::ZERO,
                flow: FlowWindow::new(self.config.egress_window_bytes),
                degraded_sids: Vec::new(),
                inflight_frames: 0,
            },
        );
        uid
    }

    /// Interns a header language into the u16 id table (the fleet speaks
    /// a handful of languages; a per-device heap `String` would repeat
    /// each of them a million times over).
    fn intern_lang(&mut self, lang: &str) -> u16 {
        if let Some(i) = self.langs.iter().position(|l| l == lang) {
            return i as u16;
        }
        assert!(self.langs.len() < u16::MAX as usize, "lang table overflow");
        self.langs.push(lang.to_owned());
        (self.langs.len() - 1) as u16
    }

    /// Schedules a subscription with an explicit header.
    pub fn subscribe_with_header(&mut self, at: SimTime, device: u64, header: Json) {
        self.schedule(at, Ev::DeviceSubscribe { device, header });
    }

    fn gql_header(&self, device: u64, gql: String) -> Json {
        let lang = self.shards[self.device_shard(device)]
            .devices
            .get(&device)
            .and_then(|d| self.langs.get(d.lang as usize))
            .map_or("en", String::as_str);
        Json::obj([
            ("viewer", Json::from(device)),
            ("lang", Json::from(lang)),
            ("gql", Json::from(gql)),
        ])
    }

    /// Schedules a LiveVideoComments subscription.
    pub fn subscribe_lvc(&mut self, at: SimTime, device: u64, video: u64) {
        let header = self.gql_header(
            device,
            format!("subscription {{ liveVideoComments(videoId: {video}) }}"),
        );
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a TypingIndicator subscription.
    pub fn subscribe_typing(&mut self, at: SimTime, device: u64, thread: u64, counterparty: u64) {
        let header = self.gql_header(
            device,
            format!(
                "subscription {{ typingIndicator(threadId: {thread}, counterpartyId: {counterparty}) }}"
            ),
        );
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules an ActiveStatus subscription.
    pub fn subscribe_active_status(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, "subscription { activeStatus }".to_owned());
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a Stories tray subscription.
    pub fn subscribe_stories(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, "subscription { storiesTray }".to_owned());
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a NewsFeedPostLikes subscription.
    pub fn subscribe_likes(&mut self, at: SimTime, device: u64, post: u64) {
        let header = self.gql_header(
            device,
            format!("subscription {{ postLikes(postId: {post}) }}"),
        );
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a like on a post.
    pub fn like_post(&mut self, at: SimTime, device: u64, post: u64) {
        let gql = format!("mutation {{ likePost(postId: {post}, uid: {device}) {{ ok }} }}");
        self.schedule_mutation(at, device, gql, "likes");
    }

    /// Schedules a WebsiteNotifications subscription.
    pub fn subscribe_notifications(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, "subscription { notifications }".to_owned());
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a Messenger mailbox subscription.
    pub fn subscribe_mailbox(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, format!("subscription {{ mailbox(uid: {device}) }}"));
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a stream cancellation.
    pub fn cancel_stream(&mut self, at: SimTime, device: u64, sid: StreamId) {
        self.schedule(at, Ev::DeviceCancel { device, sid });
    }

    fn schedule_mutation(&mut self, at: SimTime, device: u64, gql: String, app: &'static str) {
        // Device → POP → edge → WAS; sampled as one compound delay.
        let link = self.shards[self.device_shard(device)]
            .devices
            .get(&device)
            .map(|d| d.link)
            .unwrap_or(LinkClass::Mobile);
        let delay =
            self.latency.last_mile(link, &mut self.rng) + self.latency.edge_to_was(&mut self.rng);
        self.schedule(at + delay, Ev::WasMutationExec { gql, app });
    }

    /// Schedules a live-video comment post.
    pub fn post_comment(&mut self, at: SimTime, device: u64, video: u64, text: &str) {
        let gql = format!(
            r#"mutation {{ postComment(videoId: {video}, authorId: {device}, text: "{text}") {{ id }} }}"#
        );
        self.schedule_mutation(at, device, gql, "lvc");
    }

    /// Schedules a typing-state change.
    pub fn set_typing(&mut self, at: SimTime, device: u64, thread: u64, typing: bool) {
        let gql = format!(
            "mutation {{ setTyping(threadId: {thread}, uid: {device}, typing: {typing}) {{ ok }} }}"
        );
        self.schedule_mutation(at, device, gql, "typing");
    }

    /// Schedules an online-status refresh.
    pub fn set_online(&mut self, at: SimTime, device: u64) {
        let gql = format!("mutation {{ setOnline(uid: {device}) {{ ok }} }}");
        self.schedule_mutation(at, device, gql, "active_status");
    }

    /// Schedules a story creation.
    pub fn create_story(&mut self, at: SimTime, device: u64, media: &str) {
        let gql =
            format!(r#"mutation {{ createStory(authorId: {device}, media: "{media}") {{ id }} }}"#);
        self.schedule_mutation(at, device, gql, "stories");
    }

    /// Schedules a Messenger message send.
    pub fn send_message(&mut self, at: SimTime, device: u64, thread: u64, text: &str) {
        let gql = format!(
            r#"mutation {{ sendMessage(threadId: {thread}, fromId: {device}, text: "{text}") {{ id }} }}"#
        );
        self.schedule_mutation(at, device, gql, "messenger");
    }

    // ------------------------------------------------------------------
    // Failure injection.
    // ------------------------------------------------------------------

    /// Schedules a last-mile connection drop for a device.
    pub fn schedule_device_drop(&mut self, at: SimTime, device: u64) {
        self.schedule(at, Ev::DeviceDrop { device });
    }

    /// Schedules a BRASS-initiated redirect of one stream to another host
    /// (§3.5 "Redirects"; used for load rebalancing and consolidation).
    pub fn schedule_brass_redirect(
        &mut self,
        at: SimTime,
        host: usize,
        device: u64,
        sid: StreamId,
        to_host: usize,
    ) {
        self.schedule(
            at,
            Ev::BrassRedirect {
                host,
                device,
                sid,
                to_host,
            },
        );
    }

    /// Schedules a BRASS host drain/upgrade lasting `duration`.
    pub fn schedule_brass_upgrade(&mut self, at: SimTime, host: usize, duration: SimDuration) {
        self.schedule(at, Ev::BrassUpgrade { host });
        self.schedule(at + duration, Ev::BrassHostBack { host });
    }

    /// Schedules a Pylon subscriber-KV node outage of `duration`.
    pub fn schedule_pylon_outage(&mut self, at: SimTime, node: u64, duration: SimDuration) {
        self.schedule(at, Ev::PylonNode { node, up: false });
        self.schedule(at + duration, Ev::PylonNode { node, up: true });
    }

    /// Schedules an *unplanned* BRASS host crash lasting `duration`.
    ///
    /// Unlike [`Self::schedule_brass_upgrade`], nothing is signalled at
    /// crash time: proxies discover the death through missed heartbeat
    /// pongs and only then repair its streams (axiom 2).
    pub fn schedule_brass_crash(&mut self, at: SimTime, host: usize, duration: SimDuration) {
        self.schedule(at, Ev::BrassCrash { host });
        self.schedule(at + duration, Ev::BrassRecover { host });
    }

    /// Schedules a reverse-proxy outage (e.g. a regional PoP-to-DC link
    /// cut) lasting `duration`.
    pub fn schedule_proxy_outage(&mut self, at: SimTime, proxy: usize, duration: SimDuration) {
        self.schedule(at, Ev::ProxyOutage { proxy });
        self.schedule(at + duration, Ev::ProxyBack { proxy });
    }

    /// Schedules a *silent* device drop: the link dies without a FIN, so
    /// the POP learns only via heartbeats while the device reconnects on
    /// its own backoff schedule.
    pub fn schedule_device_vanish(&mut self, at: SimTime, device: u64) {
        self.schedule(at, Ev::DeviceVanish { device });
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Runs the simulation until `until` (inclusive of events at `until`),
    /// serially or on the configured worker pool — the results are
    /// identical either way.
    pub fn run_until(&mut self, until: SimTime) {
        let lookahead = self.latency.min_cross_shard_hop();
        // Windows are closed intervals; the last in-window microsecond is
        // `next + lookahead - 1`.
        let w_minus = SimDuration::from_micros(lookahead.as_micros().saturating_sub(1));
        if self.workers > 1 && self.shards.len() > 1 {
            self.run_windows_threaded(until, w_minus);
        } else {
            self.run_windows_serial(until, w_minus);
        }
        if until > self.now {
            self.now = until;
        }
        self.rebuild_merged();
    }

    /// Earliest pending event over every shard queue and mailbox.
    fn earliest_pending(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for (s, shard) in self.shards.iter().enumerate() {
            // Mailboxes are (time, src, seq)-sorted, so `first` is min.
            let cands = [
                shard.queue.peek_time(),
                self.pending_incoming[s].first().map(|e| e.at),
            ];
            for cand in cands.into_iter().flatten() {
                next = Some(match next {
                    Some(n) if n <= cand => n,
                    _ => cand,
                });
            }
        }
        next
    }

    /// The last timestamp inside the window opening at `next`: capped by
    /// the lookahead, the next metrics tick, and the run horizon.
    fn window_end(next: SimTime, until: SimTime, tick: SimTime, w_minus: SimDuration) -> SimTime {
        let mut end = next + w_minus;
        // The tick must observe every event before it, so the window stops
        // one microsecond short. (`tick > next` holds here, or the tick
        // would have fired instead of a window.)
        let cap = SimTime::from_micros(tick.as_micros().saturating_sub(1));
        if cap < end {
            end = cap;
        }
        if until < end {
            end = until;
        }
        end
    }

    fn run_windows_serial(&mut self, until: SimTime, w_minus: SimDuration) {
        let nshards = self.shards.len();
        let prof = std::env::var("BR_PROF").is_ok();
        let mut n_windows = 0u64;
        let mut n_empty = 0u64;
        let mut t_window = std::time::Duration::ZERO;
        let mut t_barrier = std::time::Duration::ZERO;
        let t_all = std::time::Instant::now();
        loop {
            let next = self.earliest_pending();
            let tick = self.next_metrics_tick;
            if tick <= until && next.is_none_or(|n| tick <= n) {
                // The tick outranks same-time events, matching the old
                // single-queue schedule order.
                let summaries: Vec<TickSummary> =
                    self.shards.iter_mut().map(|s| s.shard_tick(tick)).collect();
                let ledger_fp = self.world.ledger.read().unwrap().fingerprint();
                record_tick(
                    &mut self.root_metrics,
                    &mut self.root_stats,
                    &mut self.decisions_at_tick,
                    &mut self.fingerprints,
                    ledger_fp,
                    tick,
                    summaries,
                );
                self.next_metrics_tick = tick + self.config.metrics_interval;
                self.tick_index += 1;
                if self.snapshot_every > 0 && self.tick_index.is_multiple_of(self.snapshot_every) {
                    // The tick is a natural barrier: all windows before it
                    // are fully applied and the window schedule after it
                    // depends only on queue state, so a run resumed here
                    // is bit-identical to one that never stopped.
                    let bodies: Vec<Vec<u8>> = self
                        .shards
                        .iter()
                        .map(|s| {
                            let mut w = SnapWriter::new();
                            s.snap(&mut w);
                            w.into_bytes()
                        })
                        .collect();
                    let sealed = snap::seal(assemble_snapshot_body(
                        &self.config,
                        tick,
                        self.next_metrics_tick,
                        self.tick_index,
                        self.decisions_at_tick,
                        &self.rng,
                        &self.langs,
                        &self.scenario_sids,
                        &self.world,
                        &self.root_metrics,
                        &self.root_stats,
                        &self.fingerprints,
                        &self.pending_incoming,
                        &bodies,
                        &self.driver_blob,
                    ));
                    store_snapshot(
                        &mut self.snapshots,
                        self.snapshot_keep,
                        &self.snapshot_dir,
                        tick,
                        sealed,
                    );
                }
                continue;
            }
            let Some(next) = next else { break };
            if next > until {
                break;
            }
            let end = Self::window_end(next, until, tick, w_minus);
            let t0 = std::time::Instant::now();
            n_windows += 1;
            let mut popped = 0u64;
            let mut results: Vec<WindowRes> = Vec::with_capacity(nshards);
            for i in 0..nshards {
                let incoming = std::mem::take(&mut self.pending_incoming[i]);
                let shard = &mut self.shards[i];
                let s0 = shard.event_stats.total;
                shard.run_window(end, incoming);
                popped += shard.event_stats.total - s0;
                results.push(WindowRes {
                    shard: i,
                    outbox: std::mem::take(&mut shard.outbox),
                    ops: std::mem::take(&mut shard.ops),
                    led: std::mem::take(&mut shard.led_pending),
                    next: shard.queue.peek_time(),
                });
            }
            if popped == 0 {
                n_empty += 1;
            }
            let t1 = std::time::Instant::now();
            t_window += t1 - t0;
            apply_barrier(
                &self.world,
                &mut self.pending_incoming,
                self.config.pops as usize,
                nshards,
                end,
                results,
            );
            t_barrier += t1.elapsed();
        }
        if prof {
            eprintln!(
                "BR_PROF windows={n_windows} empty={n_empty} t_window={:.2}s t_barrier={:.2}s t_total={:.2}s",
                t_window.as_secs_f64(),
                t_barrier.as_secs_f64(),
                t_all.elapsed().as_secs_f64()
            );
        }
    }

    fn run_windows_threaded(&mut self, until: SimTime, w_minus: SimDuration) {
        let nshards = self.shards.len();
        let nworkers = self.workers.min(nshards);
        let mut next_times: Vec<Option<SimTime>> =
            self.shards.iter().map(|s| s.queue.peek_time()).collect();
        // Split the borrow: the worker scope holds `shards`, the
        // coordinator below touches everything else.
        let SystemSim {
            shards,
            pending_incoming,
            world,
            config,
            root_metrics,
            root_stats,
            decisions_at_tick,
            next_metrics_tick,
            rng,
            langs,
            scenario_sids,
            fingerprints,
            tick_index,
            snapshot_every,
            snapshot_keep,
            snapshot_dir,
            snapshots,
            driver_blob,
            ..
        } = self;
        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<WorkerRes>();
            let mut cmd_txs: Vec<mpsc::Sender<Cmd>> = Vec::with_capacity(nworkers);
            let mut assignments: Vec<Vec<(usize, &mut Shard)>> =
                (0..nworkers).map(|_| Vec::new()).collect();
            for (i, shard) in shards.iter_mut().enumerate() {
                assignments[i % nworkers].push((i, shard));
            }
            for owned in assignments {
                let (tx, rx) = mpsc::channel::<Cmd>();
                cmd_txs.push(tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || worker_loop(owned, rx, res_tx));
            }
            drop(res_tx);
            loop {
                let mut next: Option<SimTime> = None;
                for s in 0..nshards {
                    let cands = [next_times[s], pending_incoming[s].first().map(|e| e.at)];
                    for cand in cands.into_iter().flatten() {
                        next = Some(match next {
                            Some(n) if n <= cand => n,
                            _ => cand,
                        });
                    }
                }
                let tick = *next_metrics_tick;
                if tick <= until && next.is_none_or(|n| tick <= n) {
                    for s in 0..nshards {
                        cmd_txs[s % nworkers]
                            .send(Cmd::Tick { shard: s, at: tick })
                            .expect("worker alive");
                    }
                    let mut summaries: Vec<Option<TickSummary>> =
                        (0..nshards).map(|_| None).collect();
                    for _ in 0..nshards {
                        match res_rx.recv().expect("worker alive") {
                            WorkerRes::Tick { shard, summary } => summaries[shard] = Some(summary),
                            _ => unreachable!("tick round"),
                        }
                    }
                    let summaries: Vec<TickSummary> = summaries
                        .into_iter()
                        .map(|s| s.expect("every shard ticked"))
                        .collect();
                    let ledger_fp = world.ledger.read().unwrap().fingerprint();
                    record_tick(
                        root_metrics,
                        root_stats,
                        decisions_at_tick,
                        fingerprints,
                        ledger_fp,
                        tick,
                        summaries,
                    );
                    *next_metrics_tick = tick + config.metrics_interval;
                    *tick_index += 1;
                    if *snapshot_every > 0 && *tick_index % *snapshot_every == 0 {
                        // Workers own the shards inside this scope, so the
                        // coordinator asks each for its serialized body and
                        // assembles the snapshot from the pieces — in shard
                        // order, like everything else at a barrier.
                        for s in 0..nshards {
                            cmd_txs[s % nworkers]
                                .send(Cmd::Snap { shard: s })
                                .expect("worker alive");
                        }
                        let mut bodies: Vec<Option<Vec<u8>>> = (0..nshards).map(|_| None).collect();
                        for _ in 0..nshards {
                            match res_rx.recv().expect("worker alive") {
                                WorkerRes::Snap { shard, bytes } => bodies[shard] = Some(bytes),
                                _ => unreachable!("snap round"),
                            }
                        }
                        let bodies: Vec<Vec<u8>> = bodies
                            .into_iter()
                            .map(|b| b.expect("every shard serialized"))
                            .collect();
                        let sealed = snap::seal(assemble_snapshot_body(
                            config,
                            tick,
                            *next_metrics_tick,
                            *tick_index,
                            *decisions_at_tick,
                            rng,
                            langs,
                            scenario_sids,
                            world,
                            root_metrics,
                            root_stats,
                            fingerprints,
                            pending_incoming,
                            &bodies,
                            driver_blob,
                        ));
                        store_snapshot(snapshots, *snapshot_keep, snapshot_dir, tick, sealed);
                    }
                    continue;
                }
                let Some(next) = next else { break };
                if next > until {
                    break;
                }
                let end = Self::window_end(next, until, tick, w_minus);
                for s in 0..nshards {
                    let incoming = std::mem::take(&mut pending_incoming[s]);
                    cmd_txs[s % nworkers]
                        .send(Cmd::Run {
                            shard: s,
                            end,
                            incoming,
                        })
                        .expect("worker alive");
                }
                let mut results: Vec<Option<WindowRes>> = (0..nshards).map(|_| None).collect();
                for _ in 0..nshards {
                    match res_rx.recv().expect("worker alive") {
                        WorkerRes::Window(r) => {
                            let i = r.shard;
                            results[i] = Some(r);
                        }
                        _ => unreachable!("window round"),
                    }
                }
                let results: Vec<WindowRes> = results
                    .into_iter()
                    .map(|r| r.expect("every shard ran"))
                    .collect();
                for r in &results {
                    next_times[r.shard] = r.next;
                }
                apply_barrier(
                    world,
                    pending_incoming,
                    config.pops as usize,
                    nshards,
                    end,
                    results,
                );
            }
            // Dropping the command senders here ends every worker loop.
        });
    }

    // ------------------------------------------------------------------
    // Snapshot, resume, and divergence fingerprints.
    // ------------------------------------------------------------------

    /// Configures automatic snapshotting: capture the full sim state every
    /// `every_ticks` metrics ticks (0 disables), keeping the sealed bytes
    /// in memory (`keep_in_memory`) and/or writing them into `dir` as
    /// `snap-<µs>.brsnap`. Captures happen *inside* the run loop at tick
    /// barriers, so they never perturb the window schedule: a run with
    /// snapshotting on is bit-identical to one with it off.
    pub fn set_snapshot_policy(
        &mut self,
        every_ticks: u64,
        keep_in_memory: bool,
        dir: Option<PathBuf>,
    ) {
        self.snapshot_every = every_ticks;
        self.snapshot_keep = keep_in_memory;
        self.snapshot_dir = dir;
    }

    /// Policy-captured in-memory snapshots, oldest first.
    pub fn snapshots(&self) -> &[(SimTime, Vec<u8>)] {
        &self.snapshots
    }

    /// Serializes the complete current state into a sealed snapshot.
    ///
    /// Valid between `run_until` calls (every window is fully applied
    /// there). A resumed copy is bit-identical to *this* process's future
    /// — which matches an unchunked run's future only when the snapshot
    /// instant coincides with a boundary the original run also had; the
    /// in-loop policy ([`Self::set_snapshot_policy`]) captures at metrics
    /// ticks, which satisfies that for any chunking.
    pub fn snapshot(&self) -> Vec<u8> {
        let bodies: Vec<Vec<u8>> = self
            .shards
            .iter()
            .map(|s| {
                let mut w = SnapWriter::new();
                s.snap(&mut w);
                w.into_bytes()
            })
            .collect();
        snap::seal(assemble_snapshot_body(
            &self.config,
            self.now,
            self.next_metrics_tick,
            self.tick_index,
            self.decisions_at_tick,
            &self.rng,
            &self.langs,
            &self.scenario_sids,
            &self.world,
            &self.root_metrics,
            &self.root_stats,
            &self.fingerprints,
            &self.pending_incoming,
            &bodies,
            &self.driver_blob,
        ))
    }

    /// Rebuilds a simulation from a sealed snapshot, fail-closed: the
    /// container checksum, the config (rebuilt by the caller and compared
    /// field-for-field via its Debug rendering), every length, tag, key
    /// order, and ownership invariant are validated before any state is
    /// handed over — an error never yields a partial world. The resumed
    /// sim continues bit-identically to the run that took the snapshot.
    pub fn resume(config: SystemConfig, bytes: &[u8]) -> SnapResult<SystemSim> {
        let body = snap::unseal(bytes)?;
        let mut r = SnapReader::new(body);
        let stored = r.get_str()?;
        let live = format!("{config:?}");
        if stored != live {
            return Err(SnapError::Invalid(format!(
                "config mismatch: snapshot took {stored}, resume built {live}"
            )));
        }
        let at = SimTime::restore(&mut r)?;
        let next_metrics_tick = SimTime::restore(&mut r)?;
        let tick_index = r.get_u64()?;
        let decisions_at_tick = r.get_u64()?;
        let rng = DetRng::from_state([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?]);
        let n = r.get_len()?;
        let mut langs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = r.get_str()?;
            if langs.contains(&l) {
                return Err(SnapError::Invalid(format!("duplicate interned lang {l:?}")));
            }
            langs.push(l);
        }
        let scenario_sids: FxHashMap<u64, u64> = snap::restore_map(&mut r)?;

        let n = r.get_len()?;
        let mut object_trace = FxHashMap::default();
        let mut last: Option<u64> = None;
        for _ in 0..n {
            let object = r.get_u64()?;
            if last.is_some_and(|l| object <= l) {
                return Err(SnapError::Invalid(
                    "object-trace keys not strictly ascending".into(),
                ));
            }
            last = Some(object);
            object_trace.insert(ObjectId(object), TraceId::restore(&mut r)?);
        }
        let n = r.get_len()?;
        let mut topic_object_trace = FxHashMap::default();
        let mut last_leg: Option<(String, u64)> = None;
        for _ in 0..n {
            let topic = Topic::restore(&mut r)?;
            let object = r.get_u64()?;
            let key = (topic.as_str().to_owned(), object);
            if last_leg.as_ref().is_some_and(|l| key <= *l) {
                return Err(SnapError::Invalid(
                    "topic-object-trace keys not strictly ascending".into(),
                ));
            }
            last_leg = Some(key);
            topic_object_trace.insert((topic, ObjectId(object)), TraceId::restore(&mut r)?);
        }
        let n = r.get_len()?;
        let mut topic_streams = FxHashMap::default();
        let mut last_name: Option<String> = None;
        for _ in 0..n {
            let topic = Topic::restore(&mut r)?;
            if last_name.as_deref().is_some_and(|l| topic.as_str() <= l) {
                return Err(SnapError::Invalid(
                    "topic-streams keys not strictly ascending".into(),
                ));
            }
            last_name = Some(topic.as_str().to_owned());
            let m = r.get_len()?;
            let mut streams = Vec::with_capacity(m);
            for _ in 0..m {
                let device = r.get_u64()?;
                streams.push((device, StreamId::restore(&mut r)?));
            }
            topic_streams.insert(topic, streams);
        }
        let n = r.get_len()?;
        let mut stream_topic = FxHashMap::default();
        let mut last: Option<(u64, StreamId)> = None;
        for _ in 0..n {
            let device = r.get_u64()?;
            let sid = StreamId::restore(&mut r)?;
            if last.is_some_and(|l| (device, sid) <= l) {
                return Err(SnapError::Invalid(
                    "stream-topic keys not strictly ascending".into(),
                ));
            }
            last = Some((device, sid));
            stream_topic.insert((device, sid), Topic::restore(&mut r)?);
        }
        let n = r.get_len()?;
        let mut device_proxy = FxHashMap::default();
        let mut last: Option<u64> = None;
        for _ in 0..n {
            let device = r.get_u64()?;
            if last.is_some_and(|l| device <= l) {
                return Err(SnapError::Invalid(
                    "device-proxy keys not strictly ascending".into(),
                ));
            }
            last = Some(device);
            let proxy = r.get_usize()?;
            if proxy >= config.proxies as usize {
                return Err(SnapError::Invalid(format!(
                    "device-proxy route to proxy {proxy}, config has {}",
                    config.proxies
                )));
            }
            device_proxy.insert(device, proxy);
        }
        let n = r.get_len()?;
        if n != config.brass_hosts as usize {
            return Err(SnapError::Invalid(format!(
                "shared host_up length {n}, config says {}",
                config.brass_hosts
            )));
        }
        let mut host_up = Vec::with_capacity(n);
        for _ in 0..n {
            host_up.push(r.get_bool()?);
        }
        let ledger = TraceLedger::restore(&mut r)?;
        let root_metrics =
            SystemMetrics::restore(&mut r, config.metrics_horizon, config.metrics_interval)?;
        let root_stats = EventStats::restore(&mut r)?;
        let n = r.get_len()?;
        let mut fingerprints = Vec::with_capacity(n);
        let mut last_tick: Option<SimTime> = None;
        for _ in 0..n {
            let tick = SimTime::restore(&mut r)?;
            if last_tick.is_some_and(|l| tick <= l) {
                return Err(SnapError::Invalid(
                    "fingerprint ticks not strictly ascending".into(),
                ));
            }
            last_tick = Some(tick);
            fingerprints.push((tick, r.get_u64()?));
        }

        let world = Arc::new(World {
            shared: RwLock::new(SharedInner {
                object_trace,
                topic_object_trace,
                topic_streams,
                stream_topic,
                device_proxy,
                host_up,
            }),
            ledger: RwLock::new(ledger),
        });

        let nshards = config.logical_shards;
        let n = r.get_len()?;
        if n != nshards {
            return Err(SnapError::Invalid(format!(
                "{n} shard mailboxes, config says {nshards}"
            )));
        }
        let mut pending_incoming: Vec<Vec<Envelope<Ev>>> = Vec::with_capacity(nshards);
        for slot in 0..nshards {
            let m = r.get_len()?;
            let mut mailbox = Vec::with_capacity(m);
            for _ in 0..m {
                let env_at = SimTime::restore(&mut r)?;
                let src_shard = r.get_usize()?;
                if src_shard >= nshards {
                    return Err(SnapError::Invalid(format!(
                        "envelope from shard {src_shard}, config has {nshards}"
                    )));
                }
                let seq = r.get_u64()?;
                let event = Ev::restore(&mut r)?;
                let dest = shard_route(&event, config.pops as usize, nshards);
                if dest != slot {
                    return Err(SnapError::Invalid(format!(
                        "envelope in shard {slot}'s mailbox routes to shard {dest}"
                    )));
                }
                mailbox.push(Envelope {
                    at: env_at,
                    src_shard,
                    seq,
                    event,
                });
            }
            pending_incoming.push(mailbox);
        }
        let n = r.get_len()?;
        if n != nshards {
            return Err(SnapError::Invalid(format!(
                "{n} shard bodies, config says {nshards}"
            )));
        }
        let mut shards = Vec::with_capacity(nshards);
        for id in 0..nshards {
            let body = r.get_bytes()?;
            let mut sr = SnapReader::new(&body);
            let shard = Shard::restore(id, &config, Arc::clone(&world), &mut sr)?;
            sr.finish()?;
            shards.push(shard);
        }
        let driver_blob = r.get_bytes()?;
        r.finish()?;

        for shard in &shards {
            for d in shard.devices.values() {
                if d.lang as usize >= langs.len() {
                    return Err(SnapError::Invalid(format!(
                        "device lang index {} outside the {}-entry intern table",
                        d.lang,
                        langs.len()
                    )));
                }
            }
        }

        let mut sim = SystemSim {
            latency: LatencyModel::table3(),
            rng,
            workers: 1,
            now: at,
            next_metrics_tick,
            world,
            shards,
            pending_incoming,
            root_metrics,
            root_stats,
            merged_metrics: SystemMetrics::new(config.metrics_horizon, config.metrics_interval),
            merged_stats: EventStats::default(),
            decisions_at_tick,
            scenario_sids,
            langs,
            fingerprints,
            tick_index,
            snapshot_every: 0,
            snapshot_keep: false,
            snapshot_dir: None,
            snapshots: Vec::new(),
            driver_blob,
            config,
        };
        sim.rebuild_merged();
        Ok(sim)
    }

    /// Attaches opaque harness state (workload cursors, scenario extents)
    /// to be carried inside every snapshot this sim takes. Benches update
    /// it before each `run_until` chunk.
    pub fn set_driver_blob(&mut self, blob: Vec<u8>) {
        self.driver_blob = blob;
    }

    /// The harness state carried by the snapshot this sim resumed from
    /// (empty for a fresh sim).
    pub fn driver_blob(&self) -> &[u8] {
        &self.driver_blob
    }

    /// The per-metrics-tick rolling run fingerprints recorded so far.
    /// Identical for identical `(config, seed, workload)` regardless of
    /// worker count, chunking, hibernation, or snapshot policy; the first
    /// differing entry between two runs brackets their first divergence.
    pub fn tick_fingerprints(&self) -> &[(SimTime, u64)] {
        &self.fingerprints
    }

    /// A state-only fingerprint of the current instant: the ledger's
    /// rolling hash plus every shard's state digest. Cheap (no
    /// serialization) and stable across equal states however they were
    /// reached — run straight or resumed from a snapshot.
    pub fn fingerprint_now(&self) -> u64 {
        let mut fp = Fp64::new();
        fp.mix_u64(self.world.ledger.read().unwrap().fingerprint());
        for shard in &self.shards {
            fp.mix_u64(shard.fingerprint());
        }
        fp.value()
    }

    /// Switches the per-event diagnostic log on or off for every shard.
    /// While on, each shard records `(time, event summary)` for every
    /// event it pops, in execution order — the bisect harness replays a
    /// diverging tick under this log on both runs and diffs the streams.
    pub fn set_event_log(&mut self, enabled: bool) {
        for shard in &mut self.shards {
            shard.evlog = if enabled { Some(Vec::new()) } else { None };
        }
    }

    /// Drains the per-shard event logs (index = shard id). Empty vecs for
    /// shards that saw nothing; empty overall if the log was never on.
    pub fn take_event_logs(&mut self) -> Vec<Vec<(SimTime, String)>> {
        self.shards
            .iter_mut()
            .map(|s| match &mut s.evlog {
                Some(log) => std::mem::take(log),
                None => Vec::new(),
            })
            .collect()
    }

    /// Folds root series and per-shard metrics/stats into the public
    /// aggregates. Shards merge in id order, so the fold is deterministic.
    fn rebuild_merged(&mut self) {
        let mut metrics = self.root_metrics.clone();
        let mut stats = self.root_stats.clone();
        for shard in &self.shards {
            metrics.merge(&shard.metrics);
            stats.accumulate(&shard.event_stats);
        }
        self.merged_metrics = metrics;
        self.merged_stats = stats;
    }

    /// Audits post-heal convergence: every connected device's open streams
    /// are served by a live BRASS host, and the trace ledger accounts for
    /// every admitted update as delivered, dropped-with-reason, or
    /// backfilled.
    pub fn convergence_report(&self) -> crate::fault::ConvergenceReport {
        let l = self.shards.len();
        let mut live: FxHashSet<(u64, StreamId)> = FxHashSet::default();
        let mut dead_host_streams = 0u64;
        for h in 0..self.config.brass_hosts as usize {
            let shard = &self.shards[h % l];
            if shard.host_up[h] {
                live.extend(shard.hosts[h].stream_keys());
            } else {
                dead_host_streams += shard.hosts[h].stream_count() as u64;
            }
        }
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.devices.keys().copied())
            .collect();
        ids.sort_unstable();
        let mut open_streams = 0u64;
        let mut connected_devices = 0u64;
        let mut stranded: Vec<(u64, StreamId)> = Vec::new();
        let mut flow_degraded_devices = 0u64;
        for id in ids {
            let state = &self.shards[self.device_shard(id)].devices[&id];
            if !state.connected {
                continue;
            }
            connected_devices += 1;
            if state.flow.is_degraded() || !state.degraded_sids.is_empty() {
                flow_degraded_devices += 1;
            }
            for sid in state.open_sids() {
                open_streams += 1;
                if !live.contains(&(id, sid)) {
                    stranded.push((id, sid));
                }
            }
        }
        let ledger = self.world.ledger.read().unwrap();
        crate::fault::ConvergenceReport {
            connected_devices,
            open_streams,
            stranded,
            dead_host_streams,
            delivered: ledger.delivered_count(),
            dropped: ledger.total_drops(),
            backfilled: ledger.backfilled_count(),
            unaccounted: ledger.unaccounted(),
            flow_degraded_devices,
            violations: Vec::new(),
        }
        .finish()
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> SystemSim {
        SystemSim::new(SystemConfig::small(), 7)
    }

    #[test]
    fn quorum_retry_backoff_is_capped_at_any_attempt() {
        // Early attempts double; later attempts clamp at the cap instead
        // of shifting past 63 bits (attempt 64+ would have overflowed).
        let secs: Vec<u64> = [0u32, 1, 2, 3, 4, 5, 6, 8, 63, 64, 1_000, u32::MAX]
            .iter()
            .map(|&a| SystemSim::quorum_retry_backoff(a).as_secs())
            .collect();
        assert_eq!(secs, vec![1, 2, 4, 8, 16, 30, 30, 30, 30, 30, 30, 30]);
    }

    #[test]
    fn comment_flows_end_to_end() {
        let mut s = sim();
        let video = s.was_mut().create_video("eclipse");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.post_comment(
            SimTime::from_secs(2),
            poster,
            video,
            "an astonishing ring of fire over the ocean",
        );
        s.run_until(SimTime::from_secs(60));
        assert_eq!(
            s.metrics().deliveries.get(),
            1,
            "comment reached the viewer"
        );
        assert_eq!(s.metrics().publications.get(), 1);
        let lat = &s.metrics().per_app["lvc"];
        assert_eq!(lat.total.count(), 1);
        // Total latency includes the ~2s WAS ranking plus fan-out and push.
        assert!(lat.total.mean() > 1_500.0, "total {}", lat.total.mean());
        assert!(lat.total.mean() < 15_000.0, "total {}", lat.total.mean());
    }

    #[test]
    fn poster_does_not_receive_without_subscription() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        s.post_comment(
            SimTime::from_secs(1),
            poster,
            video,
            "talking to the void here",
        );
        s.run_until(SimTime::from_secs(30));
        assert_eq!(s.metrics().deliveries.get(), 0);
        assert_eq!(
            s.metrics().publications.get(),
            1,
            "published but nobody listens"
        );
    }

    #[test]
    fn typing_indicator_round_trip() {
        let mut s = sim();
        let a = s.create_user_device("a", "en");
        let b = s.create_user_device("b", "en");
        let thread = s.was_mut().create_thread(&[a, b]);
        // b watches a's typing state.
        s.subscribe_typing(SimTime::ZERO, b, thread, a);
        s.set_typing(SimTime::from_secs(2), a, thread, true);
        s.run_until(SimTime::from_secs(20));
        assert_eq!(s.metrics().deliveries.get(), 1);
        let lat = &s.metrics().per_app["typing"];
        assert!(lat.total.count() == 1, "typing total latency recorded");
        // Typing avoids ranking: total latency well under the LVC path.
        assert!(lat.total.mean() < 3_000.0, "total {}", lat.total.mean());
    }

    #[test]
    fn messenger_delivers_reliably_in_order() {
        let mut s = sim();
        let a = s.create_user_device("a", "en");
        let b = s.create_user_device("b", "en");
        let thread = s.was_mut().create_thread(&[a, b]);
        s.subscribe_mailbox(SimTime::ZERO, b);
        for i in 0..5 {
            s.send_message(
                SimTime::from_secs(2 + i),
                a,
                thread,
                &format!("message number {i}"),
            );
        }
        s.run_until(SimTime::from_secs(60));
        // b receives all 5 (a has no open mailbox stream).
        assert_eq!(s.metrics().deliveries.get(), 5);
    }

    #[test]
    fn rate_limit_caps_lvc_deliveries() {
        let mut s = sim();
        let video = s.was_mut().create_video("hot");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        // 40 comments in 4 seconds.
        for i in 0..40 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 100),
                poster,
                video,
                &format!("burst comment number {i} with some substance"),
            );
        }
        s.run_until(SimTime::from_secs(40));
        // At 1 message / 2 s with a 10 s freshness window, only a handful
        // survive.
        let delivered = s.metrics().deliveries.get();
        assert!(delivered >= 2, "some comments delivered: {delivered}");
        assert!(
            delivered <= 12,
            "rate limit must cap deliveries: {delivered}"
        );
        assert!(s.total_decisions() > delivered, "most updates filtered");
    }

    #[test]
    fn device_drop_and_resubscribe_resumes_delivery() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.post_comment(
            SimTime::from_secs(2),
            poster,
            video,
            "before the drop happens here",
        );
        s.run_until(SimTime::from_secs(15));
        let before = s.metrics().deliveries.get();
        assert_eq!(before, 1);
        // Drop the viewer; it reconnects and resubscribes automatically.
        s.schedule_device_drop(SimTime::from_secs(16), viewer);
        s.post_comment(
            SimTime::from_secs(25),
            poster,
            video,
            "after reconnect this arrives",
        );
        s.run_until(SimTime::from_secs(60));
        assert_eq!(s.metrics().connection_drops.get(), 1);
        assert_eq!(
            s.metrics().deliveries.get(),
            2,
            "delivery resumed after reconnect"
        );
    }

    #[test]
    fn brass_upgrade_repairs_streams_via_proxy() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.run_until(SimTime::from_secs(10));
        // Upgrade every host in turn at t=12; the stream's host is repaired.
        for h in 0..4 {
            s.schedule_brass_upgrade(
                SimTime::from_secs(12 + h),
                h as usize,
                SimDuration::from_secs(30),
            );
        }
        s.post_comment(
            SimTime::from_secs(50),
            poster,
            video,
            "life after the upgrade wave",
        );
        s.run_until(SimTime::from_secs(90));
        assert!(s.total_proxy_reconnects() >= 1, "proxy repaired the stream");
        assert_eq!(
            s.metrics().deliveries.get(),
            1,
            "delivery works after repair"
        );
    }

    #[test]
    fn pylon_outage_fails_subscribes_but_not_publishes() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let viewer = s.create_user_device("viewer", "en");
        // Take down ALL subscriber-KV nodes: quorum for every topic is gone.
        for n in 0..s.pylon().config().kv_nodes as u64 {
            s.schedule_pylon_outage(SimTime::ZERO, n, SimDuration::from_secs(30));
        }
        s.subscribe_lvc(SimTime::from_secs(5), viewer, video);
        s.run_until(SimTime::from_secs(20));
        assert!(
            s.metrics().quorum_failures.get() >= 1,
            "CP subscribe failed"
        );
        // After the outage the retry succeeds and delivery flows.
        let poster = s.create_user_device("poster", "en");
        s.post_comment(
            SimTime::from_secs(60),
            poster,
            video,
            "postquorum comment arrives fine",
        );
        s.run_until(SimTime::from_secs(120));
        assert_eq!(s.metrics().deliveries.get(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = SystemSim::new(SystemConfig::small(), 99);
            let video = s.was_mut().create_video("v");
            let poster = s.create_user_device("poster", "en");
            let viewer = s.create_user_device("viewer", "en");
            s.subscribe_lvc(SimTime::ZERO, viewer, video);
            for i in 0..10 {
                s.post_comment(
                    SimTime::from_secs(2 + i),
                    poster,
                    video,
                    &format!("comment {i} with consistent text"),
                );
            }
            s.run_until(SimTime::from_secs(60));
            (
                s.metrics().deliveries.get(),
                s.metrics().publications.get(),
                s.total_decisions(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stream_lifetime_and_publication_accounting() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.post_comment(
            SimTime::from_secs(1),
            poster,
            video,
            "a single interesting comment",
        );
        s.run_until(SimTime::from_secs(20));
        s.cancel_stream(SimTime::from_secs(21), viewer, StreamId(1));
        s.run_until(SimTime::from_secs(30));
        assert_eq!(s.metrics().stream_lifetimes.len(), 1);
        assert!(s.metrics().stream_lifetimes[0] >= SimDuration::from_secs(20));
        let buckets = s.metrics().publication_buckets();
        assert_eq!(buckets[1], 100.0, "the one stream saw 1-9 publications");
    }

    #[test]
    fn lvc_traces_account_for_every_update() {
        let mut s = sim();
        let video = s.was_mut().create_video("traced");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        // A burst dense enough to exercise the drop paths: buffer
        // overflow and rate-limit expiry alongside ordinary delivery.
        for i in 0..30 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 200),
                poster,
                video,
                &format!("burst comment number {i} with plenty of text"),
            );
        }
        // Posts end by t=8s; with a 10s freshness window and a 2s push
        // timer, every buffered comment is pushed or expired long before
        // t=60s, so no trace can still be in flight at the end.
        s.run_until(SimTime::from_secs(60));

        let ledger = s.trace_ledger();
        assert_eq!(ledger.trace_count() as u64, s.metrics().publications.get());
        assert!(ledger.unaccounted().is_empty(), "every update resolved");

        let mut delivered = 0u64;
        for trace in ledger.trace_ids() {
            let chain = ledger.chain(trace);
            assert_eq!(chain[0].hop, Hop::TaoCommit, "chains start at commit");
            for pair in chain.windows(2) {
                assert!(pair[0].at <= pair[1].at, "hop timestamps are monotone");
            }
            if ledger.is_delivered(trace) {
                delivered += 1;
                let last = chain.last().unwrap();
                assert_eq!(last.hop, Hop::DeviceRender);
                assert_eq!(last.outcome, HopOutcome::Ok);
                // Per-hop latencies telescope to the end-to-end latency.
                let hop_sum = chain
                    .windows(2)
                    .map(|p| p[1].at.saturating_since(p[0].at))
                    .fold(SimDuration::ZERO, |a, b| a + b);
                let e2e = ledger
                    .deliveries()
                    .iter()
                    .find(|(t, _)| *t == trace)
                    .map(|(_, d)| *d)
                    .unwrap();
                assert_eq!(hop_sum, e2e, "hop latencies sum to delivery latency");
            } else {
                ledger
                    .drop_of(trace)
                    .expect("non-delivered update has a drop record naming hop and reason");
            }
        }
        assert_eq!(delivered, s.metrics().deliveries.get());
        assert!(delivered > 0, "some comments were delivered");
        assert!(
            delivered < 30,
            "the burst must overflow the buffer / rate limit"
        );
        assert!(
            !ledger.drop_table().is_empty(),
            "drop attribution table is populated"
        );
        assert!(
            !ledger.hop_summaries().is_empty(),
            "per-hop latency histograms are populated"
        );
    }

    #[test]
    fn sub_e2e_latency_recorded() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.run_until(SimTime::from_secs(10));
        assert_eq!(s.metrics().sub_e2e.count(), 1);
        // The sticky-routing rewrite response travels device→BRASS→device.
        assert!(s.metrics().sub_e2e.mean() > 100.0);
    }

    /// Runs a multi-app scenario and returns an exact fingerprint of the
    /// metrics: any dependence on `TopicId` assignment order would perturb
    /// at least one of these numbers.
    fn metrics_fingerprint() -> String {
        let mut s = sim();
        let video = s.was_mut().create_video("eclipse");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        let thread = s.was_mut().create_thread(&[poster, viewer]);
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.subscribe_mailbox(SimTime::from_millis(10), viewer);
        s.subscribe_typing(SimTime::from_millis(20), viewer, thread, poster);
        s.subscribe_active_status(SimTime::from_millis(30), viewer);
        for i in 0..8 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 700),
                poster,
                video,
                &format!("comment number {i} with enough words to rank"),
            );
        }
        s.set_typing(SimTime::from_secs(3), poster, thread, true);
        s.send_message(SimTime::from_secs(4), poster, thread, "hello there");
        s.set_online(SimTime::from_secs(5), poster);
        s.run_until(SimTime::from_secs(60));
        let m = s.metrics();
        let mut apps: Vec<_> = m.per_app.iter().collect();
        apps.sort_by(|a, b| a.0.cmp(b.0));
        let per_app: Vec<String> = apps
            .iter()
            .map(|(name, lat)| {
                format!(
                    "{name}:{}:{:x}",
                    lat.total.count(),
                    lat.total.mean().to_bits()
                )
            })
            .collect();
        format!(
            "deliveries={} publications={} subscriptions={} mutations={} \
             decisions={} events={} apps=[{}]",
            m.deliveries.get(),
            m.publications.get(),
            m.subscriptions.get(),
            m.mutations.get(),
            s.total_decisions(),
            s.event_stats().total,
            per_app.join(",")
        )
    }

    /// Child half of `intern_order_does_not_change_metrics`: only active
    /// when re-executed by the parent with `BR_INTERN_DECOYS` set. Interns
    /// that many decoy topics *first* — shifting every `TopicId` the
    /// scenario will allocate — then prints the metrics fingerprint.
    #[test]
    fn intern_order_child() {
        let Ok(decoys) = std::env::var("BR_INTERN_DECOYS") else {
            return;
        };
        let decoys: u32 = decoys.parse().expect("BR_INTERN_DECOYS is a count");
        for i in 0..decoys {
            Topic::new(&format!("/Decoy/{i}")).unwrap();
        }
        println!("FINGERPRINT {}", metrics_fingerprint());
    }

    /// Interning is process-global, so perturbing id assignment requires a
    /// fresh process: the test re-executes its own binary twice, once with
    /// no decoy topics and once with 64 interned up front, and asserts the
    /// two runs produce bit-identical metrics. Referenced from the module
    /// docs of `pylon::topic`.
    #[test]
    fn intern_order_does_not_change_metrics() {
        let exe = std::env::current_exe().expect("test binary path");
        let run = |decoys: &str| -> String {
            let out = std::process::Command::new(&exe)
                .args(["sim::tests::intern_order_child", "--exact", "--nocapture"])
                .env("BR_INTERN_DECOYS", decoys)
                .output()
                .expect("re-exec test binary");
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            assert!(out.status.success(), "child failed:\n{stdout}");
            // The harness may prefix its own status on the same line, so
            // split on the marker rather than anchoring at column zero.
            stdout
                .lines()
                .find_map(|l| l.split("FINGERPRINT ").nth(1))
                .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
                .to_owned()
        };
        let baseline = run("0");
        let shifted = run("64");
        assert_eq!(
            baseline, shifted,
            "metrics must not depend on topic intern order"
        );
    }

    /// Runs a fault-heavy multi-app scenario on `workers` threads and
    /// returns an exhaustive fingerprint: metrics counters, per-app
    /// latency bit patterns, event stats, and the full trace ledger
    /// (every hop record of every chain). Any scheduling dependence in
    /// the sharded executor perturbs at least one component.
    fn parallel_fingerprint(workers: usize) -> String {
        let mut s = SystemSim::new(SystemConfig::small(), 4242);
        s.set_workers(workers);
        let video = s.was_mut().create_video("parallel");
        let poster = s.create_user_device("poster", "en");
        let mut viewers = Vec::new();
        for i in 0..12 {
            let v = s.create_user_device(&format!("viewer{i}"), "en");
            s.subscribe_lvc(SimTime::from_millis(i * 37), v, video);
            viewers.push(v);
        }
        let thread = s.was_mut().create_thread(&[poster, viewers[0]]);
        s.subscribe_mailbox(SimTime::from_millis(500), viewers[0]);
        s.subscribe_typing(SimTime::from_millis(600), viewers[0], thread, poster);
        for i in 0..20 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 450),
                poster,
                video,
                &format!("comment number {i} with enough words to rank"),
            );
        }
        s.set_typing(SimTime::from_secs(3), poster, thread, true);
        s.send_message(SimTime::from_secs(4), poster, thread, "hello there");
        // Faults across every subsystem: device churn, a planned upgrade,
        // an unplanned crash, and a proxy outage.
        s.schedule_device_drop(SimTime::from_secs(6), viewers[1]);
        s.schedule_device_vanish(SimTime::from_secs(7), viewers[2]);
        s.schedule_brass_upgrade(SimTime::from_secs(8), 1, SimDuration::from_secs(20));
        s.schedule_brass_crash(SimTime::from_secs(10), 2, SimDuration::from_secs(25));
        s.schedule_proxy_outage(SimTime::from_secs(12), 0, SimDuration::from_secs(15));
        s.run_until(SimTime::from_secs(90));

        let m = s.metrics();
        let mut apps: Vec<_> = m.per_app.iter().collect();
        apps.sort_by(|a, b| a.0.cmp(b.0));
        let per_app: Vec<String> = apps
            .iter()
            .map(|(name, lat)| {
                format!(
                    "{name}:{}:{:x}",
                    lat.total.count(),
                    lat.total.mean().to_bits()
                )
            })
            .collect();
        let ledger = s.trace_ledger();
        let mut chains = String::new();
        for trace in ledger.trace_ids() {
            chains.push_str(&format!("{trace:?}=["));
            for rec in ledger.chain(trace) {
                chains.push_str(&format!(
                    "{:?}@{}:{:?};",
                    rec.hop,
                    rec.at.as_micros(),
                    rec.outcome
                ));
            }
            chains.push(']');
        }
        format!(
            "deliveries={} publications={} subscriptions={} mutations={} \
             drops={} reconnects={} hb_false={} proxy_rec={} decisions={} \
             events={} heartbeats={} apps=[{}] traces={} chains={chains}",
            m.deliveries.get(),
            m.publications.get(),
            m.subscriptions.get(),
            m.mutations.get(),
            m.connection_drops.get(),
            m.host_failures_detected.get(),
            m.device_vanishes.get(),
            s.total_proxy_reconnects(),
            s.total_decisions(),
            s.event_stats().total,
            s.event_stats().heartbeats,
            per_app.join(","),
            ledger.trace_count(),
        )
    }

    /// The tentpole acceptance test: the same seed must produce
    /// bit-identical metrics and trace ledger whether the logical shards
    /// run serially on one thread or in parallel on several.
    #[test]
    fn parallel_workers_match_serial() {
        let serial = parallel_fingerprint(1);
        let threaded = parallel_fingerprint(3);
        assert_eq!(
            serial, threaded,
            "worker count must not perturb simulation results"
        );
    }
}
