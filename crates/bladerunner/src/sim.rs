//! The full-system discrete-event simulation.
//!
//! [`SystemSim`] wires every sans-io component together and drives them
//! with the [`simkit`] event queue: each output effect becomes a future
//! event, delayed by a sampled hop latency from the
//! [`crate::latency::LatencyModel`]. All randomness flows
//! from one seed, so any run is exactly reproducible.

use std::sync::Arc;

use brass::app::{DeviceId, FetchToken, WasRequest, WasResponse};
use brass::host::{BrassHost, HostConfig, HostEffect};
use burst::frame::{Frame, StreamId};
use burst::json::Json;
use edge::device::{Device, DeviceOutput};
use edge::pop::{Pop, PopEffect};
use edge::proxy::{ProxyEffect, ReverseProxy};
use pylon::{HostId, PylonCluster, Topic};
use simkit::fxhash::{FxHashMap, FxHashSet};
use simkit::queue::EventQueue;
use simkit::rng::DetRng;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::{DropReason, Hop, HopOutcome, TraceId, TraceLedger};
use tao::{ObjectId, Tao};
use was::service::{Rv, WebApplicationServer};
use was::UpdateEvent;

use crate::config::{LinkClass, SystemConfig};
use crate::latency::LatencyModel;
use crate::metrics::SystemMetrics;

/// Per-subsystem event-loop accounting: how many events the simulator
/// popped and handled, grouped by the layer the event models. This is the
/// denominator of the `scale` bench's events/sec figure and shows where
/// simulated work concentrates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// All events handled.
    pub total: u64,
    /// Workload injections: subscribes, cancels, mutations.
    pub workload: u64,
    /// Pylon publish / fan-out / subscription / node events.
    pub pylon: u64,
    /// TAO cross-region replication applies.
    pub tao: u64,
    /// BRASS-side work: WAS round-trips, timers, host maintenance.
    pub brass: u64,
    /// Client → server frame hops (POP, proxy, BRASS arrival).
    pub transport_up: u64,
    /// Server → client frame hops (proxy, POP, device arrival).
    pub transport_down: u64,
    /// Device churn: drops and reconnects.
    pub device_churn: u64,
    /// Fault-plan episodes: crashes, outages, recoveries, vanishes.
    pub faults: u64,
    /// Heartbeat ticks and pong round-trips.
    pub heartbeats: u64,
    /// Periodic metrics ticks.
    pub metrics: u64,
}

impl EventStats {
    fn note(&mut self, ev: &Ev) {
        self.total += 1;
        let bucket = match ev {
            Ev::DeviceSubscribe { .. } | Ev::DeviceCancel { .. } | Ev::WasMutationExec { .. } => {
                &mut self.workload
            }
            Ev::PylonPublish { .. }
            | Ev::PylonDeliverHost { .. }
            | Ev::PylonSubscribeExec { .. }
            | Ev::PylonUnsubscribeExec { .. }
            | Ev::PylonNode { .. } => &mut self.pylon,
            Ev::TaoReplicate { .. } => &mut self.tao,
            Ev::WasExec { .. }
            | Ev::WasReply { .. }
            | Ev::BrassTimer { .. }
            | Ev::BrassRedirect { .. }
            | Ev::BrassUpgrade { .. }
            | Ev::BrassHostBack { .. }
            | Ev::WasBackfillExec { .. } => &mut self.brass,
            Ev::AtPop { .. } | Ev::AtProxy { .. } | Ev::AtBrass { .. } => &mut self.transport_up,
            Ev::DownAtProxy { .. } | Ev::DownAtPop { .. } | Ev::AtDevice { .. } => {
                &mut self.transport_down
            }
            Ev::DeviceDrop { .. } | Ev::DeviceReconnect { .. } => &mut self.device_churn,
            Ev::BrassCrash { .. }
            | Ev::BrassRecover { .. }
            | Ev::ProxyOutage { .. }
            | Ev::ProxyBack { .. }
            | Ev::DeviceVanish { .. } => &mut self.faults,
            Ev::HeartbeatTick | Ev::PongFromHost { .. } => &mut self.heartbeats,
            Ev::MetricsTick => &mut self.metrics,
        };
        *bucket += 1;
    }
}

/// A simulation event.
enum Ev {
    // ------------------------------------------------------------------
    // Workload.
    // ------------------------------------------------------------------
    /// A device opens a new request-stream with this header.
    DeviceSubscribe { device: u64, header: Json },
    /// A device cancels a stream.
    DeviceCancel { device: u64, sid: StreamId },
    /// A device issues a GraphQL mutation (already includes last-mile
    /// latency; `app` classifies it for metrics).
    WasMutationExec { gql: String, app: &'static str },

    // ------------------------------------------------------------------
    // Backend publish path.
    // ------------------------------------------------------------------
    /// An update event reaches Pylon.
    PylonPublish { event: UpdateEvent },
    /// Pylon forwards an event to one BRASS host. The event is shared:
    /// fanning out to N hosts enqueues N pointers to one allocation.
    PylonDeliverHost {
        host: usize,
        event: Arc<UpdateEvent>,
    },
    /// A cross-region TAO cache invalidation applies.
    TaoReplicate { event: tao::ReplicationEvent },

    // ------------------------------------------------------------------
    // BRASS subscriptions and async work.
    // ------------------------------------------------------------------
    /// A BRASS host's subscribe reaches (and replicates within) Pylon.
    PylonSubscribeExec {
        host: usize,
        topic: Topic,
        attempt: u32,
    },
    /// A BRASS host's unsubscribe reaches Pylon.
    PylonUnsubscribeExec { host: usize, topic: Topic },
    /// A BRASS-issued WAS request executes at the WAS.
    WasExec {
        host: usize,
        app: String,
        token: FetchToken,
        request: WasRequest,
        attributed: Option<SimTime>,
    },
    /// The WAS response arrives back at the BRASS.
    WasReply {
        host: usize,
        app: String,
        token: FetchToken,
        response: WasResponse,
        attributed: Option<SimTime>,
    },
    /// An application timer fires.
    BrassTimer {
        host: usize,
        app: String,
        token: u64,
    },

    // ------------------------------------------------------------------
    // Frame transport, client → server.
    // ------------------------------------------------------------------
    /// A device frame arrives at its POP.
    AtPop { device: u64, frame: Frame },
    /// A frame arrives at a reverse proxy.
    AtProxy {
        proxy: usize,
        device: u64,
        frame: Frame,
    },
    /// A frame arrives at a BRASS host.
    AtBrass {
        host: usize,
        device: u64,
        frame: Frame,
    },

    // ------------------------------------------------------------------
    // Frame transport, server → client.
    // ------------------------------------------------------------------
    /// A response frame arrives at the stream's proxy on its way down.
    DownAtProxy {
        device: u64,
        frame: Frame,
        sent_at: SimTime,
    },
    /// A response frame arrives at the device's POP.
    DownAtPop {
        device: u64,
        frame: Frame,
        sent_at: SimTime,
    },
    /// A response frame arrives at the device.
    AtDevice {
        device: u64,
        frame: Frame,
        sent_at: SimTime,
    },

    // ------------------------------------------------------------------
    // Failures and maintenance.
    // ------------------------------------------------------------------
    /// A device's last-mile connection drops.
    DeviceDrop { device: u64 },
    /// A dropped device reconnects and resubscribes its streams.
    DeviceReconnect { device: u64, frames: Vec<Frame> },
    /// A BRASS redirects one stream to another host (load rebalancing).
    BrassRedirect {
        host: usize,
        device: u64,
        sid: StreamId,
        to_host: usize,
    },
    /// A BRASS host is drained for a software upgrade (proxies repair its
    /// streams onto other hosts).
    BrassUpgrade { host: usize },
    /// An upgraded BRASS host rejoins the routing pools.
    BrassHostBack { host: usize },
    /// A Pylon subscriber-KV node goes down / comes back.
    PylonNode { node: u64, up: bool },

    // ------------------------------------------------------------------
    // Chaos: unplanned failures and heartbeat-driven detection.
    // ------------------------------------------------------------------
    /// An *unplanned* BRASS host crash: its in-memory state dies and —
    /// unlike [`Ev::BrassUpgrade`] — nobody is told. Proxies learn only by
    /// missed heartbeat pongs.
    BrassCrash { host: usize },
    /// A crashed BRASS host comes back up (empty) and rejoins the pools.
    BrassRecover { host: usize },
    /// A reverse proxy goes dark (regional outage); POPs repair its
    /// streams onto surviving proxies.
    ProxyOutage { proxy: usize },
    /// A recovered reverse proxy rejoins its POPs.
    ProxyBack { proxy: usize },
    /// A device's last-mile link dies silently (no FIN): the server side
    /// learns only via POP heartbeats; the device reconnects with backoff.
    DeviceVanish { device: u64 },
    /// The global heartbeat tick driving proxy→BRASS (and optionally
    /// POP→device) monitors.
    HeartbeatTick,
    /// A live BRASS host answers a proxy's heartbeat ping.
    PongFromHost {
        proxy: usize,
        host: usize,
        token: u64,
    },
    /// A device's gap-detection backfill poll executes at the WAS,
    /// recovering updates lost on the last mile.
    WasBackfillExec { device: u64, sid: StreamId },
    /// Periodic metrics snapshot.
    MetricsTick,
}

struct DeviceState {
    device: Device,
    pop: usize,
    link: LinkClass,
    lang: String,
    connected: bool,
    /// Consecutive recent drops, driving exponential reconnect backoff.
    drop_streak: u32,
    /// When the last drop happened (streaks decay after quiet periods).
    last_drop_at: SimTime,
}

/// The assembled Bladerunner system under simulation.
pub struct SystemSim {
    config: SystemConfig,
    latency: LatencyModel,
    rng: DetRng,
    queue: EventQueue<Ev>,

    was: WebApplicationServer,
    pylon: PylonCluster,
    hosts: Vec<BrassHost>,
    proxies: Vec<ReverseProxy>,
    pops: Vec<Pop>,
    /// Liveness of each BRASS host. A `false` entry swallows frames and
    /// Pylon deliveries — the rest of the system must *detect* the death
    /// through missed heartbeats, never observe this flag directly.
    host_up: Vec<bool>,
    /// Liveness of each reverse proxy.
    proxy_up: Vec<bool>,
    devices: FxHashMap<u64, DeviceState>,
    /// device → proxy carrying its streams (learned from POP routing).
    device_proxy: FxHashMap<u64, usize>,
    /// (device, sid) → traces lost in delivery to that stream, recoverable
    /// by a WAS backfill poll (gap detection or reconnect).
    pending_backfill: FxHashMap<(u64, StreamId), Vec<TraceId>>,

    metrics: SystemMetrics,
    /// The per-update hop ledger: every admitted update's journey through
    /// write → Pylon → BRASS → BURST → device, with drop attribution.
    ledger: TraceLedger,
    /// object → trace of the most recent update event referencing it, used
    /// to attribute payload fetches, frames, and renders back to traces.
    /// (Updates sharing an object — e.g. one message fanned to N mailboxes —
    /// resolve to the most recent trace.)
    object_trace: FxHashMap<ObjectId, TraceId>,
    /// Streams subscribed per topic (Fig. 7 publication accounting).
    topic_streams: FxHashMap<Topic, Vec<(u64, StreamId)>>,
    /// Reverse of [`Self::topic_streams`]: the topic each open stream
    /// subscribed to. Makes per-frame app attribution and stream teardown
    /// O(1) instead of a scan over every topic in the registry.
    stream_topic: FxHashMap<(u64, StreamId), Topic>,
    /// Pylon event delivery time per (host, object), for BRASS-latency
    /// attribution of later payload fetches.
    object_delivered: FxHashMap<(usize, ObjectId), SimTime>,
    /// Subscription start times (device-observed subscribe latency).
    sub_started: FxHashMap<(u64, StreamId), SimTime>,
    /// Decisions seen at the last metrics tick (for per-bucket deltas).
    decisions_at_tick: u64,
    last_proxy_reconnects: u64,
    /// Scenario bookkeeping: predicted next stream id per device.
    scenario_sids: FxHashMap<u64, u64>,
    /// Per-subsystem event-loop accounting.
    event_stats: EventStats,
}

impl SystemSim {
    /// Builds a system and schedules the periodic metrics tick.
    pub fn new(config: SystemConfig, seed: u64) -> Self {
        let rng = DetRng::new(seed);
        let was = WebApplicationServer::new(Tao::new(config.tao.clone()));
        let pylon = PylonCluster::new(config.pylon.clone());
        let hosts: Vec<BrassHost> = (0..config.brass_hosts)
            .map(|i| {
                let mut h = BrassHost::new(HostConfig::small(i));
                h.register_standard_apps();
                h
            })
            .collect();
        let host_ids: Vec<u32> = (0..config.brass_hosts).collect();
        let proxies: Vec<ReverseProxy> = (0..config.proxies)
            .map(|i| {
                ReverseProxy::new(i, config.route_strategy, host_ids.clone()).with_heartbeat(
                    config.heartbeat_interval.as_micros(),
                    config.heartbeat_misses,
                )
            })
            .collect();
        let proxy_ids: Vec<u32> = (0..config.proxies).collect();
        let pops: Vec<Pop> = (0..config.pops)
            .map(|i| Pop::new(i, proxy_ids.clone()))
            .collect();
        let metrics = SystemMetrics::new(config.metrics_horizon, config.metrics_interval);
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO + config.metrics_interval, Ev::MetricsTick);
        queue.schedule(SimTime::ZERO + config.heartbeat_interval, Ev::HeartbeatTick);
        SystemSim {
            latency: LatencyModel::table3(),
            rng,
            queue,
            was,
            pylon,
            hosts,
            proxies,
            pops,
            host_up: vec![true; config.brass_hosts as usize],
            proxy_up: vec![true; config.proxies as usize],
            devices: FxHashMap::default(),
            device_proxy: FxHashMap::default(),
            pending_backfill: FxHashMap::default(),
            metrics,
            ledger: TraceLedger::with_retention(config.trace_retention),
            object_trace: FxHashMap::default(),
            topic_streams: FxHashMap::default(),
            stream_topic: FxHashMap::default(),
            object_delivered: FxHashMap::default(),
            sub_started: FxHashMap::default(),
            decisions_at_tick: 0,
            last_proxy_reconnects: 0,
            scenario_sids: FxHashMap::default(),
            event_stats: EventStats::default(),
            config,
        }
    }

    /// The WAS (for fixture setup: videos, threads, friendships).
    pub fn was_mut(&mut self) -> &mut WebApplicationServer {
        &mut self.was
    }

    /// The Pylon cluster (failure injection, counters).
    pub fn pylon(&self) -> &PylonCluster {
        &self.pylon
    }

    /// Mutable Pylon access (tests probe quorum topology directly).
    pub fn pylon_mut(&mut self) -> &mut PylonCluster {
        &mut self.pylon
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }

    /// Mutable metrics access (harnesses add their own annotations).
    pub fn metrics_mut(&mut self) -> &mut SystemMetrics {
        &mut self.metrics
    }

    /// The hop-ledger of every update traced through this run.
    pub fn trace_ledger(&self) -> &TraceLedger {
        &self.ledger
    }

    /// Total BRASS delivery decisions across hosts.
    pub fn total_decisions(&self) -> u64 {
        self.hosts
            .iter()
            .map(|h| h.total_app_counters().decisions)
            .sum()
    }

    /// Total proxy-induced stream reconnects across proxies.
    pub fn total_proxy_reconnects(&self) -> u64 {
        self.proxies
            .iter()
            .map(|p| p.counters().induced_reconnects)
            .sum()
    }

    /// A device's current state (testing).
    pub fn device(&self, device: u64) -> Option<&Device> {
        self.devices.get(&device).map(|d| &d.device)
    }

    /// Whether a BRASS host is currently up (testing / fault plans).
    pub fn host_is_up(&self, host: usize) -> bool {
        self.host_up.get(host).copied().unwrap_or(false)
    }

    /// Whether a reverse proxy is currently up (testing / fault plans).
    pub fn proxy_is_up(&self, proxy: usize) -> bool {
        self.proxy_up.get(proxy).copied().unwrap_or(false)
    }

    /// The `(device, sid)` keys a BRASS host currently serves, sorted.
    pub fn host_stream_keys(&self, host: usize) -> Vec<(u64, StreamId)> {
        self.hosts
            .get(host)
            .map(|h| h.stream_keys())
            .unwrap_or_default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The per-run RNG (workload generators share the seed stream).
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Scenario bookkeeping: per-device counters predicting the next
    /// client-generated stream id (devices allocate sids sequentially).
    pub fn scenario_sid_counters(&mut self) -> &mut FxHashMap<u64, u64> {
        &mut self.scenario_sids
    }

    // ------------------------------------------------------------------
    // Fixture and workload helpers.
    // ------------------------------------------------------------------

    /// Creates a user in the WAS plus their device at the edge.
    /// Returns the shared id (user uid == device id).
    pub fn create_user_device(&mut self, name: &str, lang: &str) -> u64 {
        let uid = self.was.create_user(name, lang);
        let pop = (uid % self.pops.len() as u64) as usize;
        let weights: Vec<f64> = self.config.link_mix.iter().map(|(_, p)| *p).collect();
        let cat = simkit::dist::Categorical::new(&weights);
        let link = self.config.link_mix[cat.sample_index(&mut self.rng)].0;
        self.devices.insert(
            uid,
            DeviceState {
                device: Device::new(uid),
                pop,
                link,
                lang: lang.to_owned(),
                connected: true,
                drop_streak: 0,
                last_drop_at: SimTime::ZERO,
            },
        );
        uid
    }

    /// Schedules a subscription with an explicit header.
    pub fn subscribe_with_header(&mut self, at: SimTime, device: u64, header: Json) {
        self.queue
            .schedule(at, Ev::DeviceSubscribe { device, header });
    }

    fn gql_header(&self, device: u64, gql: String) -> Json {
        let lang = self
            .devices
            .get(&device)
            .map(|d| d.lang.as_str())
            .unwrap_or("en");
        Json::obj([
            ("viewer", Json::from(device)),
            ("lang", Json::from(lang)),
            ("gql", Json::from(gql)),
        ])
    }

    /// Schedules a LiveVideoComments subscription.
    pub fn subscribe_lvc(&mut self, at: SimTime, device: u64, video: u64) {
        let header = self.gql_header(
            device,
            format!("subscription {{ liveVideoComments(videoId: {video}) }}"),
        );
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a TypingIndicator subscription.
    pub fn subscribe_typing(&mut self, at: SimTime, device: u64, thread: u64, counterparty: u64) {
        let header = self.gql_header(
            device,
            format!(
                "subscription {{ typingIndicator(threadId: {thread}, counterpartyId: {counterparty}) }}"
            ),
        );
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules an ActiveStatus subscription.
    pub fn subscribe_active_status(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, "subscription { activeStatus }".to_owned());
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a Stories tray subscription.
    pub fn subscribe_stories(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, "subscription { storiesTray }".to_owned());
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a NewsFeedPostLikes subscription.
    pub fn subscribe_likes(&mut self, at: SimTime, device: u64, post: u64) {
        let header = self.gql_header(
            device,
            format!("subscription {{ postLikes(postId: {post}) }}"),
        );
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a like on a post.
    pub fn like_post(&mut self, at: SimTime, device: u64, post: u64) {
        let gql = format!("mutation {{ likePost(postId: {post}, uid: {device}) {{ ok }} }}");
        self.schedule_mutation(at, device, gql, "likes");
    }

    /// Schedules a WebsiteNotifications subscription.
    pub fn subscribe_notifications(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, "subscription { notifications }".to_owned());
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a Messenger mailbox subscription.
    pub fn subscribe_mailbox(&mut self, at: SimTime, device: u64) {
        let header = self.gql_header(device, format!("subscription {{ mailbox(uid: {device}) }}"));
        self.subscribe_with_header(at, device, header);
    }

    /// Schedules a stream cancellation.
    pub fn cancel_stream(&mut self, at: SimTime, device: u64, sid: StreamId) {
        self.queue.schedule(at, Ev::DeviceCancel { device, sid });
    }

    fn schedule_mutation(&mut self, at: SimTime, device: u64, gql: String, app: &'static str) {
        // Device → POP → edge → WAS; sampled as one compound delay.
        let link = self
            .devices
            .get(&device)
            .map(|d| d.link)
            .unwrap_or(LinkClass::Mobile);
        let delay =
            self.latency.last_mile(link, &mut self.rng) + self.latency.edge_to_was(&mut self.rng);
        self.queue
            .schedule(at + delay, Ev::WasMutationExec { gql, app });
    }

    /// Schedules a live-video comment post.
    pub fn post_comment(&mut self, at: SimTime, device: u64, video: u64, text: &str) {
        let gql = format!(
            r#"mutation {{ postComment(videoId: {video}, authorId: {device}, text: "{text}") {{ id }} }}"#
        );
        self.schedule_mutation(at, device, gql, "lvc");
    }

    /// Schedules a typing-state change.
    pub fn set_typing(&mut self, at: SimTime, device: u64, thread: u64, typing: bool) {
        let gql = format!(
            "mutation {{ setTyping(threadId: {thread}, uid: {device}, typing: {typing}) {{ ok }} }}"
        );
        self.schedule_mutation(at, device, gql, "typing");
    }

    /// Schedules an online-status refresh.
    pub fn set_online(&mut self, at: SimTime, device: u64) {
        let gql = format!("mutation {{ setOnline(uid: {device}) {{ ok }} }}");
        self.schedule_mutation(at, device, gql, "active_status");
    }

    /// Schedules a story creation.
    pub fn create_story(&mut self, at: SimTime, device: u64, media: &str) {
        let gql =
            format!(r#"mutation {{ createStory(authorId: {device}, media: "{media}") {{ id }} }}"#);
        self.schedule_mutation(at, device, gql, "stories");
    }

    /// Schedules a Messenger message send.
    pub fn send_message(&mut self, at: SimTime, device: u64, thread: u64, text: &str) {
        let gql = format!(
            r#"mutation {{ sendMessage(threadId: {thread}, fromId: {device}, text: "{text}") {{ id }} }}"#
        );
        self.schedule_mutation(at, device, gql, "messenger");
    }

    // ------------------------------------------------------------------
    // Failure injection.
    // ------------------------------------------------------------------

    /// Schedules a last-mile connection drop for a device.
    pub fn schedule_device_drop(&mut self, at: SimTime, device: u64) {
        self.queue.schedule(at, Ev::DeviceDrop { device });
    }

    /// Schedules a BRASS-initiated redirect of one stream to another host
    /// (§3.5 "Redirects"; used for load rebalancing and consolidation).
    pub fn schedule_brass_redirect(
        &mut self,
        at: SimTime,
        host: usize,
        device: u64,
        sid: StreamId,
        to_host: usize,
    ) {
        self.queue.schedule(
            at,
            Ev::BrassRedirect {
                host,
                device,
                sid,
                to_host,
            },
        );
    }

    /// Schedules a BRASS host drain/upgrade lasting `duration`.
    pub fn schedule_brass_upgrade(&mut self, at: SimTime, host: usize, duration: SimDuration) {
        self.queue.schedule(at, Ev::BrassUpgrade { host });
        self.queue
            .schedule(at + duration, Ev::BrassHostBack { host });
    }

    /// Schedules a Pylon subscriber-KV node outage of `duration`.
    pub fn schedule_pylon_outage(&mut self, at: SimTime, node: u64, duration: SimDuration) {
        self.queue.schedule(at, Ev::PylonNode { node, up: false });
        self.queue
            .schedule(at + duration, Ev::PylonNode { node, up: true });
    }

    /// Schedules an *unplanned* BRASS host crash lasting `duration`.
    ///
    /// Unlike [`Self::schedule_brass_upgrade`], nothing is signalled at
    /// crash time: proxies discover the death through missed heartbeat
    /// pongs and only then repair its streams (axiom 2).
    pub fn schedule_brass_crash(&mut self, at: SimTime, host: usize, duration: SimDuration) {
        self.queue.schedule(at, Ev::BrassCrash { host });
        self.queue
            .schedule(at + duration, Ev::BrassRecover { host });
    }

    /// Schedules a reverse-proxy outage (e.g. a regional PoP-to-DC link
    /// cut) lasting `duration`.
    pub fn schedule_proxy_outage(&mut self, at: SimTime, proxy: usize, duration: SimDuration) {
        self.queue.schedule(at, Ev::ProxyOutage { proxy });
        self.queue.schedule(at + duration, Ev::ProxyBack { proxy });
    }

    /// Schedules a *silent* device drop: the link dies without a FIN, so
    /// the POP learns only via heartbeats while the device reconnects on
    /// its own backoff schedule.
    pub fn schedule_device_vanish(&mut self, at: SimTime, device: u64) {
        self.queue.schedule(at, Ev::DeviceVanish { device });
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Runs the simulation until `until` (inclusive of events at `until`).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((now, ev)) = self.queue.pop_until(until) {
            self.event_stats.note(&ev);
            self.handle(now, ev);
        }
    }

    /// Per-subsystem counts of events handled so far.
    pub fn event_stats(&self) -> &EventStats {
        &self.event_stats
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::DeviceSubscribe { device, header } => self.on_device_subscribe(now, device, header),
            Ev::DeviceCancel { device, sid } => self.on_device_cancel(now, device, sid),
            Ev::WasMutationExec { gql, app } => self.on_was_mutation(now, &gql, app),
            Ev::PylonPublish { event } => self.on_pylon_publish(now, event),
            Ev::PylonDeliverHost { host, event } => self.on_pylon_deliver(now, host, event),
            Ev::TaoReplicate { event } => self.was.tao_mut().apply_replication(&event),
            Ev::PylonSubscribeExec {
                host,
                topic,
                attempt,
            } => self.on_pylon_subscribe_exec(now, host, topic, attempt),
            Ev::PylonUnsubscribeExec { host, topic } => {
                let _ = self.pylon.unsubscribe(&topic, HostId(host as u32));
            }
            Ev::WasExec {
                host,
                app,
                token,
                request,
                attributed,
            } => self.on_was_exec(now, host, app, token, request, attributed),
            Ev::WasReply {
                host,
                app,
                token,
                response,
                attributed,
            } => self.on_was_reply(now, host, app, token, response, attributed),
            Ev::BrassTimer { host, app, token } => {
                let fx = self.hosts[host].on_timer(&app, token, now);
                self.process_host_effects(now, host, fx, None);
            }
            Ev::AtPop { device, frame } => self.on_at_pop(now, device, frame),
            Ev::AtProxy {
                proxy,
                device,
                frame,
            } => self.on_at_proxy(now, proxy, device, frame),
            Ev::AtBrass {
                host,
                device,
                frame,
            } => self.on_at_brass(now, host, device, frame),
            Ev::DownAtProxy {
                device,
                frame,
                sent_at,
            } => self.on_down_at_proxy(now, device, frame, sent_at),
            Ev::DownAtPop {
                device,
                frame,
                sent_at,
            } => self.on_down_at_pop(now, device, frame, sent_at),
            Ev::AtDevice {
                device,
                frame,
                sent_at,
            } => self.on_at_device(now, device, frame, sent_at),
            Ev::DeviceDrop { device } => self.on_device_drop(now, device),
            Ev::DeviceReconnect { device, frames } => self.on_device_reconnect(now, device, frames),
            Ev::BrassRedirect {
                host,
                device,
                sid,
                to_host,
            } => {
                let fx =
                    self.hosts[host].redirect_stream(DeviceId(device), sid, to_host as u32, now);
                self.process_host_effects(now, host, fx, None);
            }
            Ev::BrassUpgrade { host } => self.on_brass_upgrade(now, host),
            Ev::BrassHostBack { host } => self.on_brass_host_back(now, host),
            Ev::PylonNode { node, up } => {
                if up {
                    self.pylon.node_up(node);
                } else {
                    self.pylon.node_down(node);
                }
            }
            Ev::BrassCrash { host } => self.on_brass_crash(now, host),
            Ev::BrassRecover { host } => self.on_brass_recover(now, host),
            Ev::ProxyOutage { proxy } => self.on_proxy_outage(now, proxy),
            Ev::ProxyBack { proxy } => self.on_proxy_back(now, proxy),
            Ev::DeviceVanish { device } => self.on_device_vanish(now, device),
            Ev::HeartbeatTick => self.on_heartbeat_tick(now),
            Ev::PongFromHost { proxy, host, token } => {
                if self.proxy_up[proxy] {
                    self.proxies[proxy].on_host_pong(host as u32, token);
                }
            }
            Ev::WasBackfillExec { device, sid } => self.on_was_backfill(now, device, sid),
            Ev::MetricsTick => self.on_metrics_tick(now),
        }
    }

    fn on_device_subscribe(&mut self, now: SimTime, device: u64, header: Json) {
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            return;
        }
        // Device stream cap ("each mobile app up to 20 concurrent
        // streams"): the oldest stream makes room for the new one.
        let evict: Vec<StreamId> = {
            let open = state.device.open_sids();
            let over = (open.len() + 1).saturating_sub(self.config.max_streams_per_device);
            open.into_iter().take(over).collect()
        };
        for sid in evict {
            self.on_device_cancel(now, device, sid);
        }
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        // Fig. 7 registry: which topic does this stream's subscription
        // target? Resolved before the header moves into the stream.
        let sub_topic = brass::resolve::resolve(&header).ok().map(|sub| sub.topic);
        let (sid, frame) = state.device.open_stream(header, Vec::new());
        self.metrics.subscriptions.inc();
        self.metrics.ts_subscriptions.inc(now);
        self.metrics.stream_opened(device, sid, now);
        self.sub_started.insert((device, sid), now);
        if let Some(topic) = sub_topic {
            self.topic_streams
                .entry(topic)
                .or_default()
                .push((device, sid));
            self.stream_topic.insert((device, sid), topic);
        }
        let link = state.link;
        let delay = self.latency.last_mile(link, &mut self.rng);
        self.queue
            .schedule(now + delay, Ev::AtPop { device, frame });
    }

    fn on_device_cancel(&mut self, now: SimTime, device: u64, sid: StreamId) {
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        let Some(frame) = state.device.cancel_stream(sid) else {
            return;
        };
        self.metrics.cancellations.inc();
        self.metrics.stream_closed(device, sid, now);
        // O(1) de-registration via the reverse map. (The old scan over
        // `topic_streams.values_mut()` also visited topics in hash-map
        // iteration order — harmless for `retain`, but a latent trap for
        // any future per-topic side effect.)
        if let Some(topic) = self.stream_topic.remove(&(device, sid)) {
            if let Some(streams) = self.topic_streams.get_mut(&topic) {
                streams.retain(|&(d, s)| !(d == device && s == sid));
            }
        }
        let link = state.link;
        let delay = self.latency.last_mile(link, &mut self.rng);
        self.queue
            .schedule(now + delay, Ev::AtPop { device, frame });
    }

    fn on_was_mutation(&mut self, now: SimTime, gql: &str, app: &'static str) {
        let Ok(outcome) = self.was.execute_mutation(gql, now.as_millis()) else {
            return;
        };
        self.metrics.mutations.inc();
        for rep in outcome.replication {
            let d = self.latency.cross_region(&mut self.rng);
            self.queue
                .schedule(now + d, Ev::TaoReplicate { event: rep });
        }
        let was_delay = self
            .latency
            .was_mutation(outcome.was_latency_ms, &mut self.rng);
        self.metrics
            .app(app)
            .was_handling
            .record(was_delay.as_millis_f64());
        for event in outcome.events {
            // The write committed: open the update's trace.
            let trace = TraceId(event.id);
            self.object_trace.insert(event.object, trace);
            self.ledger
                .record(trace, Hop::TaoCommit, now, HopOutcome::Ok);
            self.queue
                .schedule(now + was_delay, Ev::PylonPublish { event });
        }
    }

    fn on_pylon_publish(&mut self, now: SimTime, event: UpdateEvent) {
        self.metrics.publications.inc();
        self.metrics.ts_publications.inc(now);
        if let Some(streams) = self.topic_streams.get(&event.topic) {
            for &(d, s) in streams {
                self.metrics.publication_for_stream(d, s);
            }
        }
        let outcome = self.pylon.publish(&event.topic, event.id);
        let subscribers = outcome.fast_forwards.len() + outcome.late_forwards.len();
        let publish_outcome = if subscribers == 0 {
            HopOutcome::Dropped(DropReason::NoSubscribers)
        } else {
            HopOutcome::Ok
        };
        self.ledger
            .record(TraceId(event.id), Hop::PylonPublish, now, publish_outcome);
        let fanout = self.latency.pylon_fanout(subscribers, &mut self.rng);
        if subscribers < 10_000 {
            self.metrics
                .pylon_fanout_small
                .record(fanout.as_millis_f64());
        } else {
            self.metrics
                .pylon_fanout_large
                .record(fanout.as_millis_f64());
        }
        // One allocation, N pointers: the fan-out shares the event.
        let event = Arc::new(event);
        for host in outcome.fast_forwards {
            self.queue.schedule(
                now + fanout,
                Ev::PylonDeliverHost {
                    host: host.0 as usize,
                    event: Arc::clone(&event),
                },
            );
        }
        for host in outcome.late_forwards {
            let extra = self.latency.pylon_late_extra(&mut self.rng);
            self.queue.schedule(
                now + fanout + extra,
                Ev::PylonDeliverHost {
                    host: host.0 as usize,
                    event: Arc::clone(&event),
                },
            );
        }
    }

    fn on_pylon_deliver(&mut self, now: SimTime, host: usize, event: Arc<UpdateEvent>) {
        if host >= self.hosts.len() {
            return;
        }
        if !self.host_up[host] {
            // Pylon has not yet purged a crashed host's subscriptions
            // (that happens when a proxy's heartbeats detect the death);
            // events fanned to it meanwhile die here.
            self.ledger.record(
                TraceId(event.id),
                Hop::PylonDeliver,
                now,
                HopOutcome::Dropped(DropReason::HostDown),
            );
            return;
        }
        self.object_delivered.insert((host, event.object), now);
        self.ledger
            .record(TraceId(event.id), Hop::PylonDeliver, now, HopOutcome::Ok);
        let fx = self.hosts[host].on_pylon_event(&event, now);
        self.process_host_effects(now, host, fx, Some(now));
    }

    fn on_pylon_subscribe_exec(&mut self, now: SimTime, host: usize, topic: Topic, attempt: u32) {
        match self.pylon.subscribe(&topic, HostId(host as u32)) {
            Ok(()) => {}
            Err(_) => {
                self.metrics.quorum_failures.inc();
                // CP subscribe failed; BRASS retries with capped
                // exponential backoff until quorum returns.
                self.queue.schedule(
                    now + Self::quorum_retry_backoff(attempt),
                    Ev::PylonSubscribeExec {
                        host,
                        topic,
                        attempt: attempt.saturating_add(1),
                    },
                );
            }
        }
    }

    /// Backoff before quorum-subscribe retry `attempt + 1`. The exponent
    /// is clamped *before* shifting: attempts grow without bound under a
    /// long partition, and `1u64 << 64` would overflow.
    fn quorum_retry_backoff(attempt: u32) -> SimDuration {
        const CAP_SECS: u64 = 30;
        SimDuration::from_secs((1u64 << attempt.min(5)).min(CAP_SECS))
    }

    fn on_was_exec(
        &mut self,
        now: SimTime,
        host: usize,
        app: String,
        token: FetchToken,
        request: WasRequest,
        attributed: Option<SimTime>,
    ) {
        let response = match request {
            WasRequest::FetchObject { viewer, object } => {
                let response = match self.was.fetch_for_viewer(0, viewer, object) {
                    Ok((payload, _)) => WasResponse::Payload(payload.into()),
                    Err(was::WasError::PrivacyDenied) => WasResponse::Denied,
                    Err(_) => WasResponse::NotFound,
                };
                // The payload fetch is the final BRASS-processing gate:
                // the WAS privacy check decides whether the update survives.
                if let Some(&trace) = self.object_trace.get(&object) {
                    let outcome = match &response {
                        WasResponse::Payload(_) => HopOutcome::Ok,
                        WasResponse::Denied => HopOutcome::Dropped(DropReason::PrivacyBlock),
                        _ => HopOutcome::Dropped(DropReason::NotFound),
                    };
                    self.ledger.record(trace, Hop::BrassProcess, now, outcome);
                }
                response
            }
            WasRequest::Friends { uid } => WasResponse::Friends(self.was.friends_of(uid)),
            WasRequest::MailboxAfter { uid, after_seq } => {
                let q = match after_seq {
                    Some(a) => format!("{{ mailbox(uid: {uid}, afterSeq: {a}) }}"),
                    None => format!("{{ mailbox(uid: {uid}) }}"),
                };
                let entries = self
                    .was
                    .execute_query(0, &q)
                    .ok()
                    .and_then(|o| {
                        o.response.get("mailbox").map(|m| {
                            m.items()
                                .iter()
                                .filter_map(|e| {
                                    let seq = e.get("seq").and_then(Rv::as_int)? as u64;
                                    let obj = e.get("messageId").and_then(Rv::as_int)? as u64;
                                    Some((seq, ObjectId(obj)))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .unwrap_or_default();
                WasResponse::Mailbox(entries)
            }
        };
        let back = self.latency.brass_was_rtt(&mut self.rng) / 2;
        self.queue.schedule(
            now + back,
            Ev::WasReply {
                host,
                app,
                token,
                response,
                attributed,
            },
        );
    }

    fn on_was_reply(
        &mut self,
        now: SimTime,
        host: usize,
        app: String,
        token: FetchToken,
        response: WasResponse,
        attributed: Option<SimTime>,
    ) {
        let fx = self.hosts[host].on_was_response(&app, token, response, now);
        self.process_host_effects(now, host, fx, attributed);
    }

    /// Converts BRASS host effects into scheduled events.
    ///
    /// `attributed` carries the instant the update event arrived at the
    /// host, for the Fig. 9 "BRASS host processing" histogram.
    fn process_host_effects(
        &mut self,
        now: SimTime,
        host: usize,
        effects: Vec<HostEffect>,
        attributed: Option<SimTime>,
    ) {
        for effect in effects {
            match effect {
                HostEffect::PylonSubscribe(topic) => {
                    let d = self.latency.sub_replication(&mut self.rng);
                    self.metrics.sub_replication.record(d.as_millis_f64());
                    self.queue.schedule(
                        now + d,
                        Ev::PylonSubscribeExec {
                            host,
                            topic,
                            attempt: 0,
                        },
                    );
                }
                HostEffect::PylonUnsubscribe(topic) => {
                    let d = self.latency.sub_replication(&mut self.rng);
                    self.queue
                        .schedule(now + d, Ev::PylonUnsubscribeExec { host, topic });
                }
                HostEffect::Was {
                    app,
                    token,
                    request,
                } => {
                    // Payload fetches inherit attribution from the event
                    // that referenced the object (covers buffered apps).
                    let attr = match &request {
                        WasRequest::FetchObject { object, .. } => self
                            .object_delivered
                            .get(&(host, *object))
                            .copied()
                            .or(attributed),
                        _ => attributed,
                    };
                    let d = self.latency.brass_was_rtt(&mut self.rng) / 2;
                    self.queue.schedule(
                        now + d,
                        Ev::WasExec {
                            host,
                            app,
                            token,
                            request,
                            attributed: attr,
                        },
                    );
                }
                HostEffect::DropUpdate { object, reason } => {
                    if let Some(&trace) = self.object_trace.get(&object) {
                        self.ledger.record(
                            trace,
                            Hop::BrassProcess,
                            now,
                            HopOutcome::Dropped(reason),
                        );
                    }
                }
                HostEffect::Send { device, frame } => {
                    let proc = self.latency.brass_processing(&mut self.rng);
                    let send_at = now + proc;
                    for trace in self.frame_traces(&frame) {
                        self.ledger
                            .record(trace, Hop::BrassSend, send_at, HopOutcome::Ok);
                    }
                    if let Some(event_at) = attributed {
                        // Only data batches count as event processing.
                        if matches!(&frame, Frame::Response { batch, .. }
                            if batch.iter().any(|d| matches!(d, burst::frame::Delta::Update { .. })))
                        {
                            let app_name = self.app_of_device_frame(device.0, &frame);
                            self.metrics
                                .app(&app_name)
                                .brass_processing
                                .record(send_at.saturating_since(event_at).as_millis_f64());
                        }
                    }
                    let d = self.latency.proxy_brass(&mut self.rng);
                    self.queue.schedule(
                        send_at + d,
                        Ev::DownAtProxy {
                            device: device.0,
                            frame,
                            sent_at: send_at,
                        },
                    );
                }
                HostEffect::Timer { at, app, token } => {
                    self.queue.schedule(at, Ev::BrassTimer { host, app, token });
                }
            }
        }
    }

    /// Best-effort application attribution for a downstream frame: one
    /// reverse-map lookup on the stream's registered topic.
    fn app_of_device_frame(&self, device: u64, frame: &Frame) -> String {
        let topic = frame
            .sid()
            .and_then(|sid| self.stream_topic.get(&(device, sid)));
        let Some(topic) = topic else {
            return "unknown".into();
        };
        match topic.family() {
            "LVC" => "lvc".into(),
            "TI" => "typing".into(),
            "Status" => "active_status".into(),
            "Stories" => "stories".into(),
            "Msgr" => "messenger".into(),
            "Likes" => "likes".into(),
            "Notif" => "notifications".into(),
            other => other.to_owned(),
        }
    }

    fn on_at_pop(&mut self, now: SimTime, device: u64, frame: Frame) {
        let Some(state) = self.devices.get(&device) else {
            return;
        };
        let pop = state.pop;
        let fx = self.pops[pop].on_device_frame(device, frame, now.as_micros());
        self.process_pop_effects(now, fx);
    }

    fn on_at_proxy(&mut self, now: SimTime, proxy: usize, device: u64, frame: Frame) {
        if proxy >= self.proxies.len() {
            return;
        }
        if !self.proxy_up[proxy] {
            // Connection refused: the POP retries through its (repaired)
            // proxy assignment, modelling the edge's TCP-level failover.
            let d = self.latency.pop_proxy(&mut self.rng);
            self.queue.schedule(now + d, Ev::AtPop { device, frame });
            return;
        }
        let fx = self.proxies[proxy].on_downstream_frame(device, frame, now.as_micros());
        self.process_proxy_effects(now, proxy, fx);
    }

    fn process_proxy_effects(&mut self, now: SimTime, proxy: usize, effects: Vec<ProxyEffect>) {
        for effect in effects {
            match effect {
                ProxyEffect::ToBrass {
                    host,
                    device,
                    frame,
                } => {
                    let d = self.latency.proxy_brass(&mut self.rng);
                    self.queue.schedule(
                        now + d,
                        Ev::AtBrass {
                            host: host as usize,
                            device,
                            frame,
                        },
                    );
                }
                ProxyEffect::ToDevice { device, frame } => {
                    let d = self.latency.pop_proxy(&mut self.rng);
                    self.queue.schedule(
                        now + d,
                        Ev::DownAtPop {
                            device,
                            frame,
                            sent_at: now,
                        },
                    );
                }
                ProxyEffect::PingHost { host, token } => {
                    self.metrics.hb_pings.inc();
                    let host = host as usize;
                    // A dead host never answers; the ping just vanishes.
                    if host < self.host_up.len() && self.host_up[host] {
                        let rtt = self.latency.proxy_brass(&mut self.rng) * 2u64;
                        self.queue
                            .schedule(now + rtt, Ev::PongFromHost { proxy, host, token });
                    }
                }
                ProxyEffect::HostDown { host } => {
                    // Heartbeat-detected BRASS death: signal Pylon so the
                    // dead host's subscriptions are purged (axiom 1). The
                    // proxy's own stream repair rides in the same batch.
                    self.metrics.host_failures_detected.inc();
                    self.pylon.host_failed(HostId(host));
                }
            }
        }
    }

    fn on_at_brass(&mut self, now: SimTime, host: usize, device: u64, frame: Frame) {
        if host >= self.hosts.len() {
            return;
        }
        if !self.host_up[host] {
            // Frames to a crashed host vanish. Streams routed here stay
            // broken until a proxy's heartbeats detect the death and
            // repair them onto a healthy host.
            return;
        }
        let fx = match frame {
            Frame::Subscribe { sid, header, .. } => {
                self.hosts[host].on_subscribe(DeviceId(device), sid, header, now)
            }
            Frame::Cancel { sid } => self.hosts[host].on_cancel(DeviceId(device), sid, now),
            Frame::Ack { sid, seq } => self.hosts[host].on_ack(DeviceId(device), sid, seq, now),
            _ => Vec::new(),
        };
        self.process_host_effects(now, host, fx, None);
    }

    fn on_down_at_proxy(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        let Some(&proxy) = self.device_proxy.get(&device) else {
            // No known route (device never subscribed through a proxy).
            return;
        };
        if proxy >= self.proxies.len() {
            return;
        }
        if !self.proxy_up[proxy] {
            // Downstream frames through a dead proxy are lost until the
            // POP re-homes the device's streams onto a live proxy.
            let traces: Vec<TraceId> = self.frame_traces(&frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::BurstDeliver,
                    DropReason::HostDown,
                );
            }
            return;
        }
        let fx = self.proxies[proxy].on_upstream_frame(device, frame, now.as_micros());
        for effect in fx {
            if let ProxyEffect::ToDevice { device, frame } = effect {
                let d = self.latency.pop_proxy(&mut self.rng);
                self.queue.schedule(
                    now + d,
                    Ev::DownAtPop {
                        device,
                        frame,
                        sent_at,
                    },
                );
            }
        }
    }

    fn on_down_at_pop(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        let Some(state) = self.devices.get(&device) else {
            return;
        };
        let pop = state.pop;
        let fx = self.pops[pop].on_proxy_frame(device, frame, now.as_micros());
        for effect in fx {
            if let PopEffect::ToDevice { device, frame } = effect {
                self.schedule_to_device(now, device, frame, sent_at);
            }
        }
    }

    /// Resolves an update payload to its trace id via the embedded TAO
    /// object id. Payloads without an `"id"` field (or for objects written
    /// before tracing started) are simply untraced.
    ///
    /// Runs on every update of every frame at every transport hop, so the
    /// id is pulled out with the single-pass [`burst::json::top_level_u64`]
    /// scanner instead of a full allocating parse.
    fn payload_trace(
        object_trace: &FxHashMap<ObjectId, TraceId>,
        payload: &[u8],
    ) -> Option<TraceId> {
        let id = burst::json::top_level_u64(payload, "id")?;
        object_trace.get(&ObjectId(id)).copied()
    }

    /// The trace ids of every update payload a frame carries, in batch
    /// order.
    fn frame_traces(&self, frame: &Frame) -> Vec<TraceId> {
        frame
            .update_payloads()
            .filter_map(|p| Self::payload_trace(&self.object_trace, p))
            .collect()
    }

    /// Records a lost delivery and — when the losing stream is known —
    /// remembers the trace so a later WAS backfill poll (gap detection or
    /// reconnect) can recover it.
    fn register_backfill_drop(
        &mut self,
        now: SimTime,
        device: u64,
        sid: Option<StreamId>,
        trace: TraceId,
        hop: Hop,
        reason: DropReason,
    ) {
        self.ledger
            .record(trace, hop, now, HopOutcome::Dropped(reason));
        if let Some(sid) = sid {
            self.pending_backfill
                .entry((device, sid))
                .or_default()
                .push(trace);
        }
    }

    fn schedule_to_device(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        let Some(state) = self.devices.get(&device) else {
            return;
        };
        if !state.connected {
            // Best effort: frames to disconnected devices vanish (the
            // traces stay backfill-recoverable after reconnect).
            let traces = self.frame_traces(&frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::BurstDeliver,
                    DropReason::DeviceDisconnected,
                );
            }
            return;
        }
        if self.rng.chance(self.config.last_mile_drop) {
            self.metrics.frames_lost.inc();
            let traces = self.frame_traces(&frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::BurstDeliver,
                    DropReason::LastMileLoss,
                );
            }
            return;
        }
        for p in frame.update_payloads() {
            if let Some(trace) = Self::payload_trace(&self.object_trace, p) {
                self.ledger
                    .record(trace, Hop::BurstDeliver, now, HopOutcome::Ok);
            }
        }
        let link = state.link;
        let d = self.latency.last_mile(link, &mut self.rng);
        self.queue.schedule(
            now + d,
            Ev::AtDevice {
                device,
                frame,
                sent_at,
            },
        );
    }

    fn on_at_device(&mut self, now: SimTime, device: u64, frame: Frame, sent_at: SimTime) {
        let app = self.app_of_device_frame(device, &frame);
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            // The device dropped while the frame was in flight on the last
            // mile.
            let traces = self.frame_traces(&frame);
            for trace in traces {
                self.register_backfill_drop(
                    now,
                    device,
                    frame.sid(),
                    trace,
                    Hop::DeviceRender,
                    DropReason::DeviceDisconnected,
                );
            }
            return;
        }
        // Device-observed subscription latency: first response on a stream.
        if let Some(sid) = frame.sid() {
            if let Some(started) = self.sub_started.remove(&(device, sid)) {
                self.metrics
                    .sub_e2e
                    .record(now.saturating_since(started).as_millis_f64());
            }
        }
        let outputs = state.device.on_frame(&frame);
        let mut rendered_on: Option<StreamId> = None;
        for out in outputs {
            match out {
                DeviceOutput::Render { payload, sid } => {
                    rendered_on = Some(sid);
                    self.metrics.deliveries.inc();
                    self.metrics.ts_deliveries.inc(now);
                    let lat = self.metrics.app(&app);
                    lat.brass_to_device
                        .record(now.saturating_since(sent_at).as_millis_f64());
                    // Total publish time: the payload carries the original
                    // application timestamp.
                    if let Some(created) = burst::json::top_level_u64(&payload, "created_ms") {
                        let created = SimTime::from_millis(created);
                        lat.total
                            .record(now.saturating_since(created).as_millis_f64());
                    }
                    if let Some(id) = burst::json::top_level_u64(&payload, "id") {
                        if let Some(&trace) = self.object_trace.get(&ObjectId(id)) {
                            self.ledger
                                .record(trace, Hop::DeviceRender, now, HopOutcome::Ok);
                        }
                    }
                }
                DeviceOutput::StreamEnded { sid, retry } => {
                    self.metrics.stream_closed(device, sid, now);
                    if retry {
                        if let Some(frame) = state.device.retry_stream(sid) {
                            let link = state.link;
                            let d = self.latency.last_mile(link, &mut self.rng);
                            self.queue.schedule(now + d, Ev::AtPop { device, frame });
                        }
                    }
                }
                DeviceOutput::Send(frame) => {
                    // Protocol replies (pongs, flow-control) go back up.
                    let link = state.link;
                    let d = self.latency.last_mile(link, &mut self.rng);
                    self.queue.schedule(now + d, Ev::AtPop { device, frame });
                }
                DeviceOutput::BackfillPoll { sid } => {
                    // Gap detected: the device polls the WAS directly for
                    // the window it missed (the paper's at-most-once
                    // streams push reliability into app-level refetch).
                    self.metrics.backfill_polls.inc();
                    let link = state.link;
                    let d = self.latency.last_mile(link, &mut self.rng)
                        + self.latency.edge_to_was(&mut self.rng);
                    self.queue
                        .schedule(now + d, Ev::WasBackfillExec { device, sid });
                }
                DeviceOutput::ConnectivityChanged { .. } => {}
            }
        }
        // Reliable applications acknowledge receipt; the BRASS's retention
        // buffer shrinks and retransmission stops.
        if app == "messenger" {
            if let Some(sid) = rendered_on {
                let Some(state) = self.devices.get(&device) else {
                    return;
                };
                if let Some(ack) = state.device.ack(sid) {
                    let link = state.link;
                    let d = self.latency.last_mile(link, &mut self.rng);
                    self.queue
                        .schedule(now + d, Ev::AtPop { device, frame: ack });
                }
            }
        }
    }

    /// The delay before a dropped device's next reconnect attempt: capped
    /// exponential backoff on its recent drop streak, plus deterministic
    /// jitter so a mass-disconnect does not come back as one synchronized
    /// thundering herd.
    fn reconnect_backoff(&mut self, now: SimTime, device: u64) -> SimDuration {
        let base = self.config.reconnect_delay;
        let Some(state) = self.devices.get_mut(&device) else {
            return base;
        };
        // A quiet couple of minutes forgives the streak.
        if now.saturating_since(state.last_drop_at) > SimDuration::from_secs(120) {
            state.drop_streak = 0;
        }
        let streak = state.drop_streak;
        state.drop_streak = streak.saturating_add(1);
        state.last_drop_at = now;
        let capped_us =
            (base.as_micros() << streak.min(5)).min(SimDuration::from_secs(60).as_micros());
        let jitter_us = self.rng.below(capped_us / 2 + 1);
        SimDuration::from_micros(capped_us + jitter_us)
    }

    fn on_device_drop(&mut self, now: SimTime, device: u64) {
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            return;
        }
        state.connected = false;
        self.metrics.connection_drops.inc();
        self.metrics.ts_connection_drops.inc(now);
        let pop = state.pop;
        let resubscribes = state.device.on_connection_lost();
        let fx = self.pops[pop].on_device_disconnected(device);
        for effect in fx {
            if let PopEffect::DeviceGone { proxy, device } = effect {
                let pfx = self.proxies[proxy as usize].on_device_disconnected(device);
                self.process_proxy_effects(now, proxy as usize, pfx);
            }
        }
        let backoff = self.reconnect_backoff(now, device);
        self.queue.schedule(
            now + backoff,
            Ev::DeviceReconnect {
                device,
                frames: resubscribes,
            },
        );
    }

    /// A *silent* link death: no FIN reaches the POP, so server-side state
    /// lingers until POP heartbeats notice (or the device's reconnect
    /// overwrites it). The device itself notices quickly and reconnects on
    /// the same backoff schedule as an announced drop.
    fn on_device_vanish(&mut self, now: SimTime, device: u64) {
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        if !state.connected {
            return;
        }
        state.connected = false;
        self.metrics.device_vanishes.inc();
        self.metrics.connection_drops.inc();
        self.metrics.ts_connection_drops.inc(now);
        let resubscribes = state.device.on_connection_lost();
        // Deliberately NO pop/proxy notification here — that's the point.
        let backoff = self.reconnect_backoff(now, device);
        self.queue.schedule(
            now + backoff,
            Ev::DeviceReconnect {
                device,
                frames: resubscribes,
            },
        );
    }

    fn on_device_reconnect(&mut self, now: SimTime, device: u64, frames: Vec<Frame>) {
        let Some(state) = self.devices.get_mut(&device) else {
            return;
        };
        state.connected = true;
        let link = state.link;
        for frame in frames {
            self.metrics.subscriptions.inc();
            self.metrics.ts_subscriptions.inc(now);
            if let Some(sid) = frame.sid() {
                self.sub_started.insert((device, sid), now);
            }
            let d = self.latency.last_mile(link, &mut self.rng);
            self.queue.schedule(now + d, Ev::AtPop { device, frame });
        }
        // Anything lost while the device was away is refetched from the
        // WAS once the connection is back.
        let mut missed: Vec<StreamId> = self
            .pending_backfill
            .keys()
            .filter(|&&(d, _)| d == device)
            .map(|&(_, sid)| sid)
            .collect();
        missed.sort_unstable_by_key(|sid| sid.0);
        for sid in missed {
            self.metrics.backfill_polls.inc();
            let d = self.latency.last_mile(link, &mut self.rng)
                + self.latency.edge_to_was(&mut self.rng);
            self.queue
                .schedule(now + d, Ev::WasBackfillExec { device, sid });
        }
    }

    /// Executes a device's backfill poll at the WAS: every trace lost on
    /// the way to this stream that never made it by other means is
    /// recovered out-of-band.
    fn on_was_backfill(&mut self, now: SimTime, device: u64, sid: StreamId) {
        let Some(lost) = self.pending_backfill.remove(&(device, sid)) else {
            return;
        };
        for trace in lost {
            if self.ledger.is_delivered(trace) || self.ledger.is_backfilled(trace) {
                continue;
            }
            self.metrics.backfills.inc();
            self.ledger
                .record(trace, Hop::WasBackfill, now, HopOutcome::Ok);
        }
    }

    /// Drops (with attribution) every update recently delivered to a host
    /// that it may still have been buffering when its in-memory state
    /// died. Traces that already rendered are left alone; anything else
    /// gets a `HostDown` drop so the ledger still accounts for it.
    fn spill_host_buffers(&mut self, now: SimTime, host: usize) {
        let mut objects: Vec<ObjectId> = self
            .object_delivered
            .keys()
            .filter(|&&(h, _)| h == host)
            .map(|&(_, o)| o)
            .collect();
        objects.sort_unstable_by_key(|o| o.0);
        for object in objects {
            if let Some(&trace) = self.object_trace.get(&object) {
                if self.ledger.is_delivered(trace) || self.ledger.is_backfilled(trace) {
                    continue;
                }
                self.ledger.record(
                    trace,
                    Hop::BrassProcess,
                    now,
                    HopOutcome::Dropped(DropReason::HostDown),
                );
            }
        }
    }

    fn on_brass_upgrade(&mut self, now: SimTime, host: usize) {
        // The host's in-memory stream state is lost; Pylon drops its
        // subscriptions; proxies repair every affected stream elsewhere.
        // This is the *planned* path: everyone is told immediately.
        self.spill_host_buffers(now, host);
        let mut fresh = BrassHost::new(HostConfig::small(host as u32));
        fresh.register_standard_apps();
        self.hosts[host] = fresh;
        self.pylon.host_failed(HostId(host as u32));
        let before = self.total_proxy_reconnects();
        for proxy in 0..self.proxies.len() {
            if !self.proxy_up[proxy] {
                continue;
            }
            let fx = self.proxies[proxy].on_brass_host_failed(host as u32, now.as_micros());
            self.process_proxy_effects(now, proxy, fx);
        }
        let delta = self.total_proxy_reconnects() - before;
        self.metrics.ts_proxy_reconnects.record(now, delta as f64);
    }

    /// A planned (upgrade) or healed (crash) host rejoins every live
    /// proxy's routing pool with a fresh heartbeat monitor.
    fn on_brass_host_back(&mut self, now: SimTime, host: usize) {
        let before = self.total_proxy_reconnects();
        for proxy in 0..self.proxies.len() {
            if !self.proxy_up[proxy] {
                continue;
            }
            let fx = self.proxies[proxy].add_host(host as u32);
            self.process_proxy_effects(now, proxy, fx);
        }
        let delta = self.total_proxy_reconnects() - before;
        self.metrics.ts_proxy_reconnects.record(now, delta as f64);
    }

    fn on_brass_crash(&mut self, now: SimTime, host: usize) {
        if host >= self.hosts.len() || !self.host_up[host] {
            return;
        }
        self.host_up[host] = false;
        self.metrics.host_crashes.inc();
        // In-memory state — stream tables, app buffers — dies instantly;
        // updates the host was still holding are dropped with attribution.
        self.spill_host_buffers(now, host);
        let mut fresh = BrassHost::new(HostConfig::small(host as u32));
        fresh.register_standard_apps();
        self.hosts[host] = fresh;
        // Crucially, NOTHING is signalled here: Pylon keeps fanning events
        // at the corpse and proxies keep routing to it until their
        // heartbeat monitors cross the miss threshold.
    }

    fn on_brass_recover(&mut self, now: SimTime, host: usize) {
        if host >= self.hosts.len() || self.host_up[host] {
            return;
        }
        self.host_up[host] = true;
        self.on_brass_host_back(now, host);
    }

    fn on_proxy_outage(&mut self, now: SimTime, proxy: usize) {
        if proxy >= self.proxies.len() || !self.proxy_up[proxy] {
            return;
        }
        self.proxy_up[proxy] = false;
        self.metrics.proxy_outages.inc();
        // POPs see the region's connections reset: each drops the proxy
        // from its pool and repairs affected streams onto survivors
        // (axiom 2), signalling Degraded/Recovered to devices (axiom 1).
        for pop in 0..self.pops.len() {
            let fx = self.pops[pop].on_proxy_failed(proxy as u32);
            self.process_pop_effects(now, fx);
        }
    }

    fn on_proxy_back(&mut self, _now: SimTime, proxy: usize) {
        if proxy >= self.proxies.len() || self.proxy_up[proxy] {
            return;
        }
        // The proxy restarts empty with the full host roster minus hosts
        // already known dead; anything that dies later is re-detected by
        // its fresh heartbeat monitors.
        let host_ids: Vec<u32> = (0..self.config.brass_hosts).collect();
        let mut fresh = ReverseProxy::new(proxy as u32, self.config.route_strategy, host_ids)
            .with_heartbeat(
                self.config.heartbeat_interval.as_micros(),
                self.config.heartbeat_misses,
            );
        for (h, up) in self.host_up.iter().enumerate() {
            if !*up {
                fresh.remove_host(h as u32);
            }
        }
        self.proxies[proxy] = fresh;
        self.proxy_up[proxy] = true;
        for pop in self.pops.iter_mut() {
            pop.add_proxy(proxy as u32);
        }
    }

    /// The global heartbeat tick: live proxies ping their BRASS hosts (and
    /// repair streams off hosts that crossed the miss threshold); POPs
    /// ping devices when device heartbeats are enabled.
    fn on_heartbeat_tick(&mut self, now: SimTime) {
        for proxy in 0..self.proxies.len() {
            if !self.proxy_up[proxy] {
                continue;
            }
            let before = self.total_proxy_reconnects();
            let fx = self.proxies[proxy].on_heartbeat_tick(now.as_micros());
            self.process_proxy_effects(now, proxy, fx);
            let delta = self.total_proxy_reconnects() - before;
            if delta > 0 {
                self.metrics.ts_proxy_reconnects.record(now, delta as f64);
            }
        }
        if self.config.device_heartbeats {
            for pop in 0..self.pops.len() {
                let fx = self.pops[pop].on_heartbeat_tick(now.as_micros());
                self.process_pop_effects(now, fx);
            }
        }
        self.queue
            .schedule(now + self.config.heartbeat_interval, Ev::HeartbeatTick);
    }

    /// One availability sample: of all open streams on currently-connected
    /// devices, the fraction a live BRASS host is serving right now.
    fn sample_availability(&mut self, now: SimTime) {
        let mut live: FxHashSet<(u64, StreamId)> = FxHashSet::default();
        for (h, host) in self.hosts.iter().enumerate() {
            if self.host_up[h] {
                live.extend(host.stream_keys());
            }
        }
        let mut open = 0u64;
        let mut served = 0u64;
        for (&id, state) in &self.devices {
            if !state.connected {
                continue;
            }
            for sid in state.device.open_sids() {
                open += 1;
                if live.contains(&(id, sid)) {
                    served += 1;
                }
            }
        }
        let fraction = if open == 0 {
            1.0
        } else {
            served as f64 / open as f64
        };
        self.metrics.record_availability(now, fraction);
    }

    fn on_metrics_tick(&mut self, now: SimTime) {
        let active: usize = self.devices.values().map(|d| d.device.open_streams()).sum();
        self.metrics.ts_active_streams.record(now, active as f64);
        let decisions = self.total_decisions();
        // Saturating: a crashed/upgraded host restarts with zeroed
        // counters, so the fleet total can move backwards across a tick.
        self.metrics
            .ts_decisions
            .record(now, decisions.saturating_sub(self.decisions_at_tick) as f64);
        self.decisions_at_tick = decisions;
        self.last_proxy_reconnects = self.total_proxy_reconnects();
        self.sample_availability(now);
        // Rotate the attribution map so it cannot grow without bound —
        // but keep a window covering application buffering horizons, so a
        // crash can still attribute the updates it takes down with it.
        const ATTRIBUTION_WINDOW: SimDuration = SimDuration::from_secs(30);
        self.object_delivered
            .retain(|_, at| now.saturating_since(*at) <= ATTRIBUTION_WINDOW);
        self.queue
            .schedule(now + self.config.metrics_interval, Ev::MetricsTick);
    }

    /// Audits post-heal convergence: every connected device's open streams
    /// are served by a live BRASS host, and the trace ledger accounts for
    /// every admitted update as delivered, dropped-with-reason, or
    /// backfilled.
    pub fn convergence_report(&self) -> crate::fault::ConvergenceReport {
        let mut live: FxHashSet<(u64, StreamId)> = FxHashSet::default();
        let mut dead_host_streams = 0u64;
        for (h, host) in self.hosts.iter().enumerate() {
            if self.host_up[h] {
                live.extend(host.stream_keys());
            } else {
                dead_host_streams += host.stream_count() as u64;
            }
        }
        let mut ids: Vec<u64> = self.devices.keys().copied().collect();
        ids.sort_unstable();
        let mut open_streams = 0u64;
        let mut connected_devices = 0u64;
        let mut stranded: Vec<(u64, StreamId)> = Vec::new();
        for id in ids {
            let state = &self.devices[&id];
            if !state.connected {
                continue;
            }
            connected_devices += 1;
            for sid in state.device.open_sids() {
                open_streams += 1;
                if !live.contains(&(id, sid)) {
                    stranded.push((id, sid));
                }
            }
        }
        crate::fault::ConvergenceReport {
            connected_devices,
            open_streams,
            stranded,
            dead_host_streams,
            delivered: self.ledger.delivered_count(),
            dropped: self.ledger.total_drops(),
            backfilled: self.ledger.backfilled_count(),
            unaccounted: self.ledger.unaccounted(),
        }
    }

    /// Shared POP-effect fan-out (frames up to proxies, frames down to
    /// devices, device-gone teardown at the owning proxy).
    fn process_pop_effects(&mut self, now: SimTime, effects: Vec<PopEffect>) {
        for effect in effects {
            match effect {
                PopEffect::ToProxy {
                    proxy,
                    device,
                    frame,
                } => {
                    self.device_proxy.insert(device, proxy as usize);
                    let d = self.latency.pop_proxy(&mut self.rng);
                    self.queue.schedule(
                        now + d,
                        Ev::AtProxy {
                            proxy: proxy as usize,
                            device,
                            frame,
                        },
                    );
                }
                PopEffect::ToDevice { device, frame } => {
                    self.schedule_to_device(now, device, frame, now);
                }
                PopEffect::DeviceGone { proxy, device } => {
                    let proxy = proxy as usize;
                    if proxy < self.proxies.len() && self.proxy_up[proxy] {
                        let pfx = self.proxies[proxy].on_device_disconnected(device);
                        self.process_proxy_effects(now, proxy, pfx);
                    }
                    // The reap can be a false positive: the device is alive
                    // but its pongs died on a lossy link. The POP has
                    // already closed the connection under it, so the device
                    // sees the transport die and reconnects on the normal
                    // backoff schedule (otherwise it would sit "connected"
                    // with streams no server knows about, forever).
                    if let Some(state) = self.devices.get_mut(&device) {
                        if state.connected {
                            state.connected = false;
                            self.metrics.connection_drops.inc();
                            self.metrics.ts_connection_drops.inc(now);
                            let resubscribes = state.device.on_connection_lost();
                            let backoff = self.reconnect_backoff(now, device);
                            self.queue.schedule(
                                now + backoff,
                                Ev::DeviceReconnect {
                                    device,
                                    frames: resubscribes,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> SystemSim {
        SystemSim::new(SystemConfig::small(), 7)
    }

    #[test]
    fn quorum_retry_backoff_is_capped_at_any_attempt() {
        // Early attempts double; later attempts clamp at the cap instead
        // of shifting past 63 bits (attempt 64+ would have overflowed).
        let secs: Vec<u64> = [0u32, 1, 2, 3, 4, 5, 6, 8, 63, 64, 1_000, u32::MAX]
            .iter()
            .map(|&a| SystemSim::quorum_retry_backoff(a).as_secs())
            .collect();
        assert_eq!(secs, vec![1, 2, 4, 8, 16, 30, 30, 30, 30, 30, 30, 30]);
    }

    #[test]
    fn comment_flows_end_to_end() {
        let mut s = sim();
        let video = s.was_mut().create_video("eclipse");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.post_comment(
            SimTime::from_secs(2),
            poster,
            video,
            "an astonishing ring of fire over the ocean",
        );
        s.run_until(SimTime::from_secs(60));
        assert_eq!(
            s.metrics().deliveries.get(),
            1,
            "comment reached the viewer"
        );
        assert_eq!(s.metrics().publications.get(), 1);
        let lat = &s.metrics().per_app["lvc"];
        assert_eq!(lat.total.count(), 1);
        // Total latency includes the ~2s WAS ranking plus fan-out and push.
        assert!(lat.total.mean() > 1_500.0, "total {}", lat.total.mean());
        assert!(lat.total.mean() < 15_000.0, "total {}", lat.total.mean());
    }

    #[test]
    fn poster_does_not_receive_without_subscription() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        s.post_comment(
            SimTime::from_secs(1),
            poster,
            video,
            "talking to the void here",
        );
        s.run_until(SimTime::from_secs(30));
        assert_eq!(s.metrics().deliveries.get(), 0);
        assert_eq!(
            s.metrics().publications.get(),
            1,
            "published but nobody listens"
        );
    }

    #[test]
    fn typing_indicator_round_trip() {
        let mut s = sim();
        let a = s.create_user_device("a", "en");
        let b = s.create_user_device("b", "en");
        let thread = s.was_mut().create_thread(&[a, b]);
        // b watches a's typing state.
        s.subscribe_typing(SimTime::ZERO, b, thread, a);
        s.set_typing(SimTime::from_secs(2), a, thread, true);
        s.run_until(SimTime::from_secs(20));
        assert_eq!(s.metrics().deliveries.get(), 1);
        let lat = &s.metrics().per_app["typing"];
        assert!(lat.total.count() == 1, "typing total latency recorded");
        // Typing avoids ranking: total latency well under the LVC path.
        assert!(lat.total.mean() < 3_000.0, "total {}", lat.total.mean());
    }

    #[test]
    fn messenger_delivers_reliably_in_order() {
        let mut s = sim();
        let a = s.create_user_device("a", "en");
        let b = s.create_user_device("b", "en");
        let thread = s.was_mut().create_thread(&[a, b]);
        s.subscribe_mailbox(SimTime::ZERO, b);
        for i in 0..5 {
            s.send_message(
                SimTime::from_secs(2 + i),
                a,
                thread,
                &format!("message number {i}"),
            );
        }
        s.run_until(SimTime::from_secs(60));
        // b receives all 5 (a has no open mailbox stream).
        assert_eq!(s.metrics().deliveries.get(), 5);
    }

    #[test]
    fn rate_limit_caps_lvc_deliveries() {
        let mut s = sim();
        let video = s.was_mut().create_video("hot");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        // 40 comments in 4 seconds.
        for i in 0..40 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 100),
                poster,
                video,
                &format!("burst comment number {i} with some substance"),
            );
        }
        s.run_until(SimTime::from_secs(40));
        // At 1 message / 2 s with a 10 s freshness window, only a handful
        // survive.
        let delivered = s.metrics().deliveries.get();
        assert!(delivered >= 2, "some comments delivered: {delivered}");
        assert!(
            delivered <= 12,
            "rate limit must cap deliveries: {delivered}"
        );
        assert!(s.total_decisions() > delivered, "most updates filtered");
    }

    #[test]
    fn device_drop_and_resubscribe_resumes_delivery() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.post_comment(
            SimTime::from_secs(2),
            poster,
            video,
            "before the drop happens here",
        );
        s.run_until(SimTime::from_secs(15));
        let before = s.metrics().deliveries.get();
        assert_eq!(before, 1);
        // Drop the viewer; it reconnects and resubscribes automatically.
        s.schedule_device_drop(SimTime::from_secs(16), viewer);
        s.post_comment(
            SimTime::from_secs(25),
            poster,
            video,
            "after reconnect this arrives",
        );
        s.run_until(SimTime::from_secs(60));
        assert_eq!(s.metrics().connection_drops.get(), 1);
        assert_eq!(
            s.metrics().deliveries.get(),
            2,
            "delivery resumed after reconnect"
        );
    }

    #[test]
    fn brass_upgrade_repairs_streams_via_proxy() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.run_until(SimTime::from_secs(10));
        // Upgrade every host in turn at t=12; the stream's host is repaired.
        for h in 0..4 {
            s.schedule_brass_upgrade(
                SimTime::from_secs(12 + h),
                h as usize,
                SimDuration::from_secs(30),
            );
        }
        s.post_comment(
            SimTime::from_secs(50),
            poster,
            video,
            "life after the upgrade wave",
        );
        s.run_until(SimTime::from_secs(90));
        assert!(s.total_proxy_reconnects() >= 1, "proxy repaired the stream");
        assert_eq!(
            s.metrics().deliveries.get(),
            1,
            "delivery works after repair"
        );
    }

    #[test]
    fn pylon_outage_fails_subscribes_but_not_publishes() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let viewer = s.create_user_device("viewer", "en");
        // Take down ALL subscriber-KV nodes: quorum for every topic is gone.
        for n in 0..s.pylon().config().kv_nodes as u64 {
            s.schedule_pylon_outage(SimTime::ZERO, n, SimDuration::from_secs(30));
        }
        s.subscribe_lvc(SimTime::from_secs(5), viewer, video);
        s.run_until(SimTime::from_secs(20));
        assert!(
            s.metrics().quorum_failures.get() >= 1,
            "CP subscribe failed"
        );
        // After the outage the retry succeeds and delivery flows.
        let poster = s.create_user_device("poster", "en");
        s.post_comment(
            SimTime::from_secs(60),
            poster,
            video,
            "postquorum comment arrives fine",
        );
        s.run_until(SimTime::from_secs(120));
        assert_eq!(s.metrics().deliveries.get(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = SystemSim::new(SystemConfig::small(), 99);
            let video = s.was_mut().create_video("v");
            let poster = s.create_user_device("poster", "en");
            let viewer = s.create_user_device("viewer", "en");
            s.subscribe_lvc(SimTime::ZERO, viewer, video);
            for i in 0..10 {
                s.post_comment(
                    SimTime::from_secs(2 + i),
                    poster,
                    video,
                    &format!("comment {i} with consistent text"),
                );
            }
            s.run_until(SimTime::from_secs(60));
            (
                s.metrics().deliveries.get(),
                s.metrics().publications.get(),
                s.total_decisions(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stream_lifetime_and_publication_accounting() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.post_comment(
            SimTime::from_secs(1),
            poster,
            video,
            "a single interesting comment",
        );
        s.run_until(SimTime::from_secs(20));
        s.cancel_stream(SimTime::from_secs(21), viewer, StreamId(1));
        s.run_until(SimTime::from_secs(30));
        assert_eq!(s.metrics().stream_lifetimes.len(), 1);
        assert!(s.metrics().stream_lifetimes[0] >= SimDuration::from_secs(20));
        let buckets = s.metrics().publication_buckets();
        assert_eq!(buckets[1], 100.0, "the one stream saw 1-9 publications");
    }

    #[test]
    fn lvc_traces_account_for_every_update() {
        let mut s = sim();
        let video = s.was_mut().create_video("traced");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        // A burst dense enough to exercise the drop paths: buffer
        // overflow and rate-limit expiry alongside ordinary delivery.
        for i in 0..30 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 200),
                poster,
                video,
                &format!("burst comment number {i} with plenty of text"),
            );
        }
        // Posts end by t=8s; with a 10s freshness window and a 2s push
        // timer, every buffered comment is pushed or expired long before
        // t=60s, so no trace can still be in flight at the end.
        s.run_until(SimTime::from_secs(60));

        let ledger = s.trace_ledger();
        assert_eq!(ledger.trace_count() as u64, s.metrics().publications.get());
        assert!(ledger.unaccounted().is_empty(), "every update resolved");

        let mut delivered = 0u64;
        for trace in ledger.trace_ids() {
            let chain = ledger.chain(trace);
            assert_eq!(chain[0].hop, Hop::TaoCommit, "chains start at commit");
            for pair in chain.windows(2) {
                assert!(pair[0].at <= pair[1].at, "hop timestamps are monotone");
            }
            if ledger.is_delivered(trace) {
                delivered += 1;
                let last = chain.last().unwrap();
                assert_eq!(last.hop, Hop::DeviceRender);
                assert_eq!(last.outcome, HopOutcome::Ok);
                // Per-hop latencies telescope to the end-to-end latency.
                let hop_sum = chain
                    .windows(2)
                    .map(|p| p[1].at.saturating_since(p[0].at))
                    .fold(SimDuration::ZERO, |a, b| a + b);
                let e2e = ledger
                    .deliveries()
                    .iter()
                    .find(|(t, _)| *t == trace)
                    .map(|(_, d)| *d)
                    .unwrap();
                assert_eq!(hop_sum, e2e, "hop latencies sum to delivery latency");
            } else {
                ledger
                    .drop_of(trace)
                    .expect("non-delivered update has a drop record naming hop and reason");
            }
        }
        assert_eq!(delivered, s.metrics().deliveries.get());
        assert!(delivered > 0, "some comments were delivered");
        assert!(
            delivered < 30,
            "the burst must overflow the buffer / rate limit"
        );
        assert!(
            !ledger.drop_table().is_empty(),
            "drop attribution table is populated"
        );
        assert!(
            !ledger.hop_summaries().is_empty(),
            "per-hop latency histograms are populated"
        );
    }

    #[test]
    fn sub_e2e_latency_recorded() {
        let mut s = sim();
        let video = s.was_mut().create_video("v");
        let viewer = s.create_user_device("viewer", "en");
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.run_until(SimTime::from_secs(10));
        assert_eq!(s.metrics().sub_e2e.count(), 1);
        // The sticky-routing rewrite response travels device→BRASS→device.
        assert!(s.metrics().sub_e2e.mean() > 100.0);
    }

    /// Runs a multi-app scenario and returns an exact fingerprint of the
    /// metrics: any dependence on `TopicId` assignment order would perturb
    /// at least one of these numbers.
    fn metrics_fingerprint() -> String {
        let mut s = sim();
        let video = s.was_mut().create_video("eclipse");
        let poster = s.create_user_device("poster", "en");
        let viewer = s.create_user_device("viewer", "en");
        let thread = s.was_mut().create_thread(&[poster, viewer]);
        s.subscribe_lvc(SimTime::ZERO, viewer, video);
        s.subscribe_mailbox(SimTime::from_millis(10), viewer);
        s.subscribe_typing(SimTime::from_millis(20), viewer, thread, poster);
        s.subscribe_active_status(SimTime::from_millis(30), viewer);
        for i in 0..8 {
            s.post_comment(
                SimTime::from_millis(2_000 + i * 700),
                poster,
                video,
                &format!("comment number {i} with enough words to rank"),
            );
        }
        s.set_typing(SimTime::from_secs(3), poster, thread, true);
        s.send_message(SimTime::from_secs(4), poster, thread, "hello there");
        s.set_online(SimTime::from_secs(5), poster);
        s.run_until(SimTime::from_secs(60));
        let m = s.metrics();
        let mut apps: Vec<_> = m.per_app.iter().collect();
        apps.sort_by(|a, b| a.0.cmp(b.0));
        let per_app: Vec<String> = apps
            .iter()
            .map(|(name, lat)| {
                format!(
                    "{name}:{}:{:x}",
                    lat.total.count(),
                    lat.total.mean().to_bits()
                )
            })
            .collect();
        format!(
            "deliveries={} publications={} subscriptions={} mutations={} \
             decisions={} events={} apps=[{}]",
            m.deliveries.get(),
            m.publications.get(),
            m.subscriptions.get(),
            m.mutations.get(),
            s.total_decisions(),
            s.event_stats().total,
            per_app.join(",")
        )
    }

    /// Child half of `intern_order_does_not_change_metrics`: only active
    /// when re-executed by the parent with `BR_INTERN_DECOYS` set. Interns
    /// that many decoy topics *first* — shifting every `TopicId` the
    /// scenario will allocate — then prints the metrics fingerprint.
    #[test]
    fn intern_order_child() {
        let Ok(decoys) = std::env::var("BR_INTERN_DECOYS") else {
            return;
        };
        let decoys: u32 = decoys.parse().expect("BR_INTERN_DECOYS is a count");
        for i in 0..decoys {
            Topic::new(&format!("/Decoy/{i}")).unwrap();
        }
        println!("FINGERPRINT {}", metrics_fingerprint());
    }

    /// Interning is process-global, so perturbing id assignment requires a
    /// fresh process: the test re-executes its own binary twice, once with
    /// no decoy topics and once with 64 interned up front, and asserts the
    /// two runs produce bit-identical metrics. Referenced from the module
    /// docs of `pylon::topic`.
    #[test]
    fn intern_order_does_not_change_metrics() {
        let exe = std::env::current_exe().expect("test binary path");
        let run = |decoys: &str| -> String {
            let out = std::process::Command::new(&exe)
                .args(["sim::tests::intern_order_child", "--exact", "--nocapture"])
                .env("BR_INTERN_DECOYS", decoys)
                .output()
                .expect("re-exec test binary");
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            assert!(out.status.success(), "child failed:\n{stdout}");
            // The harness may prefix its own status on the same line, so
            // split on the marker rather than anchoring at column zero.
            stdout
                .lines()
                .find_map(|l| l.split("FINGERPRINT ").nth(1))
                .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
                .to_owned()
        };
        let baseline = run("0");
        let shifted = run("64");
        assert_eq!(
            baseline, shifted,
            "metrics must not depend on topic intern order"
        );
    }
}
