//! A real-time threaded driver for the sans-io components.
//!
//! The simulator in [`crate::sim`] drives every component with virtual
//! time; this module proves the same state machines run unmodified against
//! the wall clock: a backend thread owns the WAS, Pylon, and one BRASS
//! host, consumes commands from a channel, services BRASS timers with real
//! deadlines, and pushes deliveries back to the caller.
//!
//! This is the shape a production embedding would take (one event-loop
//! thread per BRASS host, exactly like the paper's single-threaded JS VMs),
//! scaled down to a demonstration.

use std::collections::BinaryHeap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use brass::app::{DeviceId, WasRequest, WasResponse};
use brass::host::{BrassHost, HostConfig, HostEffect};
use burst::frame::{Delta, Frame, StreamId};
use burst::json::Json;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use pylon::{PylonCluster, PylonConfig};
use simkit::time::SimTime;
use tao::{Tao, TaoConfig};
use was::service::WebApplicationServer;

/// Commands accepted by the backend thread.
enum Command {
    Subscribe { device: u64, sid: u64, header: Json },
    Mutation { gql: String },
    Shutdown,
}

/// A delivery pushed to a device.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// Target device.
    pub device: u64,
    /// Stream the update arrived on.
    pub sid: u64,
    /// Payload bytes (shared with the in-sim fan-out).
    pub payload: burst::frame::Payload,
}

/// Handle to a running real-time system.
pub struct RtSystem {
    commands: Sender<Command>,
    deliveries: Receiver<Delivery>,
    thread: Option<JoinHandle<()>>,
}

struct TimerEntry {
    deadline: Instant,
    app: String,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline) // min-heap
    }
}

struct Backend {
    was: WebApplicationServer,
    pylon: PylonCluster,
    host: BrassHost,
    timers: BinaryHeap<TimerEntry>,
    epoch: Instant,
    deliveries: Sender<Delivery>,
}

impl Backend {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Executes host effects inline (the backend is single-threaded, so
    /// WAS calls are synchronous here; only timers are deferred).
    fn run_effects(&mut self, effects: Vec<HostEffect>) {
        let mut queue = effects;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for effect in queue {
                match effect {
                    HostEffect::PylonSubscribe(topic) => {
                        let _ = self.pylon.subscribe(&topic, self.host.host_id());
                    }
                    HostEffect::PylonUnsubscribe(topic) => {
                        let _ = self.pylon.unsubscribe(&topic, self.host.host_id());
                    }
                    HostEffect::Was {
                        app,
                        token,
                        request,
                    } => {
                        let response = self.serve_was(request);
                        let now = self.now();
                        next.extend(self.host.on_was_response(&app, token, response, now));
                    }
                    HostEffect::Send { device, frame } => {
                        if let Frame::Response { sid, batch } = frame {
                            for delta in batch {
                                if let Delta::Update { payload, .. } = delta {
                                    let _ = self.deliveries.send(Delivery {
                                        device: device.0,
                                        sid: sid.0,
                                        payload,
                                    });
                                }
                            }
                        }
                    }
                    // The live runtime has no trace ledger; drop
                    // attributions are a simulation-only observability
                    // concern.
                    HostEffect::DropUpdate { .. } => {}
                    HostEffect::Timer { at, app, token } => {
                        let delay = at.saturating_since(self.now());
                        self.timers.push(TimerEntry {
                            deadline: Instant::now() + Duration::from_micros(delay.as_micros()),
                            app,
                            token,
                        });
                    }
                }
            }
            queue = next;
        }
    }

    fn serve_was(&mut self, request: WasRequest) -> WasResponse {
        match request {
            WasRequest::FetchObject { viewer, object } => {
                match self.was.fetch_for_viewer(0, viewer, object) {
                    Ok((payload, _)) => WasResponse::Payload(payload.into()),
                    Err(was::WasError::PrivacyDenied) => WasResponse::Denied,
                    Err(_) => WasResponse::NotFound,
                }
            }
            WasRequest::Friends { uid } => WasResponse::Friends(self.was.friends_of(uid)),
            WasRequest::MailboxAfter { uid, after_seq } => {
                let q = match after_seq {
                    Some(a) => format!("{{ mailbox(uid: {uid}, afterSeq: {a}) }}"),
                    None => format!("{{ mailbox(uid: {uid}) }}"),
                };
                let entries = self
                    .was
                    .execute_query(0, &q)
                    .ok()
                    .and_then(|o| {
                        o.response.get("mailbox").map(|m| {
                            m.items()
                                .iter()
                                .filter_map(|e| {
                                    use was::service::Rv;
                                    let seq = e.get("seq").and_then(Rv::as_int)? as u64;
                                    let obj = e.get("messageId").and_then(Rv::as_int)? as u64;
                                    Some((seq, tao::ObjectId(obj)))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .unwrap_or_default();
                WasResponse::Mailbox(entries)
            }
        }
    }

    fn run(mut self, commands: Receiver<Command>) {
        loop {
            // Wait until the next timer deadline or the next command.
            let timeout = self
                .timers
                .peek()
                .map(|t| t.deadline.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match commands.recv_timeout(timeout) {
                Ok(Command::Subscribe {
                    device,
                    sid,
                    header,
                }) => {
                    let now = self.now();
                    let fx = self
                        .host
                        .on_subscribe(DeviceId(device), StreamId(sid), header, now);
                    self.run_effects(fx);
                }
                Ok(Command::Mutation { gql }) => {
                    let now = self.now();
                    if let Ok(outcome) = self.was.execute_mutation(&gql, now.as_millis()) {
                        for event in outcome.events {
                            let fanout = self.pylon.publish(&event.topic, event.id);
                            for host in fanout.fast_forwards.into_iter().chain(fanout.late_forwards)
                            {
                                if host == self.host.host_id() {
                                    let now = self.now();
                                    let fx = self.host.on_pylon_event(&event, now);
                                    self.run_effects(fx);
                                }
                            }
                        }
                    }
                }
                Ok(Command::Shutdown) => return,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            // Fire due timers.
            while self
                .timers
                .peek()
                .is_some_and(|t| t.deadline <= Instant::now())
            {
                let t = self.timers.pop().expect("peeked entry exists");
                let now = self.now();
                let fx = self.host.on_timer(&t.app, t.token, now);
                self.run_effects(fx);
            }
        }
    }
}

impl RtSystem {
    /// Starts a backend thread with an empty WAS/TAO and one BRASS host.
    ///
    /// `setup` runs against the WAS before the thread starts (create
    /// videos, users, friendships) and returns a value handed back to the
    /// caller (e.g. created ids).
    pub fn start<T>(setup: impl FnOnce(&mut WebApplicationServer) -> T) -> (RtSystem, T) {
        let mut was = WebApplicationServer::new(Tao::new(TaoConfig::small()));
        let fixture = setup(&mut was);
        let mut host = BrassHost::new(HostConfig::small(0));
        host.register_standard_apps();
        let backend = Backend {
            was,
            pylon: PylonCluster::new(PylonConfig::small()),
            host,
            timers: BinaryHeap::new(),
            epoch: Instant::now(),
            deliveries: {
                let (tx, _rx) = bounded(0);
                tx // replaced below
            },
        };
        let (cmd_tx, cmd_rx) = bounded::<Command>(1_024);
        let (del_tx, del_rx) = bounded::<Delivery>(1_024);
        let mut backend = backend;
        backend.deliveries = del_tx;
        let thread = std::thread::spawn(move || backend.run(cmd_rx));
        (
            RtSystem {
                commands: cmd_tx,
                deliveries: del_rx,
                thread: Some(thread),
            },
            fixture,
        )
    }

    /// Opens a LiveVideoComments stream for a device.
    pub fn subscribe_lvc(&self, device: u64, sid: u64, video: u64) {
        let header = Json::obj([
            ("viewer", Json::from(device)),
            (
                "gql",
                Json::from(format!(
                    "subscription {{ liveVideoComments(videoId: {video}) }}"
                )),
            ),
        ]);
        let _ = self.commands.send(Command::Subscribe {
            device,
            sid,
            header,
        });
    }

    /// Posts a comment.
    pub fn post_comment(&self, author: u64, video: u64, text: &str) {
        let gql = format!(
            r#"mutation {{ postComment(videoId: {video}, authorId: {author}, text: "{text}") {{ id }} }}"#
        );
        let _ = self.commands.send(Command::Mutation { gql });
    }

    /// Waits for the next delivery, up to `timeout`.
    pub fn recv_delivery(&self, timeout: Duration) -> Option<Delivery> {
        self.deliveries.recv_timeout(timeout).ok()
    }
}

impl Drop for RtSystem {
    fn drop(&mut self) {
        let _ = self.commands.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_comment_delivery() {
        let (rt, (video, alice, _bob)) = RtSystem::start(|was| {
            let video = was.create_video("rt");
            let alice = was.create_user("alice", "en");
            let bob = was.create_user("bob", "en");
            (video, alice, bob)
        });
        // Bob (device 2) watches; Alice posts.
        rt.subscribe_lvc(2, 1, video);
        // Give the subscribe a moment to register with Pylon.
        std::thread::sleep(Duration::from_millis(50));
        rt.post_comment(alice, video, "hello from the wall clock world");
        // The LVC push timer runs at 2 s cadence; wait out one period.
        let delivery = rt.recv_delivery(Duration::from_secs(10));
        let delivery = delivery.expect("delivery within the timer period");
        assert_eq!(delivery.device, 2);
        let text = String::from_utf8(delivery.payload.to_vec()).unwrap();
        assert!(text.contains("wall clock"), "{text}");
    }
}
