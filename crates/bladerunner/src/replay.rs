//! Deterministic snapshot files and divergence-bisecting replay.
//!
//! Two halves:
//!
//! * File helpers around [`SystemSim::snapshot`] / [`SystemSim::resume`]:
//!   a snapshot is a sealed, versioned, checksummed byte container
//!   ([`simkit::snap::seal`]); loading is fail-closed end to end — a
//!   truncated or corrupted file yields a clean error, never a partial
//!   world.
//!
//! * The bisect engine: given two run recipes that *should* agree (the
//!   same config at different worker counts, or two deliberately
//!   different configs), it runs both with per-tick fingerprints and
//!   periodic snapshots, binary-searches the fingerprint series for the
//!   first diverging metrics tick, resumes each side from the nearest
//!   common snapshot before it, replays the one diverging tick under a
//!   per-event log, and reports the first event where the executions
//!   part ways — `(time, shard, seq)`, both renderings, and both trace
//!   ledgers' neighborhoods. Replay cost is O(one tick) after an
//!   O(log ticks) search instead of O(whole run) squinting.
//!
//! The engine requires runs whose workload is fully scheduled before
//! `run_until` (the chaos and flash-crowd benches, the canned bisect
//! scenario). Lazily-pumped drivers (the scale bench) resume fine — their
//! cursors ride in the snapshot's driver blob — but bisecting them would
//! need the driver replayed too, which the engine does not do.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use simkit::snap::SnapResult;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::HopRecord;

use crate::config::SystemConfig;
use crate::sim::SystemSim;

/// Writes a sealed snapshot to disk.
pub fn save_snapshot(path: &Path, sealed: &[u8]) -> io::Result<()> {
    std::fs::write(path, sealed)
}

/// Reads a sealed snapshot from disk. Validation (magic, version,
/// checksum, and every structural invariant) happens in
/// [`SystemSim::resume`]; this is just the IO.
pub fn load_snapshot(path: &Path) -> io::Result<Vec<u8>> {
    std::fs::read(path)
}

/// Convenience: load + resume in one fail-closed step.
pub fn resume_from_file(config: SystemConfig, path: &Path) -> SnapResult<SystemSim> {
    let bytes = load_snapshot(path).map_err(|e| {
        simkit::snap::SnapError::Invalid(format!("reading {}: {e}", path.display()))
    })?;
    SystemSim::resume(config, &bytes)
}

/// One side of a bisection: how to build (and rebuild) the run.
///
/// `build` must be deterministic — called once for the recorded run and
/// possibly again for the replay — and must fully schedule its workload
/// before returning (the engine only calls `run_until` afterwards).
pub struct RunSpec<'a> {
    /// Label used in the report ("workers=4", "config B", …).
    pub label: String,
    /// The exact config `build` uses (needed to resume snapshots).
    pub config: SystemConfig,
    /// Builds the fully-loaded simulation at time zero.
    pub build: Box<dyn Fn() -> SystemSim + 'a>,
}

/// The first event at which two executions part ways.
#[derive(Debug)]
pub struct DivergingEvent {
    /// When the event executed.
    pub time: SimTime,
    /// The shard that executed it.
    pub src_shard: usize,
    /// Its position in that shard's pop order within the replayed span.
    pub seq: usize,
    /// The event as run A executed it (`None`: A had no event here).
    pub a: Option<String>,
    /// The event as run B executed it (`None`: B had no event here).
    pub b: Option<String>,
}

/// What a bisection found.
#[derive(Debug)]
pub struct BisectReport {
    /// Whether the runs diverged at all.
    pub diverged: bool,
    /// Label of run A / run B (echoed from the specs).
    pub labels: (String, String),
    /// The first metrics tick whose fingerprints disagree.
    pub first_diverging_tick: Option<SimTime>,
    /// Fingerprint probes the binary search spent.
    pub probes: u32,
    /// The snapshot instant both replays resumed from (`None`: replayed
    /// from a fresh build — the runs diverged before the first snapshot).
    pub resumed_from: Option<SimTime>,
    /// The first diverging event, if the per-event diff found one.
    pub event: Option<DivergingEvent>,
    /// Tail of run A's trace ledger around the divergence, newest last.
    pub ledger_a: Vec<String>,
    /// Tail of run B's trace ledger around the divergence, newest last.
    pub ledger_b: Vec<String>,
}

impl BisectReport {
    /// Human-readable rendering (what `bench --bin bisect` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let (a, b) = &self.labels;
        if !self.diverged {
            let _ = writeln!(out, "runs {a:?} and {b:?} agree at every metrics tick");
            return out;
        }
        let _ = writeln!(out, "runs {a:?} and {b:?} DIVERGE");
        if let Some(t) = self.first_diverging_tick {
            let _ = writeln!(
                out,
                "first diverging fingerprint tick: t={}µs ({} probes)",
                t.as_micros(),
                self.probes
            );
        }
        match self.resumed_from {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "replayed from common snapshot at t={}µs",
                    s.as_micros()
                );
            }
            None => {
                let _ = writeln!(out, "replayed from t=0 (diverged before any snapshot)");
            }
        }
        match &self.event {
            Some(ev) => {
                let _ = writeln!(
                    out,
                    "first diverging event: time={}µs src_shard={} seq={}",
                    ev.time.as_micros(),
                    ev.src_shard,
                    ev.seq
                );
                let _ = writeln!(out, "  {a}: {}", ev.a.as_deref().unwrap_or("<no event>"));
                let _ = writeln!(out, "  {b}: {}", ev.b.as_deref().unwrap_or("<no event>"));
            }
            None => {
                let _ = writeln!(
                    out,
                    "event streams agree over the replayed tick; divergence is in \
                     aggregate state only (fingerprint components)"
                );
            }
        }
        for (label, tail) in [(a, &self.ledger_a), (b, &self.ledger_b)] {
            let _ = writeln!(out, "ledger neighborhood, run {label:?}:");
            if tail.is_empty() {
                let _ = writeln!(out, "  <empty>");
            }
            for line in tail {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

/// One recorded run: its fingerprint series and retained snapshots.
struct Recorded {
    fps: Vec<(SimTime, u64)>,
    snapshots: Vec<(SimTime, Vec<u8>)>,
}

fn record_run(spec: &RunSpec<'_>, end: SimTime, snapshot_every: u64) -> Recorded {
    let mut sim = (spec.build)();
    sim.set_snapshot_policy(snapshot_every, true, None);
    sim.run_until(end);
    Recorded {
        fps: sim.tick_fingerprints().to_vec(),
        snapshots: sim
            .snapshots()
            .iter()
            .map(|(t, b)| (*t, b.clone()))
            .collect(),
    }
}

/// The last ledger records at or before `cutoff` (newest last), rendered.
fn ledger_tail(sim: &SystemSim, cutoff: SimTime, n: usize) -> Vec<String> {
    let ledger = sim.trace_ledger();
    let render = |r: &HopRecord| format!("{r}");
    let mut tail: Vec<String> = ledger
        .records()
        .iter()
        .chain(ledger.recent_records())
        .filter(|r| r.at <= cutoff)
        .map(render)
        .collect();
    let cut = tail.len().saturating_sub(n);
    tail.drain(..cut);
    tail
}

/// Bisects two runs down to their first diverging event.
///
/// Both runs execute to `end` with per-tick fingerprints and a snapshot
/// every `snapshot_every` metrics ticks. If the fingerprint series agree
/// (and are the same length), the report says so and stops. Otherwise the
/// engine binary-searches the series for the first diverging tick,
/// resumes both sides from the latest snapshot both runs took before
/// that tick (or rebuilds from scratch if none), replays up to the
/// diverging tick with the per-event log on, and diffs the logs.
pub fn bisect(a: &RunSpec<'_>, b: &RunSpec<'_>, end: SimTime, snapshot_every: u64) -> BisectReport {
    let ra = record_run(a, end, snapshot_every);
    let rb = record_run(b, end, snapshot_every);
    let labels = (a.label.clone(), b.label.clone());

    let n = ra.fps.len().min(rb.fps.len());
    // The fingerprints fold the ledger's rolling hash, so they are
    // cumulative: equal-at-i implies equal-at-all-earlier-i. That makes
    // "first diverging tick" binary-searchable.
    let mut lo = 0usize;
    let mut hi = n;
    let mut probes = 0u32;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if ra.fps[mid] == rb.fps[mid] {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let first_diff = if lo < n {
        Some(lo)
    } else if ra.fps.len() != rb.fps.len() {
        // One run ticked longer than the other: diverged right after the
        // common prefix.
        Some(n)
    } else {
        None
    };
    let Some(idx) = first_diff else {
        return BisectReport {
            diverged: false,
            labels,
            first_diverging_tick: None,
            probes,
            resumed_from: None,
            event: None,
            ledger_a: Vec::new(),
            ledger_b: Vec::new(),
        };
    };
    let tick_at = |r: &Recorded| r.fps.get(idx).map(|(t, _)| *t);
    let diverge_tick = tick_at(&ra).or(tick_at(&rb)).unwrap_or(end);

    // Latest snapshot strictly before the diverging tick that *both* runs
    // captured. Snapshots are taken at tick barriers, so any snapshot at
    // an agreed tick captures agreed... states for identical configs; for
    // deliberately different configs each side resumes its own bytes.
    let common = ra
        .snapshots
        .iter()
        .rev()
        .find(|(t, _)| *t < diverge_tick && rb.snapshots.iter().any(|(u, _)| u == t))
        .map(|(t, _)| *t);

    let replay = |spec: &RunSpec<'_>, rec: &Recorded| -> (Vec<Vec<(SimTime, String)>>, SystemSim) {
        let mut sim = match common {
            Some(s) => {
                let bytes = &rec.snapshots.iter().find(|(t, _)| *t == s).unwrap().1;
                SystemSim::resume(spec.config.clone(), bytes)
                    .expect("re-reading a snapshot this process just wrote")
            }
            None => (spec.build)(),
        };
        sim.set_event_log(true);
        // Running to the diverging tick covers exactly the span whose
        // fingerprint went wrong: the tick at T folds every event in
        // (previous tick, T].
        sim.run_until(diverge_tick);
        (sim.take_event_logs(), sim)
    };
    let (logs_a, sim_a) = replay(a, &ra);
    let (logs_b, sim_b) = replay(b, &rb);

    // First differing log entry across shards, by (time, shard, index).
    let mut event: Option<DivergingEvent> = None;
    let shards = logs_a.len().max(logs_b.len());
    static EMPTY: Vec<(SimTime, String)> = Vec::new();
    for shard in 0..shards {
        let la = logs_a.get(shard).unwrap_or(&EMPTY);
        let lb = logs_b.get(shard).unwrap_or(&EMPTY);
        let len = la.len().max(lb.len());
        for i in 0..len {
            let ea = la.get(i);
            let eb = lb.get(i);
            if ea == eb {
                continue;
            }
            let time = ea.or(eb).map(|(t, _)| *t).unwrap_or(diverge_tick);
            let better = match &event {
                None => true,
                Some(cur) => (time, shard, i) < (cur.time, cur.src_shard, cur.seq),
            };
            if better {
                event = Some(DivergingEvent {
                    time,
                    src_shard: shard,
                    seq: i,
                    a: ea.map(|(t, s)| format!("t={}µs {s}", t.as_micros())),
                    b: eb.map(|(t, s)| format!("t={}µs {s}", t.as_micros())),
                });
            }
            break;
        }
    }

    const NEIGHBORHOOD: usize = 12;
    BisectReport {
        diverged: true,
        labels,
        first_diverging_tick: Some(diverge_tick),
        probes,
        resumed_from: common,
        event,
        ledger_a: ledger_tail(&sim_a, diverge_tick, NEIGHBORHOOD),
        ledger_b: ledger_tail(&sim_b, diverge_tick, NEIGHBORHOOD),
    }
}

/// A tiny canned scenario shared by the bisect self-test and the bench
/// bin: a handful of users watching one live video with steady comments,
/// fully scheduled up front so replays need no driver. Returns the sim
/// plus the video id and device ids so callers can schedule extra events
/// against the same objects.
pub fn canned_scenario(
    config: &SystemConfig,
    seed: u64,
    horizon: SimTime,
) -> (SystemSim, u64, Vec<u64>) {
    let mut sim = SystemSim::new(config.clone(), seed);
    let video = sim.was_mut().create_video("bisect-fixture");
    let users: Vec<u64> = (0..24)
        .map(|i| sim.create_user_device(&format!("user{i}"), if i % 3 == 0 { "es" } else { "en" }))
        .collect();
    for (i, &u) in users.iter().enumerate() {
        sim.subscribe_lvc(SimTime::from_millis(10 + i as u64 * 7), u, video);
    }
    let mut t = SimTime::from_millis(500);
    let mut i = 0usize;
    while t < horizon {
        let author = users[i % users.len()];
        sim.post_comment(t, author, video, "deterministic chatter");
        t += SimDuration::from_millis(740);
        i += 1;
    }
    (sim, video, users)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> SystemConfig {
        let mut config = SystemConfig::small();
        config.metrics_interval = SimDuration::from_secs(1);
        config.metrics_horizon = SimDuration::from_secs(60);
        config
    }

    #[test]
    fn identical_runs_do_not_diverge() {
        let config = test_config();
        let horizon = SimTime::from_secs(10);
        let spec = |label: &str| RunSpec {
            label: label.to_string(),
            config: config.clone(),
            build: Box::new(move || canned_scenario(&test_config(), 7, horizon).0),
        };
        let report = bisect(&spec("a"), &spec("b"), horizon, 3);
        assert!(!report.diverged, "{}", report.render());
        assert!(report.first_diverging_tick.is_none());
        assert!(report.event.is_none());
    }

    #[test]
    fn seeded_extra_event_is_found_and_attributed() {
        let config = test_config();
        let horizon = SimTime::from_secs(20);
        let base = RunSpec {
            label: "base".to_string(),
            config: config.clone(),
            build: Box::new(move || canned_scenario(&test_config(), 7, horizon).0),
        };
        // Same build plus one extra comment late in the run: the runs agree
        // for ~14 s, then part ways. Scheduling draws no RNG, so the common
        // prefix is untouched.
        let extra_at = SimTime::from_millis(14_300);
        let tweaked = RunSpec {
            label: "tweaked".to_string(),
            config: config.clone(),
            build: Box::new(move || {
                let (mut sim, video, users) = canned_scenario(&test_config(), 7, horizon);
                sim.post_comment(extra_at, users[3], video, "the divergence");
                sim
            }),
        };
        let report = bisect(&base, &tweaked, horizon, 4);
        assert!(report.diverged, "{}", report.render());
        let tick = report.first_diverging_tick.expect("diverging tick");
        assert!(
            tick >= SimTime::from_secs(14) && tick <= SimTime::from_secs(16),
            "diverging tick {tick:?} should bracket the extra event"
        );
        // The runs agree for 14+ ticks with snapshots every 4, so the replay
        // must start from a common snapshot, not from scratch.
        let resumed = report.resumed_from.expect("common snapshot");
        assert!(resumed < tick);
        let ev = report.event.as_ref().expect("diverging event identified");
        assert!(
            ev.time <= tick && ev.time >= resumed,
            "event time {:?} inside replayed span",
            ev.time
        );
        assert_ne!(ev.a, ev.b);
        // Render shouldn't panic and should carry the labels.
        let text = report.render();
        assert!(text.contains("base") && text.contains("tweaked"), "{text}");
    }

    #[test]
    fn different_seeds_diverge_from_scratch() {
        let config = test_config();
        let horizon = SimTime::from_secs(6);
        let mk = |label: &str, seed: u64| RunSpec {
            label: label.to_string(),
            config: config.clone(),
            build: Box::new(move || canned_scenario(&test_config(), seed, horizon).0),
        };
        let report = bisect(&mk("s7", 7), &mk("s8", 8), horizon, 3);
        assert!(report.diverged, "{}", report.render());
        // Different seeds diverge from the very first tick — before any
        // snapshot — so the replay falls back to a fresh build.
        assert!(report.resumed_from.is_none(), "{}", report.render());
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let config = test_config();
        let horizon = SimTime::from_secs(5);
        let (mut sim, _, _) = canned_scenario(&config, 11, horizon);
        sim.run_until(SimTime::from_secs(3));
        let sealed = sim.snapshot();
        let dir = std::env::temp_dir().join("bladerunner-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.brsnap");
        save_snapshot(&path, &sealed).unwrap();
        let resumed = resume_from_file(config, &path).unwrap();
        assert_eq!(resumed.now(), sim.now());
        assert_eq!(resumed.fingerprint_now(), sim.fingerprint_now());
        std::fs::remove_file(&path).ok();
    }
}
