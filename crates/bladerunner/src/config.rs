//! System configuration.

use edge::proxy::RouteStrategy;
use pylon::PylonConfig;
use simkit::time::SimDuration;
use simkit::trace::Retention;
use tao::TaoConfig;

/// Connectivity class of a device's last mile, driving latency and drop
/// behaviour ("many parts of the world still operate with older mobile
/// communication infrastructure", §1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkClass {
    /// Fast, reliable links (fibre/5G, North America & Europe medians).
    Fast,
    /// Typical mobile links.
    Mobile,
    /// Constrained 2G-era links with frequent disconnects.
    Slow,
}

impl LinkClass {
    /// Snapshot tag for the class.
    pub fn snap_tag(self) -> u8 {
        match self {
            LinkClass::Fast => 0,
            LinkClass::Mobile => 1,
            LinkClass::Slow => 2,
        }
    }

    /// Decodes a snapshot tag.
    pub fn from_snap_tag(tag: u8) -> Option<LinkClass> {
        Some(match tag {
            0 => LinkClass::Fast,
            1 => LinkClass::Mobile,
            2 => LinkClass::Slow,
            _ => return None,
        })
    }
}

/// Top-level configuration for a [`SystemSim`](crate::sim::SystemSim).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// TAO store shape.
    pub tao: TaoConfig,
    /// Pylon cluster shape.
    pub pylon: PylonConfig,
    /// Number of BRASS hosts.
    pub brass_hosts: u32,
    /// Number of reverse proxies.
    pub proxies: u32,
    /// Number of POPs.
    pub pops: u32,
    /// How reverse proxies route fresh subscribes to BRASS hosts: by load
    /// (high-fanout apps) or by topic (low-fanout apps, curtailing Pylon's
    /// subscription footprint; §3.2).
    pub route_strategy: RouteStrategy,
    /// Link-class mix as (class, probability) pairs.
    pub link_mix: Vec<(LinkClass, f64)>,
    /// Probability that any individual last-mile frame is lost.
    pub last_mile_drop: f64,
    /// Base delay before a dropped device reconnects. Repeated drops back
    /// off exponentially (capped, with deterministic jitter) to tame
    /// thundering-herd reconnect storms.
    pub reconnect_delay: SimDuration,
    /// Interval between heartbeat ticks (proxy→BRASS pings, and POP→device
    /// pings when [`Self::device_heartbeats`] is on). §4 footnote 11.
    pub heartbeat_interval: SimDuration,
    /// Unanswered pings before a proxy declares a BRASS host dead.
    pub heartbeat_misses: u32,
    /// Whether POPs ping devices to detect silent (unannounced) drops.
    /// Costs one ping/pong round-trip per device per interval, so the
    /// scale bench turns it off.
    pub device_heartbeats: bool,
    /// Trace-ledger retention: `Full` keeps every hop record (what
    /// `trace-dump` wants); `Bounded` folds accounting into histograms and
    /// keeps only a ring of recent records, bounding peak RSS at bench
    /// scale.
    pub trace_retention: Retention,
    /// Maximum concurrent streams per device ("each mobile app up to 20",
    /// §5); the oldest stream is cancelled to make room.
    pub max_streams_per_device: usize,
    /// Metrics bucketing interval (the paper uses 15-minute buckets).
    pub metrics_interval: SimDuration,
    /// Metrics horizon (how much simulated time the series cover).
    pub metrics_horizon: SimDuration,
    /// Per-update service time (µs) at a BRASS host's ingress: the
    /// overload model. Events arriving faster than one per `brass_service_us`
    /// queue behind the host's backlog; downstream effects (and heartbeat
    /// pongs) are delayed by the backlog. `0` disables the model (hosts
    /// are infinitely fast), which is the pre-overload-PR behaviour.
    pub brass_service_us: u64,
    /// Maximum backlog depth (in queued events) at a BRASS host's ingress
    /// mailbox before arriving updates are shed with a `mailbox_overflow`
    /// drop. `0` means unbounded (no shedding — backlog, and therefore
    /// latency, can grow without limit). Only meaningful with
    /// [`Self::brass_service_us`] > 0.
    pub brass_mailbox_capacity: u64,
    /// Per-device BURST egress flow-control window in bytes: data frames
    /// beyond this many bytes in flight on the last mile are shed with a
    /// `flow_control` drop and the device is signalled
    /// `FlowStatus::Degraded` (then `Recovered` once the backlog drains
    /// past half the window). `0` disables egress flow control.
    pub egress_window_bytes: u64,
    /// Number of logical event-loop shards the simulator partitions state
    /// into. Fixed per configuration (not per run): results are a pure
    /// function of `(config, seed)` regardless of how many worker threads
    /// execute the shards, so this is part of the experiment definition
    /// while the worker count is a free performance knob.
    pub logical_shards: usize,
    /// Whether quiescent connected devices are parked into their compact
    /// frozen form between events (rehydrated on the next event that
    /// touches them). Purely a memory knob: parking and rehydrating are
    /// pure data transforms, so metrics and the trace ledger are
    /// bit-identical either way (pinned by the hibernation equivalence
    /// test).
    pub hibernation: bool,
}

impl SystemConfig {
    /// A small system for unit tests, doctests and examples.
    pub fn small() -> Self {
        SystemConfig {
            tao: TaoConfig::small(),
            pylon: PylonConfig::small(),
            brass_hosts: 4,
            proxies: 2,
            pops: 2,
            route_strategy: RouteStrategy::ByLoad,
            link_mix: vec![
                (LinkClass::Fast, 0.5),
                (LinkClass::Mobile, 0.4),
                (LinkClass::Slow, 0.1),
            ],
            last_mile_drop: 0.0,
            reconnect_delay: SimDuration::from_secs(2),
            heartbeat_interval: SimDuration::from_secs(5),
            heartbeat_misses: 3,
            device_heartbeats: true,
            trace_retention: Retention::Full,
            max_streams_per_device: 20,
            metrics_interval: SimDuration::from_mins(15),
            metrics_horizon: SimDuration::from_hours(24),
            brass_service_us: 0,
            brass_mailbox_capacity: 0,
            egress_window_bytes: 0,
            logical_shards: 4,
            hibernation: true,
        }
    }

    /// A medium system for experiment harnesses.
    pub fn medium() -> Self {
        SystemConfig {
            tao: TaoConfig {
                shards: 64,
                regions: 3,
                cache_capacity: 65_536,
            },
            pylon: PylonConfig {
                topic_shards: 16_384,
                servers: 32,
                kv_nodes: 12,
                replicas: 3,
            },
            brass_hosts: 16,
            proxies: 4,
            pops: 4,
            route_strategy: RouteStrategy::ByLoad,
            link_mix: vec![
                (LinkClass::Fast, 0.35),
                (LinkClass::Mobile, 0.45),
                (LinkClass::Slow, 0.2),
            ],
            last_mile_drop: 0.002,
            reconnect_delay: SimDuration::from_secs(3),
            heartbeat_interval: SimDuration::from_secs(5),
            heartbeat_misses: 3,
            device_heartbeats: false,
            trace_retention: Retention::Bounded(4_096),
            max_streams_per_device: 20,
            metrics_interval: SimDuration::from_mins(15),
            metrics_horizon: SimDuration::from_hours(24),
            brass_service_us: 0,
            brass_mailbox_capacity: 0,
            egress_window_bytes: 0,
            logical_shards: 8,
            hibernation: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_wellformed() {
        for config in [SystemConfig::small(), SystemConfig::medium()] {
            assert!(config.brass_hosts > 0);
            assert!(config.proxies > 0);
            assert!(config.pops > 0);
            let total: f64 = config.link_mix.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "link mix sums to 1");
            assert!(!config.metrics_interval.is_zero());
            assert!(!config.heartbeat_interval.is_zero());
            assert!(config.heartbeat_misses > 0);
            assert!(config.logical_shards > 0);
        }
    }
}
