//! Canned workload drivers shared by examples and experiment harnesses.

use simkit::dist::{Distribution, Exponential};
use simkit::time::{SimDuration, SimTime};
use workload::activity::DiurnalCurve;
use workload::graph::SocialGraph;
use workload::tables::StreamLifetimeModel;

use crate::sim::SystemSim;

/// A live-video audience: one video, registered viewers and posters.
pub struct LiveVideo {
    /// The TAO video id.
    pub video: u64,
    /// Device ids of the audience (subscribed viewers).
    pub viewers: Vec<u64>,
    /// Device ids of commenting users.
    pub posters: Vec<u64>,
}

impl LiveVideo {
    /// Creates a video with `viewers` subscribed viewers and `posters`
    /// commenting users, subscribing everyone at `start`.
    pub fn setup(sim: &mut SystemSim, viewers: usize, posters: usize, start: SimTime) -> LiveVideo {
        let video = sim.was_mut().create_video("live");
        let viewer_ids: Vec<u64> = (0..viewers)
            .map(|i| sim.create_user_device(&format!("viewer{i}"), "en"))
            .collect();
        let poster_ids: Vec<u64> = (0..posters)
            .map(|i| sim.create_user_device(&format!("poster{i}"), "en"))
            .collect();
        for &v in &viewer_ids {
            sim.subscribe_lvc(start, v, video);
        }
        LiveVideo {
            video,
            viewers: viewer_ids,
            posters: poster_ids,
        }
    }

    /// Schedules Poisson comment arrivals at `rate_per_sec` over
    /// `[from, from + duration)`, cycling through the posters.
    ///
    /// Returns the number of comments scheduled.
    pub fn drive_comments(
        &self,
        sim: &mut SystemSim,
        from: SimTime,
        duration: SimDuration,
        rate_per_sec: f64,
    ) -> usize {
        let gap = Exponential::new(rate_per_sec);
        let mut t = from;
        let mut n = 0usize;
        loop {
            let step = SimDuration::from_secs_f64(gap.sample(sim.rng_mut()));
            t += step;
            if t.saturating_since(from) >= duration {
                return n;
            }
            let poster = self.posters[n % self.posters.len()];
            let texts = [
                "what a moment for everyone watching this",
                "greetings from the other side of the world",
                "that replay deserves a second look honestly",
                "cannot believe what we are seeing right now",
                "this broadcast keeps getting better and better",
            ];
            let text = texts[n % texts.len()];
            sim.post_comment(t, poster, self.video, text);
            n += 1;
        }
    }
}

/// A flash-crowd overload driver: a celebrity goes live and the audience
/// piles onto ONE topic. Three stressors compose, each schedulable on its
/// own timeline:
///
/// 1. **subscribe surge** — every viewer subscribes to the same video's
///    comment stream inside a short ramp window ([`FlashCrowd::setup`]);
/// 2. **viral-comment hot key** — a Poisson comment storm on that video
///    at a configurable offered rate, each comment fanning to the whole
///    audience ([`FlashCrowd::drive_storm`]);
/// 3. **reconnect storm** — a regional outage (proxy dark, or a slice of
///    devices vanishing) that slams the herd back through resubscribes
///    ([`FlashCrowd::regional_outage`], [`FlashCrowd::reconnect_storm`]).
pub struct FlashCrowd {
    /// The TAO video id everyone is watching.
    pub video: u64,
    /// Device ids of the subscribed audience.
    pub viewers: Vec<u64>,
    /// Device ids of commenting users.
    pub posters: Vec<u64>,
}

impl FlashCrowd {
    /// Creates the crowd: `viewers` devices all subscribing to one fresh
    /// video's comment stream, evenly spread over `[start, start + ramp)`
    /// — the celebrity-goes-live surge. `ramp == ZERO` is the worst case:
    /// the entire audience subscribes in the same instant.
    pub fn setup(
        sim: &mut SystemSim,
        viewers: usize,
        posters: usize,
        start: SimTime,
        ramp: SimDuration,
    ) -> FlashCrowd {
        let video = sim.was_mut().create_video("celebrity-live");
        let viewer_ids: Vec<u64> = (0..viewers)
            .map(|i| sim.create_user_device(&format!("crowd{i}"), "en"))
            .collect();
        let poster_ids: Vec<u64> = (0..posters)
            .map(|i| sim.create_user_device(&format!("hotposter{i}"), "en"))
            .collect();
        let n = viewer_ids.len().max(1) as u64;
        for (i, &v) in viewer_ids.iter().enumerate() {
            let offset = SimDuration::from_micros(ramp.as_micros().saturating_mul(i as u64) / n);
            sim.subscribe_lvc(start + offset, v, video);
        }
        FlashCrowd {
            video,
            viewers: viewer_ids,
            posters: poster_ids,
        }
    }

    /// Schedules the viral-comment storm: Poisson arrivals on the hot
    /// video at `rate_per_sec` over `[from, from + duration)`, cycling
    /// through the posters. Every comment fans out to the whole audience,
    /// so the *delivered* offered load is `rate × viewers`.
    ///
    /// Returns the number of comments scheduled.
    pub fn drive_storm(
        &self,
        sim: &mut SystemSim,
        from: SimTime,
        duration: SimDuration,
        rate_per_sec: f64,
    ) -> usize {
        let gap = Exponential::new(rate_per_sec);
        let mut t = from;
        let mut n = 0usize;
        loop {
            let step = SimDuration::from_secs_f64(gap.sample(sim.rng_mut()));
            t += step;
            if t.saturating_since(from) >= duration {
                return n;
            }
            let poster = self.posters[n % self.posters.len()];
            sim.post_comment(t, poster, self.video, "the whole internet is watching this");
            n += 1;
        }
    }

    /// Schedules a regional POP outage: the proxy goes dark at `at` and
    /// comes back after `down`. POPs repair the orphaned streams onto
    /// surviving proxies — under flash-crowd load, the repair burst lands
    /// on top of the comment storm.
    pub fn regional_outage(
        &self,
        sim: &mut SystemSim,
        at: SimTime,
        proxy: usize,
        down: SimDuration,
    ) {
        sim.schedule_proxy_outage(at, proxy, down);
    }

    /// Schedules a reconnect storm: every `stride`-th viewer's link dies
    /// silently, spread over `[at, at + ramp)`. Each victim reconnects on
    /// the normal backoff schedule and re-subscribes — the thundering
    /// herd arriving while the system is already hot.
    ///
    /// Returns the number of devices vanished.
    pub fn reconnect_storm(
        &self,
        sim: &mut SystemSim,
        at: SimTime,
        ramp: SimDuration,
        stride: usize,
    ) -> usize {
        let victims: Vec<u64> = self
            .viewers
            .iter()
            .copied()
            .step_by(stride.max(1))
            .collect();
        let n = victims.len().max(1) as u64;
        for (i, device) in victims.iter().enumerate() {
            let offset = SimDuration::from_micros(ramp.as_micros().saturating_mul(i as u64) / n);
            sim.schedule_device_vanish(at + offset, *device);
        }
        victims.len()
    }
}

/// A 24-hour diurnal population driver: devices open and close streams with
/// Table-2 lifetimes at Fig. 8 subscription rates, post mutations at Fig. 8
/// publication rates, and refresh online status.
pub struct DiurnalDay {
    /// The generated population (users double as devices).
    pub device_ids: Vec<u64>,
    /// TAO video ids (from the population's videos).
    pub video_ids: Vec<u64>,
    /// TAO thread ids.
    pub thread_ids: Vec<u64>,
}

impl DiurnalDay {
    /// Registers a population into the simulation and schedules a full day
    /// of activity scaled by `activity_scale` (1.0 = the paper's per-user
    /// rates; smaller keeps runs fast).
    pub fn setup(sim: &mut SystemSim, graph: &SocialGraph, activity_scale: f64) -> DiurnalDay {
        // Users.
        let device_ids: Vec<u64> = graph
            .users
            .iter()
            .map(|u| sim.create_user_device(&u.name, &u.lang))
            .collect();
        for u in &graph.users {
            if u.verified {
                sim.was_mut().set_verified(device_ids[u.index]);
            }
            for &f in &u.friends {
                if f > u.index {
                    sim.was_mut()
                        .add_friend(device_ids[u.index], device_ids[f], 0);
                }
            }
            for &b in &u.blocked {
                sim.was_mut().block(device_ids[u.index], device_ids[b], 0);
            }
        }
        // Videos and threads.
        let video_ids: Vec<u64> = graph
            .videos
            .iter()
            .map(|v| sim.was_mut().create_video(&v.title))
            .collect();
        let thread_ids: Vec<u64> = graph
            .threads
            .iter()
            .map(|t| {
                let members: Vec<u64> = t.members.iter().map(|&m| device_ids[m]).collect();
                sim.was_mut().create_thread(&members)
            })
            .collect();

        let day = DiurnalDay {
            device_ids,
            video_ids,
            thread_ids,
        };
        day.schedule_day(sim, graph, activity_scale);
        day
    }

    fn schedule_day(&self, sim: &mut SystemSim, graph: &SocialGraph, scale: f64) {
        let users = self.device_ids.len() as f64;
        let sub_curve = DiurnalCurve::subscriptions_per_min();
        let pub_curve = DiurnalCurve::publications_per_min();
        let lifetimes = StreamLifetimeModel::new();
        let horizon = SimDuration::from_hours(24);
        let step = SimDuration::from_mins(1);
        let mut t = SimTime::ZERO;
        while t.saturating_since(SimTime::ZERO) < horizon {
            // Subscriptions this minute (Fig. 8: 0.5–0.75/min/user).
            let subs = {
                let mean = sub_curve.value_at(t) * users * scale;
                simkit::dist::Poisson::new(mean.max(1e-9)).sample_count(sim.rng_mut())
            };
            for _ in 0..subs {
                let offset = SimDuration::from_micros(sim.rng_mut().below(60_000_000));
                let at = t + offset;
                let device_idx = sim.rng_mut().index(self.device_ids.len());
                let device = self.device_ids[device_idx];
                let lifetime = lifetimes.sample(sim.rng_mut());
                self.open_random_stream(sim, graph, device, device_idx, at, lifetime);
            }
            // Mutations this minute (Fig. 8 publications: 0.8–1.5/min/user).
            let muts = {
                let mean = pub_curve.value_at(t) * users * scale;
                simkit::dist::Poisson::new(mean.max(1e-9)).sample_count(sim.rng_mut())
            };
            for _ in 0..muts {
                let offset = SimDuration::from_micros(sim.rng_mut().below(60_000_000));
                self.post_random_mutation(sim, t + offset);
            }
            t += step;
        }
    }

    fn open_random_stream(
        &self,
        sim: &mut SystemSim,
        graph: &SocialGraph,
        device: u64,
        device_idx: usize,
        at: SimTime,
        lifetime: SimDuration,
    ) {
        // App mix: weighted toward LVC and typing, the highest-churn apps.
        match sim.rng_mut().below(10) {
            0..=2 => {
                // LVC: watch a video, weighted by viewer lists.
                let v = sim.rng_mut().index(self.video_ids.len().max(1));
                sim.subscribe_lvc(at, device, self.video_ids[v]);
            }
            3..=6 => {
                let t = sim.rng_mut().index(self.thread_ids.len().max(1));
                let thread = self.thread_ids[t];
                let other_idx = graph.threads[t]
                    .members
                    .iter()
                    .copied()
                    .find(|&m| m != device_idx)
                    .unwrap_or(0);
                sim.subscribe_typing(at, device, thread, self.device_ids[other_idx]);
            }
            7 => sim.subscribe_active_status(at, device),
            8 => sim.subscribe_stories(at, device),
            _ => sim.subscribe_mailbox(at, device),
        }
        // Streams get sequential sids per device; we cannot know the sid
        // here, so lifetimes are enforced by dropping the device's oldest
        // stream: schedule a cancel sweep instead. The simulation exposes
        // per-sid cancels; the scenario approximates lifetime by cancelling
        // the stream id that this subscribe will allocate. Device stream
        // ids are sequential starting at 1, so we track them.
        let next_sid = self.predict_next_sid(sim, device);
        sim.cancel_stream(at + lifetime, device, burst::frame::StreamId(next_sid));
    }

    fn predict_next_sid(&self, sim: &mut SystemSim, device: u64) -> u64 {
        // Count previously scheduled opens for this device.
        use std::collections::hash_map::Entry;
        match sim.scenario_sid_counters().entry(device) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += 1;
                *e.get()
            }
            Entry::Vacant(e) => {
                e.insert(1);
                1
            }
        }
    }

    fn post_random_mutation(&self, sim: &mut SystemSim, at: SimTime) {
        let device = self.device_ids[sim.rng_mut().index(self.device_ids.len())];
        match sim.rng_mut().below(100) {
            0..=29 => {
                // Comment volume is Zipf-concentrated on a few hot videos
                // (Table 1's Pareto principle): most videos stay quiet.
                let zipf = simkit::dist::Zipf::new(self.video_ids.len().max(1) as u64, 1.3);
                let rank = zipf.sample_rank(sim.rng_mut()) as usize - 1;
                let v = self.video_ids[rank.min(self.video_ids.len() - 1)];
                sim.post_comment(at, device, v, "a perfectly reasonable live comment");
            }
            30..=59 => {
                let t = self.thread_ids[sim.rng_mut().index(self.thread_ids.len().max(1))];
                sim.set_typing(at, device, t, true);
            }
            60..=95 => {
                // Status pings come from the continuously-online cohort
                // (devices refresh every 30 s *while online*): a small,
                // frequently-pinged cohort stays continuously online, so
                // ActiveStatus snapshots barely change between batches.
                let cohort = &self.device_ids[..(self.device_ids.len() / 10).max(1)];
                let d = cohort[sim.rng_mut().index(cohort.len())];
                sim.set_online(at, d)
            }
            96..=97 => sim.create_story(at, device, "fresh-picture"),
            _ => {
                let t = sim.rng_mut().index(self.thread_ids.len().max(1));
                let thread = self.thread_ids[t];
                sim.send_message(at, device, thread, "a short chat message");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    #[test]
    fn live_video_scenario_delivers() {
        let mut sim = SystemSim::new(SystemConfig::small(), 5);
        let lv = LiveVideo::setup(&mut sim, 3, 2, SimTime::ZERO);
        let n = lv.drive_comments(
            &mut sim,
            SimTime::from_secs(5),
            SimDuration::from_secs(20),
            0.5,
        );
        assert!(n > 0, "some comments scheduled");
        sim.run_until(SimTime::from_secs(90));
        assert!(sim.metrics().deliveries.get() > 0);
        assert_eq!(sim.metrics().subscriptions.get(), 3);
    }

    #[test]
    fn flash_crowd_surges_onto_one_topic() {
        let mut sim = SystemSim::new(SystemConfig::small(), 9);
        let fc = FlashCrowd::setup(
            &mut sim,
            8,
            2,
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
        );
        let n = fc.drive_storm(
            &mut sim,
            SimTime::from_secs(5),
            SimDuration::from_secs(10),
            2.0,
        );
        assert!(n > 0, "some storm comments scheduled");
        let vanished = fc.reconnect_storm(
            &mut sim,
            SimTime::from_secs(8),
            SimDuration::from_secs(1),
            4,
        );
        assert_eq!(vanished, 2, "every 4th of 8 viewers");
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.metrics().subscriptions.get(), 8 + vanished as u64);
        assert!(sim.metrics().deliveries.get() > 0);
        let report = sim.convergence_report();
        assert!(report.converged(), "{:?}", report.failures());
    }

    #[test]
    fn diurnal_day_generates_bounded_activity() {
        let mut sim = SystemSim::new(SystemConfig::small(), 6);
        let mut rng = simkit::DetRng::new(1);
        let mut config = workload::graph::SocialGraphConfig::small();
        config.users = 20;
        config.videos = 3;
        config.threads = 5;
        let graph = SocialGraph::generate(&config, &mut rng);
        let _day = DiurnalDay::setup(&mut sim, &graph, 0.05);
        sim.run_until(SimTime::from_secs(30 * 60));
        assert!(sim.metrics().subscriptions.get() > 0);
        assert!(sim.metrics().publications.get() > 0);
    }
}
