//! BRASS — Bladerunner Application Stream Servers.
//!
//! BRASSes (§3.2) are per-application stream processors: each application
//! (LiveVideoComments, TypingIndicator, …) gets its *own* implementation and
//! its own fleet of instances, avoiding the configuration-matrix explosion
//! that sank Facebook's earlier generic filtering pub/sub (§2). A BRASS
//! subscribes to Pylon topics on behalf of its stream-connected devices,
//! then filters, ranks, rate-limits and privacy-checks updates **per user**
//! before pushing selected data over BURST request-streams — "one of the
//! primary responsibilities of BRASSes is to drop messages intelligently,
//! as 80% of messages are filtered out at BRASS instances" (§5).
//!
//! The crate is organised as:
//!
//! * [`app`] — the [`app::BrassApp`] trait and the sans-io
//!   [`app::Effect`] vocabulary (subscribe to Pylon, fetch from the
//!   WAS, send a delta batch, arm a timer).
//! * [`resolve`] — GraphQL-subscription → (application, topic) resolution.
//! * [`buffer`] — the bounded, time-expiring [`RankedBuffer`](buffer::RankedBuffer)
//!   behind LiveVideoComments.
//! * [`limiter`] — a token-bucket rate limiter whose state serialises into
//!   BURST headers (so a rewrite can carry it across BRASS failover, §3.5).
//! * [`host`] — the [`host::BrassHost`]: serverless instance
//!   spool-up, the host-level Pylon subscription manager (deduplicating
//!   subscriptions across colocated BRASSes), and stream bookkeeping.
//! * [`apps`] — the five sample applications of §3.4/§4:
//!   LiveVideoComments, ActiveStatus, TypingIndicator, Stories, Messenger.

pub mod app;
pub mod apps;
pub mod buffer;
pub mod host;
pub mod limiter;
pub mod resolve;

pub use app::{AppCounters, BrassApp, Ctx, DeviceId, Effect, StreamKey, WasRequest, WasResponse};
pub use host::{BrassHost, HostConfig};
