//! A token-bucket rate limiter with header-serialisable state.
//!
//! LiveVideoComments "rate limits each stream to one message every two
//! seconds" (§5). The limiter's state can be exported into a BURST header
//! patch and restored from one — the paper's resumption example: "the state
//! of a rate limiter can be stored in the header so that when a BRASS
//! failure occurs, the resubscribe will include this information and the new
//! servicing BRASS can take this state into account" (§3.5).
//!
//! # Integer refill arithmetic
//!
//! The bucket deliberately does **not** accumulate fractional tokens in
//! floating point. An earlier implementation kept `tokens: f64` and added
//! `elapsed_secs * rate` on every refill; for non-dyadic rates (one token
//! per 2 s is `rate = 0.5`, but one per 3 s is `0.333…`) the products are
//! inexact, so a stream refilled in many small steps could hold
//! `0.99999…` tokens at the exact instant the nominal schedule owed it a
//! whole one — admitting late, and worse, admitting *differently*
//! depending on how the same interval was chopped into refill calls. That
//! breaks both the paper's resumption story (export/restore must not
//! change future decisions) and the simulator's determinism story (the
//! same stream served by different shard interleavings must admit
//! identically).
//!
//! Instead the bucket stores whole tokens plus an integer microsecond
//! accumulator: every `us_per_token` accumulated microseconds mints one
//! token. Floor division distributes over addition
//! (`⌊(a+b)/n⌋ = ⌊a/n⌋ + ⌊(a mod n + b)/n⌋`), so any partition of an
//! elapsed interval into refill calls mints exactly the same tokens, and
//! the accumulator round-trips through a header patch losslessly.

use burst::json::Json;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::{SimDuration, SimTime};

/// A token bucket: capacity `burst` whole tokens, refilled at
/// `rate_per_sec` (internally: one token per `ceil(1e6 / rate)`
/// microseconds, so the effective rate never exceeds the nominal one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenBucket {
    /// Microseconds of accumulated refill credit per minted token.
    us_per_token: u64,
    /// Capacity in whole tokens.
    burst: u64,
    /// Whole tokens available.
    tokens: u64,
    /// Refill progress toward the next token, in `[0, us_per_token)`;
    /// always zero while the bucket is full (credit does not accrue past
    /// the cap).
    acc_us: u64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket. `burst` is truncated to whole tokens (the
    /// bucket admits whole messages).
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0 && rate_per_sec.is_finite());
        assert!(burst >= 1.0 && burst.is_finite());
        let us_per_token = (1_000_000.0 / rate_per_sec).ceil().max(1.0) as u64;
        let burst = burst as u64;
        TokenBucket {
            us_per_token,
            burst,
            tokens: burst,
            acc_us: 0,
            last_refill: SimTime::ZERO,
        }
    }

    /// One message every `interval` with no burst allowance.
    pub fn per_interval(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        TokenBucket {
            us_per_token: interval.as_micros(),
            burst: 1,
            tokens: 1,
            acc_us: 0,
            last_refill: SimTime::ZERO,
        }
    }

    /// Nominal refill rate in tokens per second.
    pub fn rate_per_sec(&self) -> f64 {
        1_000_000.0 / self.us_per_token as f64
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill).as_micros();
        self.last_refill = self.last_refill.max(now);
        if elapsed == 0 {
            return;
        }
        self.acc_us += elapsed;
        if self.acc_us >= self.us_per_token {
            let minted = self.acc_us / self.us_per_token;
            self.acc_us %= self.us_per_token;
            self.tokens = self.tokens.saturating_add(minted).min(self.burst);
        }
        if self.tokens == self.burst {
            self.acc_us = 0;
        }
    }

    /// Attempts to consume one token; returns `true` on success.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Time until a token will be available (zero if one is available now).
    pub fn time_to_available(&mut self, now: SimTime) -> SimDuration {
        self.refill(now);
        if self.tokens >= 1 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.us_per_token - self.acc_us)
        }
    }

    /// Writes the exact bucket state into a snapshot (unlike the JSON
    /// header export, this is the internal integer representation
    /// verbatim — no float round-trip at all).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.us_per_token);
        w.put_u64(self.burst);
        w.put_u64(self.tokens);
        w.put_u64(self.acc_us);
        w.put_u64(self.last_refill.as_micros());
    }

    /// Reads a bucket back, rejecting states [`refill`](Self::refill)
    /// could never produce.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let us_per_token = r.get_u64()?;
        let burst = r.get_u64()?;
        let tokens = r.get_u64()?;
        let acc_us = r.get_u64()?;
        let last_refill = SimTime::from_micros(r.get_u64()?);
        if us_per_token == 0 || burst == 0 {
            return Err(SnapError::Invalid(
                "token bucket: zero quantum or burst".into(),
            ));
        }
        if tokens > burst || acc_us >= us_per_token || (tokens == burst && acc_us != 0) {
            return Err(SnapError::Invalid(
                "token bucket: inconsistent fill state".into(),
            ));
        }
        Ok(TokenBucket {
            us_per_token,
            burst,
            tokens,
            acc_us,
            last_refill,
        })
    }

    /// Exports the limiter state as a JSON header patch.
    ///
    /// `rl_tokens` carries the fractional-token view for compatibility
    /// and display; `rl_us_per_token` and `rl_acc_us` carry the exact
    /// integer quantum and accumulator so a restore is lossless
    /// mid-refill (re-deriving the quantum from the f64 rate can land
    /// one microsecond off — `ceil(1e6 / (1e6 / n))` is not always `n`
    /// in floating point).
    pub fn to_header(&self) -> Json {
        let fractional = self.tokens as f64 + self.acc_us as f64 / self.us_per_token as f64;
        Json::obj([
            ("rl_rate", Json::from(self.rate_per_sec())),
            ("rl_burst", Json::from(self.burst as f64)),
            ("rl_tokens", Json::from(fractional)),
            ("rl_us_per_token", Json::from(self.us_per_token)),
            ("rl_acc_us", Json::from(self.acc_us)),
            ("rl_at_us", Json::from(self.last_refill.as_micros())),
        ])
    }

    /// Restores limiter state from a header, if present.
    ///
    /// Returns `None` when the header carries no (or malformed) limiter
    /// state — the caller should then start a fresh bucket. Headers
    /// written by older incarnations without `rl_acc_us` restore the
    /// fractional part of `rl_tokens` into the accumulator instead.
    pub fn from_header(header: &Json) -> Option<TokenBucket> {
        let rate = header.get("rl_rate")?.as_num()?;
        let burst = header.get("rl_burst")?.as_num()?;
        let tokens = header.get("rl_tokens")?.as_num()?;
        let at_us = header.get("rl_at_us")?.as_u64()?;
        let well_formed = rate > 0.0
            && rate.is_finite()
            && burst >= 1.0
            && burst.is_finite()
            && (0.0..=burst).contains(&tokens);
        if !well_formed {
            return None;
        }
        let us_per_token = match header.get("rl_us_per_token").and_then(Json::as_u64) {
            Some(us) if us >= 1 => us,
            _ => (1_000_000.0 / rate).ceil().max(1.0) as u64,
        };
        let burst = burst as u64;
        let mut whole = tokens.floor() as u64;
        let mut acc_us = match header.get("rl_acc_us").and_then(Json::as_u64) {
            Some(acc) => acc.min(us_per_token - 1),
            None => ((tokens.fract() * us_per_token as f64).round() as u64).min(us_per_token - 1),
        };
        if whole >= burst {
            whole = burst;
            acc_us = 0;
        }
        Some(TokenBucket {
            us_per_token,
            burst,
            tokens: whole,
            acc_us,
            last_refill: SimTime::from_micros(at_us),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforces_rate() {
        // 1 message per 2 seconds.
        let mut tb = TokenBucket::per_interval(SimDuration::from_secs(2));
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(!tb.try_acquire(SimTime::from_millis(500)));
        assert!(!tb.try_acquire(SimTime::from_millis(1_900)));
        assert!(tb.try_acquire(SimTime::from_secs(2)));
    }

    #[test]
    fn burst_allowance() {
        let mut tb = TokenBucket::new(1.0, 3.0);
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(!tb.try_acquire(SimTime::ZERO));
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut tb = TokenBucket::new(10.0, 2.0);
        // After a long idle period, only `burst` tokens are available.
        let t = SimTime::from_secs(100);
        assert!(tb.try_acquire(t));
        assert!(tb.try_acquire(t));
        assert!(!tb.try_acquire(t));
    }

    #[test]
    fn time_to_available() {
        let mut tb = TokenBucket::per_interval(SimDuration::from_secs(2));
        assert_eq!(tb.time_to_available(SimTime::ZERO), SimDuration::ZERO);
        tb.try_acquire(SimTime::ZERO);
        let wait = tb.time_to_available(SimTime::ZERO);
        assert!((wait.as_secs_f64() - 2.0).abs() < 0.01, "wait {wait}");
        let wait = tb.time_to_available(SimTime::from_secs(1));
        assert!((wait.as_secs_f64() - 1.0).abs() < 0.01, "wait {wait}");
    }

    #[test]
    fn header_roundtrip_preserves_state() {
        let mut tb = TokenBucket::new(0.5, 2.0);
        tb.try_acquire(SimTime::from_secs(3));
        let header = tb.to_header();
        let restored = TokenBucket::from_header(&header).unwrap();
        assert_eq!(restored, tb);
        // The restored limiter continues enforcing where the old left off.
        let mut a = tb.clone();
        let mut b = restored;
        for s in 4..20 {
            let t = SimTime::from_secs(s);
            assert_eq!(a.try_acquire(t), b.try_acquire(t));
        }
    }

    #[test]
    fn from_header_rejects_missing_or_bad_state() {
        assert!(TokenBucket::from_header(&Json::obj::<&str>([])).is_none());
        let bad = Json::obj([
            ("rl_rate", Json::from(-1.0)),
            ("rl_burst", Json::from(1.0)),
            ("rl_tokens", Json::from(0.5)),
            ("rl_at_us", Json::from(0u64)),
        ]);
        assert!(TokenBucket::from_header(&bad).is_none());
        let overfull = Json::obj([
            ("rl_rate", Json::from(1.0)),
            ("rl_burst", Json::from(1.0)),
            ("rl_tokens", Json::from(5.0)),
            ("rl_at_us", Json::from(0u64)),
        ]);
        assert!(TokenBucket::from_header(&overfull).is_none());
    }

    #[test]
    fn time_never_flows_backwards() {
        let mut tb = TokenBucket::new(1.0, 1.0);
        tb.try_acquire(SimTime::from_secs(10));
        // An out-of-order (earlier) timestamp must not mint tokens.
        assert!(!tb.try_acquire(SimTime::from_secs(5)));
        assert!(tb.try_acquire(SimTime::from_secs(11)));
    }

    #[test]
    fn non_dyadic_rate_admits_exactly_on_schedule() {
        // One token per 3 s: `rate = 1/3` has no exact binary
        // representation, which is precisely where the old f64
        // accumulator drifted (0.333… * 3.0 < 1.0 at t = 3 s when
        // refilled in sub-second steps). The integer bucket admits at
        // t = 3 s regardless of how the interval is chopped up.
        let mut tb = TokenBucket::per_interval(SimDuration::from_secs(3));
        assert!(tb.try_acquire(SimTime::ZERO));
        for ms in (100..3_000).step_by(100) {
            assert!(!tb.try_acquire(SimTime::from_millis(ms)), "at {ms} ms");
        }
        assert!(tb.try_acquire(SimTime::from_secs(3)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Drives the same bucket through a refill at every step time.
        fn steps(start_ms: u64, gaps_ms: &[u64]) -> Vec<SimTime> {
            let mut t = start_ms;
            let mut out = Vec::with_capacity(gaps_ms.len());
            for &g in gaps_ms {
                t += g;
                out.push(SimTime::from_millis(t));
            }
            out
        }

        proptest! {
            /// Over any window, admissions never exceed
            /// `burst + rate * Δt + 1` — the bucket cannot mint credit
            /// out of float error no matter how the window is sliced.
            #[test]
            fn admission_never_exceeds_rate_window(
                interval_ms in 1u64..60_000,
                burst in 1u64..10,
                gaps_ms in proptest::collection::vec(0u64..5_000, 1..200),
            ) {
                let rate = 1_000.0 / interval_ms as f64;
                let mut tb = TokenBucket::new(rate, burst as f64);
                let times = steps(0, &gaps_ms);
                let mut admitted = 0u64;
                for &t in &times {
                    if tb.try_acquire(t) {
                        admitted += 1;
                    }
                }
                let dt_secs = times.last().unwrap().as_micros() as f64 / 1e6;
                let bound = burst as f64 + rate * dt_secs + 1.0;
                prop_assert!(
                    (admitted as f64) <= bound,
                    "admitted {admitted} > bound {bound:.3} over {dt_secs:.3}s",
                );
            }

            /// Minting is independent of how an interval is partitioned
            /// into refill calls: refilling at every intermediate step
            /// ends in exactly the state of one refill at the end.
            #[test]
            fn refill_is_partition_independent(
                interval_ms in 1u64..60_000,
                burst in 1u64..10,
                gaps_ms in proptest::collection::vec(0u64..10_000, 1..100),
            ) {
                let rate = 1_000.0 / interval_ms as f64;
                let mut stepped = TokenBucket::new(rate, burst as f64);
                let mut jumped = stepped.clone();
                // Drain both so refill progress is observable.
                let times = steps(0, &gaps_ms);
                while stepped.try_acquire(SimTime::ZERO) {
                    jumped.try_acquire(SimTime::ZERO);
                }
                for &t in &times {
                    // time_to_available refills without consuming.
                    let _ = stepped.time_to_available(t);
                }
                let _ = jumped.time_to_available(*times.last().unwrap());
                prop_assert_eq!(stepped, jumped);
            }

            /// Export/restore mid-refill is lossless: the restored bucket
            /// is field-identical and makes identical future decisions.
            #[test]
            fn header_roundtrip_is_lossless_mid_refill(
                interval_ms in 1u64..60_000,
                burst in 1u64..10,
                warmup_ms in proptest::collection::vec(0u64..5_000, 0..50),
                probe_ms in proptest::collection::vec(0u64..5_000, 1..50),
            ) {
                let rate = 1_000.0 / interval_ms as f64;
                let mut tb = TokenBucket::new(rate, burst as f64);
                for &t in &steps(0, &warmup_ms) {
                    let _ = tb.try_acquire(t);
                }
                let restored = TokenBucket::from_header(&tb.to_header()).unwrap();
                prop_assert_eq!(&restored, &tb);
                let mut a = tb;
                let mut b = restored;
                let from_ms = a.last_refill.as_micros() / 1_000;
                for &t in &steps(from_ms, &probe_ms) {
                    prop_assert_eq!(a.try_acquire(t), b.try_acquire(t));
                }
            }
        }
    }
}
