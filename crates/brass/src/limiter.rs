//! A token-bucket rate limiter with header-serialisable state.
//!
//! LiveVideoComments "rate limits each stream to one message every two
//! seconds" (§5). The limiter's state can be exported into a BURST header
//! patch and restored from one — the paper's resumption example: "the state
//! of a rate limiter can be stored in the header so that when a BRASS
//! failure occurs, the resubscribe will include this information and the new
//! servicing BRASS can take this state into account" (§3.5).

use burst::json::Json;
use simkit::time::{SimDuration, SimTime};

/// A token bucket: capacity `burst` tokens, refilled at `rate_per_sec`.
#[derive(Clone, Debug, PartialEq)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0 && rate_per_sec.is_finite());
        assert!(burst > 0.0 && burst.is_finite());
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill: SimTime::ZERO,
        }
    }

    /// One message every `interval` with no burst allowance.
    pub fn per_interval(interval: SimDuration) -> Self {
        TokenBucket::new(1.0 / interval.as_secs_f64(), 1.0)
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.burst);
        self.last_refill = self.last_refill.max(now);
    }

    /// Attempts to consume one token; returns `true` on success.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Time until a token will be available (zero if one is available now).
    pub fn time_to_available(&mut self, now: SimTime) -> SimDuration {
        self.refill(now);
        if self.tokens >= 1.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64((1.0 - self.tokens) / self.rate_per_sec)
        }
    }

    /// Exports the limiter state as a JSON header patch.
    pub fn to_header(&self) -> Json {
        Json::obj([
            ("rl_rate", Json::from(self.rate_per_sec)),
            ("rl_burst", Json::from(self.burst)),
            ("rl_tokens", Json::from(self.tokens)),
            ("rl_at_us", Json::from(self.last_refill.as_micros())),
        ])
    }

    /// Restores limiter state from a header, if present.
    ///
    /// Returns `None` when the header carries no (or malformed) limiter
    /// state — the caller should then start a fresh bucket.
    pub fn from_header(header: &Json) -> Option<TokenBucket> {
        let rate = header.get("rl_rate")?.as_num()?;
        let burst = header.get("rl_burst")?.as_num()?;
        let tokens = header.get("rl_tokens")?.as_num()?;
        let at_us = header.get("rl_at_us")?.as_u64()?;
        if !(rate > 0.0 && burst > 0.0 && (0.0..=burst).contains(&tokens)) {
            return None;
        }
        Some(TokenBucket {
            rate_per_sec: rate,
            burst,
            tokens,
            last_refill: SimTime::from_micros(at_us),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforces_rate() {
        // 1 message per 2 seconds.
        let mut tb = TokenBucket::per_interval(SimDuration::from_secs(2));
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(!tb.try_acquire(SimTime::from_millis(500)));
        assert!(!tb.try_acquire(SimTime::from_millis(1_900)));
        assert!(tb.try_acquire(SimTime::from_secs(2)));
    }

    #[test]
    fn burst_allowance() {
        let mut tb = TokenBucket::new(1.0, 3.0);
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(!tb.try_acquire(SimTime::ZERO));
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut tb = TokenBucket::new(10.0, 2.0);
        // After a long idle period, only `burst` tokens are available.
        let t = SimTime::from_secs(100);
        assert!(tb.try_acquire(t));
        assert!(tb.try_acquire(t));
        assert!(!tb.try_acquire(t));
    }

    #[test]
    fn time_to_available() {
        let mut tb = TokenBucket::per_interval(SimDuration::from_secs(2));
        assert_eq!(tb.time_to_available(SimTime::ZERO), SimDuration::ZERO);
        tb.try_acquire(SimTime::ZERO);
        let wait = tb.time_to_available(SimTime::ZERO);
        assert!((wait.as_secs_f64() - 2.0).abs() < 0.01, "wait {wait}");
        let wait = tb.time_to_available(SimTime::from_secs(1));
        assert!((wait.as_secs_f64() - 1.0).abs() < 0.01, "wait {wait}");
    }

    #[test]
    fn header_roundtrip_preserves_state() {
        let mut tb = TokenBucket::new(0.5, 2.0);
        tb.try_acquire(SimTime::from_secs(3));
        let header = tb.to_header();
        let restored = TokenBucket::from_header(&header).unwrap();
        assert_eq!(restored, tb);
        // The restored limiter continues enforcing where the old left off.
        let mut a = tb.clone();
        let mut b = restored;
        for s in 4..20 {
            let t = SimTime::from_secs(s);
            assert_eq!(a.try_acquire(t), b.try_acquire(t));
        }
    }

    #[test]
    fn from_header_rejects_missing_or_bad_state() {
        assert!(TokenBucket::from_header(&Json::obj::<&str>([])).is_none());
        let bad = Json::obj([
            ("rl_rate", Json::from(-1.0)),
            ("rl_burst", Json::from(1.0)),
            ("rl_tokens", Json::from(0.5)),
            ("rl_at_us", Json::from(0u64)),
        ]);
        assert!(TokenBucket::from_header(&bad).is_none());
        let overfull = Json::obj([
            ("rl_rate", Json::from(1.0)),
            ("rl_burst", Json::from(1.0)),
            ("rl_tokens", Json::from(5.0)),
            ("rl_at_us", Json::from(0u64)),
        ]);
        assert!(TokenBucket::from_header(&overfull).is_none());
    }

    #[test]
    fn time_never_flows_backwards() {
        let mut tb = TokenBucket::new(1.0, 1.0);
        tb.try_acquire(SimTime::from_secs(10));
        // An out-of-order (earlier) timestamp must not mint tokens.
        assert!(!tb.try_acquire(SimTime::from_secs(5)));
        assert!(tb.try_acquire(SimTime::from_secs(11)));
    }
}
