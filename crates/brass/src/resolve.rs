//! Subscription resolution: BURST header → (application, topic).
//!
//! A device "expresses its interest by issuing (for example) a GraphQL
//! subscription request to a BRASS, which is translated to a topic" (§3).
//! The subscription travels in the BURST header under `"gql"`; this module
//! parses it and maps the subscription field onto the owning application
//! and its Pylon topic. Pre-resolved headers (with explicit `"app"` and
//! `"topic"` fields — e.g. after a proxy repair) are accepted directly.

use burst::json::Json;
use pylon::Topic;
use was::gql::{self, OpKind};

/// A resolved subscription.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedSub {
    /// The owning application, e.g. `"lvc"`.
    pub app: String,
    /// The primary Pylon topic for this stream.
    pub topic: Topic,
    /// The viewing user (drives per-user filtering and privacy).
    pub viewer: u64,
}

/// Resolution failures.
#[derive(Clone, Debug, PartialEq)]
pub enum ResolveError {
    /// The header carries no `viewer` field.
    MissingViewer,
    /// The header carries neither a `gql` subscription nor `app`+`topic`.
    MissingSubscription,
    /// The GraphQL text failed to parse or was not a subscription.
    BadGql(String),
    /// The subscription field is not a known application.
    UnknownSubscription(String),
    /// A required argument was missing.
    MissingArgument(&'static str),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::MissingViewer => write!(f, "header missing 'viewer'"),
            ResolveError::MissingSubscription => {
                write!(f, "header missing 'gql' or 'app'+'topic'")
            }
            ResolveError::BadGql(m) => write!(f, "bad subscription: {m}"),
            ResolveError::UnknownSubscription(n) => write!(f, "unknown subscription '{n}'"),
            ResolveError::MissingArgument(a) => write!(f, "missing argument '{a}'"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Resolves a BURST subscribe header into an application and topic.
///
/// # Examples
///
/// ```
/// use burst::json::Json;
/// use brass::resolve::resolve;
///
/// let header = Json::obj([
///     ("viewer", Json::from(9u64)),
///     ("gql", Json::from("subscription { liveVideoComments(videoId: 42) }")),
/// ]);
/// let sub = resolve(&header).unwrap();
/// assert_eq!(sub.app, "lvc");
/// assert_eq!(sub.topic.as_str(), "/LVC/42");
/// assert_eq!(sub.viewer, 9);
/// ```
pub fn resolve(header: &Json) -> Result<ResolvedSub, ResolveError> {
    let viewer = header
        .get("viewer")
        .and_then(Json::as_u64)
        .ok_or(ResolveError::MissingViewer)?;

    // Pre-resolved headers short-circuit (proxy repairs, tests).
    if let (Some(app), Some(topic)) = (
        header.get("app").and_then(Json::as_str),
        header.get("topic").and_then(Json::as_str),
    ) {
        let topic = Topic::new(topic).map_err(|e| ResolveError::BadGql(e.to_string()))?;
        return Ok(ResolvedSub {
            app: app.to_owned(),
            topic,
            viewer,
        });
    }

    let src = header
        .get("gql")
        .and_then(Json::as_str)
        .ok_or(ResolveError::MissingSubscription)?;
    let op = gql::parse(src).map_err(|e| ResolveError::BadGql(e.to_string()))?;
    if op.kind != OpKind::Subscription {
        return Err(ResolveError::BadGql("expected a subscription".into()));
    }
    let field = &op.selections[0];
    let arg = |name: &'static str| {
        field
            .arg(name)
            .and_then(gql::GqlValue::as_id)
            .ok_or(ResolveError::MissingArgument(name))
    };
    let (app, topic) = match field.name.as_str() {
        "liveVideoComments" => ("lvc", Topic::live_video_comments(arg("videoId")?)),
        "typingIndicator" => (
            "typing",
            Topic::typing_indicator(arg("threadId")?, arg("counterpartyId")?),
        ),
        "activeStatus" => ("active_status", Topic::active_status(viewer)),
        "storiesTray" => ("stories", Topic::stories(viewer)),
        "mailbox" => ("messenger", Topic::messenger_mailbox(arg("uid")?)),
        "postLikes" => (
            "likes",
            Topic::new(&format!("/Likes/{}", arg("postId")?))
                .expect("numeric post ids form valid topics"),
        ),
        "notifications" => ("notifications", Topic::notifications(viewer)),
        other => return Err(ResolveError::UnknownSubscription(other.to_owned())),
    };
    Ok(ResolvedSub {
        app: app.to_owned(),
        topic,
        viewer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(gql: &str, viewer: u64) -> Json {
        Json::obj([("viewer", Json::from(viewer)), ("gql", Json::from(gql))])
    }

    #[test]
    fn resolves_all_known_subscriptions() {
        let cases = [
            (
                "subscription { liveVideoComments(videoId: 1) }",
                "lvc",
                "/LVC/1",
            ),
            (
                "subscription { typingIndicator(threadId: 2, counterpartyId: 3) }",
                "typing",
                "/TI/2/3",
            ),
            (
                "subscription { activeStatus }",
                "active_status",
                "/Status/9",
            ),
            ("subscription { storiesTray }", "stories", "/Stories/9"),
            ("subscription { mailbox(uid: 9) }", "messenger", "/Msgr/9"),
            ("subscription { postLikes(postId: 5) }", "likes", "/Likes/5"),
            (
                "subscription { notifications }",
                "notifications",
                "/Notif/9",
            ),
        ];
        for (gql, app, topic) in cases {
            let sub = resolve(&header(gql, 9)).unwrap();
            assert_eq!(sub.app, app, "{gql}");
            assert_eq!(sub.topic.as_str(), topic, "{gql}");
            assert_eq!(sub.viewer, 9);
        }
    }

    #[test]
    fn pre_resolved_headers_pass_through() {
        let h = Json::obj([
            ("viewer", Json::from(4u64)),
            ("app", Json::from("lvc")),
            ("topic", Json::from("/LVC/77")),
        ]);
        let sub = resolve(&h).unwrap();
        assert_eq!(sub.app, "lvc");
        assert_eq!(sub.topic.as_str(), "/LVC/77");
    }

    #[test]
    fn missing_viewer() {
        let h = Json::obj([("gql", Json::from("subscription { activeStatus }"))]);
        assert_eq!(resolve(&h), Err(ResolveError::MissingViewer));
    }

    #[test]
    fn missing_subscription_source() {
        let h = Json::obj([("viewer", Json::from(1u64))]);
        assert_eq!(resolve(&h), Err(ResolveError::MissingSubscription));
    }

    #[test]
    fn rejects_queries_and_unknown_fields() {
        assert!(matches!(
            resolve(&header("query { video(id: 1) { title } }", 1)),
            Err(ResolveError::BadGql(_))
        ));
        assert!(matches!(
            resolve(&header("subscription { somethingElse(x: 1) }", 1)),
            Err(ResolveError::UnknownSubscription(_))
        ));
        assert!(matches!(
            resolve(&header("subscription { liveVideoComments }", 1)),
            Err(ResolveError::MissingArgument("videoId"))
        ));
    }

    #[test]
    fn bad_pre_resolved_topic() {
        let h = Json::obj([
            ("viewer", Json::from(1u64)),
            ("app", Json::from("lvc")),
            ("topic", Json::from("not-a-topic")),
        ]);
        assert!(matches!(resolve(&h), Err(ResolveError::BadGql(_))));
    }

    #[test]
    fn error_messages() {
        assert!(ResolveError::MissingViewer.to_string().contains("viewer"));
        assert!(ResolveError::MissingArgument("x").to_string().contains('x'));
    }
}
