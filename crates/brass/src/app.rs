//! The BRASS application model.
//!
//! Applications are sans-io state machines implementing [`BrassApp`].
//! Handlers receive a [`Ctx`] through which they emit [`Effect`]s — Pylon
//! subscriptions, WAS requests, delta batches toward devices, timers — that
//! the host (and ultimately the simulation orchestrator) carries out. This
//! mirrors the paper's event-loop JS VMs: "all computation is powered by an
//! event loop, executing logic on each incoming … request and each backend
//! service response" (§3.2).

use burst::frame::{Delta, Payload, StreamId};
use burst::json::Json;
use pylon::Topic;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::DropReason;
use tao::ObjectId;
use was::UpdateEvent;

/// Identifier of an end-user device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u64);

/// A request-stream endpoint as seen by a BRASS: device plus stream id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamKey {
    /// The device the stream belongs to.
    pub device: DeviceId,
    /// The client-generated stream id.
    pub sid: StreamId,
}

impl StreamKey {
    /// Writes the key into a snapshot.
    pub fn snap(&self, w: &mut simkit::snap::SnapWriter) {
        w.put_u64(self.device.0);
        w.put_u64(self.sid.0);
    }

    /// Reads a key back.
    pub fn restore(r: &mut simkit::snap::SnapReader<'_>) -> simkit::snap::SnapResult<Self> {
        Ok(StreamKey {
            device: DeviceId(r.get_u64()?),
            sid: StreamId(r.get_u64()?),
        })
    }
}

/// Token correlating a WAS request with its asynchronous response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FetchToken(pub u64);

impl FetchToken {
    /// Writes the raw token.
    pub fn snap(&self, w: &mut simkit::snap::SnapWriter) {
        w.put_u64(self.0);
    }

    /// Reads a token back.
    pub fn restore(r: &mut simkit::snap::SnapReader<'_>) -> simkit::snap::SnapResult<Self> {
        Ok(FetchToken(r.get_u64()?))
    }
}

/// A backend request a BRASS can issue ("BRASS … may invoke any backend
/// service", §3.2). All data access goes through the WAS, where privacy
/// checks live.
#[derive(Clone, Debug, PartialEq)]
pub enum WasRequest {
    /// Fetch one updated object's payload for a viewer (privacy-checked).
    FetchObject {
        /// The viewing user.
        viewer: u64,
        /// The TAO object referenced by an update event.
        object: ObjectId,
    },
    /// Fetch a user's friend list.
    Friends {
        /// The user whose friends to list.
        uid: u64,
    },
    /// Fetch mailbox entries after a sequence number (Messenger backfill).
    MailboxAfter {
        /// Mailbox owner.
        uid: u64,
        /// Replay entries with sequence numbers strictly greater than this;
        /// `None` replays from the start.
        after_seq: Option<u64>,
    },
}

/// The response to a [`WasRequest`].
#[derive(Clone, Debug, PartialEq)]
pub enum WasResponse {
    /// A privacy-checked payload, ready to push (shared, never copied on
    /// fan-out).
    Payload(Payload),
    /// The privacy check denied the viewer.
    Denied,
    /// The object no longer exists.
    NotFound,
    /// A friend list.
    Friends(Vec<u64>),
    /// Mailbox entries `(seq, object)`, oldest first.
    Mailbox(Vec<(u64, ObjectId)>),
}

impl WasRequest {
    /// Serializes the request (it rides inside queued simulator events).
    pub fn snap(&self, w: &mut simkit::snap::SnapWriter) {
        match self {
            WasRequest::FetchObject { viewer, object } => {
                w.put_u8(0);
                w.put_u64(*viewer);
                w.put_u64(object.0);
            }
            WasRequest::Friends { uid } => {
                w.put_u8(1);
                w.put_u64(*uid);
            }
            WasRequest::MailboxAfter { uid, after_seq } => {
                w.put_u8(2);
                w.put_u64(*uid);
                match after_seq {
                    Some(seq) => {
                        w.put_u8(1);
                        w.put_u64(*seq);
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }

    /// Restores a request.
    pub fn restore(r: &mut simkit::snap::SnapReader<'_>) -> simkit::snap::SnapResult<Self> {
        use simkit::snap::SnapError;
        Ok(match r.get_u8()? {
            0 => WasRequest::FetchObject {
                viewer: r.get_u64()?,
                object: ObjectId(r.get_u64()?),
            },
            1 => WasRequest::Friends { uid: r.get_u64()? },
            2 => WasRequest::MailboxAfter {
                uid: r.get_u64()?,
                after_seq: match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_u64()?),
                    t => return Err(SnapError::Invalid(format!("MailboxAfter seq tag {t}"))),
                },
            },
            t => return Err(SnapError::Invalid(format!("WasRequest tag {t}"))),
        })
    }
}

impl WasResponse {
    /// Serializes the response.
    pub fn snap(&self, w: &mut simkit::snap::SnapWriter) {
        match self {
            WasResponse::Payload(payload) => {
                w.put_u8(0);
                w.put_bytes(payload);
            }
            WasResponse::Denied => w.put_u8(1),
            WasResponse::NotFound => w.put_u8(2),
            WasResponse::Friends(uids) => {
                w.put_u8(3);
                w.put_usize(uids.len());
                for uid in uids {
                    w.put_u64(*uid);
                }
            }
            WasResponse::Mailbox(entries) => {
                w.put_u8(4);
                w.put_usize(entries.len());
                for (seq, object) in entries {
                    w.put_u64(*seq);
                    w.put_u64(object.0);
                }
            }
        }
    }

    /// Restores a response.
    pub fn restore(r: &mut simkit::snap::SnapReader<'_>) -> simkit::snap::SnapResult<Self> {
        use simkit::snap::SnapError;
        Ok(match r.get_u8()? {
            0 => WasResponse::Payload(r.get_bytes()?.into()),
            1 => WasResponse::Denied,
            2 => WasResponse::NotFound,
            3 => {
                let n = r.get_len()?;
                let mut uids = Vec::with_capacity(n);
                for _ in 0..n {
                    uids.push(r.get_u64()?);
                }
                WasResponse::Friends(uids)
            }
            4 => {
                let n = r.get_len()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((r.get_u64()?, ObjectId(r.get_u64()?)));
                }
                WasResponse::Mailbox(entries)
            }
            t => return Err(SnapError::Invalid(format!("WasResponse tag {t}"))),
        })
    }
}

/// An effect requested by application code, executed by the host.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// Subscribe this BRASS to a Pylon topic.
    SubscribeTopic(Topic),
    /// Drop this BRASS's subscription to a Pylon topic.
    UnsubscribeTopic(Topic),
    /// Issue an asynchronous WAS request.
    Was {
        /// Correlation token (returned via `on_was_response`).
        token: FetchToken,
        /// The request.
        request: WasRequest,
    },
    /// Send raw payloads to a stream (the host assigns sequence numbers and
    /// wraps them in a single atomically-applied response batch).
    SendPayloads {
        /// Target stream.
        stream: StreamKey,
        /// Payloads, in order.
        payloads: Vec<Payload>,
        /// Optional header rewrite delivered in the *same* atomic batch —
        /// progress state advances if and only if the payloads arrive.
        rewrite: Option<Json>,
    },
    /// Send protocol deltas (rewrites, flow status, termination) verbatim.
    SendDeltas {
        /// Target stream.
        stream: StreamKey,
        /// Deltas to batch.
        deltas: Vec<Delta>,
    },
    /// Arm a timer; `on_timer` fires with the token at the given instant.
    Timer {
        /// When to fire.
        at: SimTime,
        /// Opaque token returned to the app.
        token: u64,
    },
    /// Retransmit the stream's sent-but-unacknowledged updates (reliable
    /// applications; the host holds the retention buffer).
    ReplayUnacked {
        /// Target stream.
        stream: StreamKey,
    },
    /// Report that this application dropped an update (filter, buffer
    /// eviction, …) so the trace ledger can attribute the loss. Purely
    /// observational: no delivery behaviour changes.
    DropUpdate {
        /// The TAO object the dropped update referenced.
        object: ObjectId,
        /// Why the update was dropped.
        reason: DropReason,
    },
}

/// Per-application counters, including the paper's delivery-decision
/// metrics (Fig. 8: "decisions on updates" vs "update deliveries").
#[derive(Clone, Copy, Debug, Default)]
pub struct AppCounters {
    /// Delivery decisions taken (deliver-or-drop judgements on updates).
    pub decisions: u64,
    /// Decisions that resulted in a delivery.
    pub deliveries: u64,
    /// Update events received from Pylon.
    pub events_in: u64,
    /// WAS requests issued.
    pub was_requests: u64,
}

impl AppCounters {
    /// Fraction of decided updates that were filtered out (the paper's
    /// headline "80% of messages are filtered out at BRASS instances").
    pub fn filtered_fraction(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            1.0 - self.deliveries as f64 / self.decisions as f64
        }
    }
}

/// Handler context: the current time plus an effect sink and counters.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    effects: &'a mut Vec<Effect>,
    counters: &'a mut AppCounters,
    next_token: &'a mut u64,
}

impl<'a> Ctx<'a> {
    /// Creates a context over an effect sink (used by the host and tests).
    pub fn new(
        now: SimTime,
        effects: &'a mut Vec<Effect>,
        counters: &'a mut AppCounters,
        next_token: &'a mut u64,
    ) -> Self {
        Ctx {
            now,
            effects,
            counters,
            next_token,
        }
    }

    /// Subscribes this BRASS to a Pylon topic (deduplicated host-wide).
    pub fn subscribe(&mut self, topic: Topic) {
        self.effects.push(Effect::SubscribeTopic(topic));
    }

    /// Unsubscribes from a Pylon topic.
    pub fn unsubscribe(&mut self, topic: Topic) {
        self.effects.push(Effect::UnsubscribeTopic(topic));
    }

    /// Issues a WAS request; the response arrives via
    /// [`BrassApp::on_was_response`] with the returned token.
    pub fn was_request(&mut self, request: WasRequest) -> FetchToken {
        let token = FetchToken(*self.next_token);
        *self.next_token += 1;
        self.counters.was_requests += 1;
        self.effects.push(Effect::Was { token, request });
        token
    }

    /// Records one deliver-or-drop judgement on an update.
    ///
    /// Apps must call this once per judgement so the Fig. 8 "decisions"
    /// metric is meaningful; deliveries are counted automatically by
    /// [`send`](Self::send) / [`send_batch`](Self::send_batch).
    pub fn decision(&mut self) {
        self.counters.decisions += 1;
    }

    /// Sends one payload to a stream (counts one delivery).
    pub fn send(&mut self, stream: StreamKey, payload: impl Into<Payload>) {
        self.counters.deliveries += 1;
        self.effects.push(Effect::SendPayloads {
            stream,
            payloads: vec![payload.into()],
            rewrite: None,
        });
    }

    /// Sends several payloads as one atomic batch (each counts a delivery).
    pub fn send_batch(&mut self, stream: StreamKey, payloads: Vec<impl Into<Payload>>) {
        if !payloads.is_empty() {
            self.counters.deliveries += payloads.len() as u64;
            self.effects.push(Effect::SendPayloads {
                stream,
                payloads: payloads.into_iter().map(Into::into).collect(),
                rewrite: None,
            });
        }
    }

    /// Sends payloads plus a header rewrite in one atomic batch: the
    /// rewritten state (e.g. delivery progress) takes effect exactly when
    /// the payloads do — a dropped frame loses both together.
    pub fn send_batch_rewriting(
        &mut self,
        stream: StreamKey,
        payloads: Vec<impl Into<Payload>>,
        patch: Json,
    ) {
        self.counters.deliveries += payloads.len() as u64;
        self.effects.push(Effect::SendPayloads {
            stream,
            payloads: payloads.into_iter().map(Into::into).collect(),
            rewrite: Some(patch),
        });
    }

    /// Sends a header rewrite to a stream.
    pub fn rewrite(&mut self, stream: StreamKey, patch: Json) {
        self.effects.push(Effect::SendDeltas {
            stream,
            deltas: vec![Delta::RewriteRequest { patch }],
        });
    }

    /// Terminates a stream.
    pub fn terminate(&mut self, stream: StreamKey, reason: burst::frame::TerminateReason) {
        self.effects.push(Effect::SendDeltas {
            stream,
            deltas: vec![Delta::Terminate(reason)],
        });
    }

    /// Arms a timer `after` from now; `on_timer` fires with `token`.
    pub fn timer(&mut self, after: SimDuration, token: u64) {
        self.effects.push(Effect::Timer {
            at: self.now + after,
            token,
        });
    }

    /// Requests retransmission of the stream's unacknowledged updates.
    ///
    /// "BRASS can rely on device acks to ensure the device receives each
    /// update" (§4): the device's duplicate suppression makes replays safe.
    pub fn replay_unacked(&mut self, stream: StreamKey) {
        self.effects.push(Effect::ReplayUnacked { stream });
    }

    /// Reports that the app dropped an update referencing `object`, for
    /// trace-ledger drop attribution. Observational only; pair with
    /// [`decision`](Self::decision) where the drop is also a judgement.
    pub fn dropped(&mut self, object: ObjectId, reason: DropReason) {
        self.effects.push(Effect::DropUpdate { object, reason });
    }
}

/// A Bladerunner application running inside a BRASS instance.
///
/// Each handler corresponds to one event-loop turn. Implementations are
/// single-application by design ("the implementation becomes simpler because
/// each BRASS addresses the requirements of only one application", §3.2).
/// `Send` so a host (and its apps) can live on a dedicated backend thread.
pub trait BrassApp: Send {
    /// A short stable name, e.g. `"lvc"`.
    fn name(&self) -> &'static str;

    /// A new request-stream was accepted for this application.
    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json);

    /// An update event arrived from Pylon on a subscribed topic.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent);

    /// A WAS response arrived for a previously issued request.
    fn on_was_response(&mut self, ctx: &mut Ctx<'_>, token: FetchToken, response: WasResponse);

    /// A timer armed with [`Ctx::timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// A stream went away (cancel, device disconnect, or proxy GC).
    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey);

    /// The device acknowledged updates up to `seq` (reliable apps only).
    fn on_ack(&mut self, _ctx: &mut Ctx<'_>, _stream: StreamKey, _seq: u64) {}

    /// Writes this application's complete state into a snapshot.
    ///
    /// The default writes nothing: only the standard applications
    /// participate in whole-simulation snapshots (the host's restore is
    /// keyed by application name and recognizes only those).
    fn snap(&self, _w: &mut simkit::snap::SnapWriter) {}
}

/// A test harness that runs a [`BrassApp`] and records its effects.
///
/// Used by the per-app unit tests and usable by downstream consumers for
/// their own application tests.
pub struct TestDriver<A> {
    /// The application under test.
    pub app: A,
    /// All effects emitted so far.
    pub effects: Vec<Effect>,
    /// Counters accumulated so far.
    pub counters: AppCounters,
    next_token: u64,
    now: SimTime,
}

impl<A: BrassApp> TestDriver<A> {
    /// Wraps an application.
    pub fn new(app: A) -> Self {
        TestDriver {
            app,
            effects: Vec::new(),
            counters: AppCounters::default(),
            next_token: 0,
            now: SimTime::ZERO,
        }
    }

    /// Advances the harness clock.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Current harness time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn with_ctx(&mut self, f: impl FnOnce(&mut A, &mut Ctx<'_>)) -> Vec<Effect> {
        let before = self.effects.len();
        let mut ctx = Ctx::new(
            self.now,
            &mut self.effects,
            &mut self.counters,
            &mut self.next_token,
        );
        f(&mut self.app, &mut ctx);
        self.effects[before..].to_vec()
    }

    /// Delivers a subscribe and returns the newly emitted effects.
    pub fn subscribe(&mut self, stream: StreamKey, header: &Json) -> Vec<Effect> {
        self.with_ctx(|app, ctx| app.on_subscribe(ctx, stream, header))
    }

    /// Delivers an update event.
    pub fn event(&mut self, event: &UpdateEvent) -> Vec<Effect> {
        self.counters.events_in += 1;
        self.with_ctx(|app, ctx| app.on_event(ctx, event))
    }

    /// Delivers a WAS response.
    pub fn was_response(&mut self, token: FetchToken, response: WasResponse) -> Vec<Effect> {
        self.with_ctx(|app, ctx| app.on_was_response(ctx, token, response))
    }

    /// Fires a timer.
    pub fn fire_timer(&mut self, token: u64) -> Vec<Effect> {
        self.with_ctx(|app, ctx| app.on_timer(ctx, token))
    }

    /// Closes a stream.
    pub fn close(&mut self, stream: StreamKey) -> Vec<Effect> {
        self.with_ctx(|app, ctx| app.on_stream_closed(ctx, stream))
    }

    /// Delivers an ack.
    pub fn ack(&mut self, stream: StreamKey, seq: u64) -> Vec<Effect> {
        self.with_ctx(|app, ctx| app.on_ack(ctx, stream, seq))
    }

    /// Pending timers among emitted effects (at, token), in emission order.
    pub fn timers(&self) -> Vec<(SimTime, u64)> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Timer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .collect()
    }

    /// Payload sends among emitted effects.
    pub fn sent_payloads(&self) -> Vec<(StreamKey, Vec<Payload>)> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::SendPayloads {
                    stream, payloads, ..
                } => Some((*stream, payloads.clone())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_effects_and_counters() {
        let mut effects = Vec::new();
        let mut counters = AppCounters::default();
        let mut token = 0;
        let mut ctx = Ctx::new(SimTime::ZERO, &mut effects, &mut counters, &mut token);
        ctx.subscribe(Topic::active_status(1));
        let t1 = ctx.was_request(WasRequest::Friends { uid: 1 });
        let t2 = ctx.was_request(WasRequest::Friends { uid: 2 });
        assert_ne!(t1, t2, "tokens are unique");
        ctx.decision();
        ctx.decision();
        ctx.decision();
        let stream = StreamKey {
            device: DeviceId(1),
            sid: StreamId(1),
        };
        ctx.send(stream, b"x".to_vec());
        ctx.send_batch(stream, Vec::<Vec<u8>>::new());
        ctx.timer(SimDuration::from_secs(2), 77);
        assert_eq!(effects.len(), 5, "empty batch is elided");
        assert_eq!(counters.decisions, 3);
        assert_eq!(counters.deliveries, 1, "send counts the delivery");
        assert_eq!(counters.was_requests, 2);
        assert!((counters.filtered_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn filtered_fraction_empty() {
        assert_eq!(AppCounters::default().filtered_fraction(), 0.0);
    }
}
