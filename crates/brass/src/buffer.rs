//! The ranked buffer behind LiveVideoComments.
//!
//! "Each LiveVideoComments BRASS maintains a ranked buffer for each
//! stream-connected device to which it adds the incoming updates after
//! filtering them on a per user basis … The highest-ranked comment in the
//! buffer is pushed to the device periodically at a prescribed rate" (§3.4).
//!
//! [`RankedBuffer`] is bounded (the paper holds it "fixed at 5 elements" in
//! the Fig. 9 measurements), keeps entries ordered by rank, evicts the
//! lowest-ranked entry on overflow, and expires entries older than a
//! configured age ("comments older than n seconds become irrelevant and can
//! be discarded", §2).

use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::{SimDuration, SimTime};

/// An entry in a ranked buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct Ranked<T> {
    /// Rank; higher pops first.
    pub rank: f64,
    /// When the underlying update was created.
    pub created: SimTime,
    /// The carried item.
    pub item: T,
}

/// The result of [`RankedBuffer::offer`].
#[derive(Clone, Debug, PartialEq)]
pub enum PushOutcome<T> {
    /// The item was stored; nothing was displaced.
    Kept,
    /// The item was stored; the previous lowest-ranked entry was evicted.
    KeptEvicting(Ranked<T>),
    /// The buffer was full and the item ranked lowest; it was not stored.
    Rejected(Ranked<T>),
}

/// A bounded, rank-ordered, time-expiring buffer.
///
/// # Examples
///
/// ```
/// use brass::buffer::RankedBuffer;
/// use simkit::time::{SimDuration, SimTime};
///
/// let mut buf = RankedBuffer::new(2, SimDuration::from_secs(10));
/// buf.push(0.5, SimTime::ZERO, "meh");
/// buf.push(0.9, SimTime::ZERO, "great");
/// buf.push(0.7, SimTime::ZERO, "good"); // evicts "meh"
/// assert_eq!(buf.pop_best(SimTime::from_secs(1)), Some("great"));
/// ```
#[derive(Clone, Debug)]
pub struct RankedBuffer<T> {
    entries: Vec<Ranked<T>>,
    capacity: usize,
    max_age: SimDuration,
    evicted: u64,
    expired: u64,
}

impl<T> RankedBuffer<T> {
    /// Creates a buffer with the given capacity and maximum entry age.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, max_age: SimDuration) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        // The backing Vec is allocated lazily on first insert: one buffer
        // exists per stream-connected device, and at fleet scale most sit
        // empty at any instant — an eager `capacity + 1` allocation per
        // stream is pure resident overhead.
        RankedBuffer {
            entries: Vec::new(),
            capacity,
            max_age,
            evicted: 0,
            expired: 0,
        }
    }

    /// Number of buffered entries (possibly including not-yet-swept expired
    /// ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to capacity pressure.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Entries dropped because they aged out.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Inserts an item. If the buffer is full and the new item outranks the
    /// current minimum, the minimum is evicted; if the new item ranks lowest
    /// it is rejected immediately. Returns `true` if the item was kept.
    pub fn push(&mut self, rank: f64, created: SimTime, item: T) -> bool {
        !matches!(self.offer(rank, created, item), PushOutcome::Rejected(_))
    }

    /// Like [`push`](Self::push), but reports the casualty of capacity
    /// pressure so callers can attribute the drop to a specific item. The
    /// `evicted` counter advances identically either way.
    pub fn offer(&mut self, rank: f64, created: SimTime, item: T) -> PushOutcome<T> {
        // Keep entries sorted descending by rank (ties: older first, so
        // earlier arrivals win at equal rank).
        let pos = self
            .entries
            .partition_point(|e| e.rank > rank || (e.rank == rank && e.created <= created));
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            if pos >= self.capacity {
                self.evicted += 1;
                return PushOutcome::Rejected(Ranked {
                    rank,
                    created,
                    item,
                });
            }
            evicted = self.entries.pop();
            self.evicted += 1;
        }
        if self.entries.capacity() == 0 {
            self.entries.reserve_exact(self.capacity + 1);
        }
        self.entries.insert(
            pos,
            Ranked {
                rank,
                created,
                item,
            },
        );
        match evicted {
            Some(e) => PushOutcome::KeptEvicting(e),
            None => PushOutcome::Kept,
        }
    }

    /// Drops entries older than the maximum age as of `now`.
    pub fn sweep(&mut self, now: SimTime) {
        self.take_expired(now);
    }

    /// Removes and returns entries older than the maximum age as of `now`,
    /// highest rank first (the order they sat in the buffer).
    pub fn take_expired(&mut self, now: SimTime) -> Vec<Ranked<T>> {
        let max_age = self.max_age;
        let mut taken = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if now.saturating_since(self.entries[i].created) > max_age {
                taken.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
        self.expired += taken.len() as u64;
        taken
    }

    /// Removes and returns the highest-ranked non-expired item.
    pub fn pop_best(&mut self, now: SimTime) -> Option<T> {
        self.sweep(now);
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0).item)
        }
    }

    /// Peeks at the highest-ranked entry without removing it (no sweep).
    pub fn peek_best(&self) -> Option<&Ranked<T>> {
        self.entries.first()
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Removes and returns all entries, highest rank first.
    pub fn drain(&mut self) -> Vec<Ranked<T>> {
        std::mem::take(&mut self.entries)
    }

    /// Writes the buffer into a snapshot, serializing each item with `f`.
    /// Entries are written in buffer order (rank-descending), which is the
    /// exact pop order — nothing to re-derive on restore.
    pub fn snap_with(&self, w: &mut SnapWriter, mut f: impl FnMut(&T, &mut SnapWriter)) {
        w.put_usize(self.capacity);
        w.put_u64(self.max_age.as_micros());
        w.put_u64(self.evicted);
        w.put_u64(self.expired);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_f64(e.rank);
            w.put_u64(e.created.as_micros());
            f(&e.item, w);
        }
    }

    /// Reads a buffer back, restoring each item with `f`. Rejects states
    /// [`offer`](Self::offer) could never produce: over-capacity buffers
    /// and entries out of (rank-descending, created-ascending) order.
    pub fn restore_with(
        r: &mut SnapReader<'_>,
        mut f: impl FnMut(&mut SnapReader<'_>) -> SnapResult<T>,
    ) -> SnapResult<Self> {
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(SnapError::Invalid("ranked buffer: zero capacity".into()));
        }
        let max_age = SimDuration::from_micros(r.get_u64()?);
        let evicted = r.get_u64()?;
        let expired = r.get_u64()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(SnapError::Invalid("ranked buffer: over capacity".into()));
        }
        let mut entries: Vec<Ranked<T>> = Vec::with_capacity(n);
        for _ in 0..n {
            let rank = r.get_f64()?;
            if !rank.is_finite() {
                return Err(SnapError::Invalid("ranked buffer: non-finite rank".into()));
            }
            let created = SimTime::from_micros(r.get_u64()?);
            let item = f(r)?;
            if let Some(prev) = entries.last() {
                let ordered = prev.rank > rank || (prev.rank == rank && prev.created <= created);
                if !ordered {
                    return Err(SnapError::Invalid(
                        "ranked buffer: entries out of order".into(),
                    ));
                }
            }
            entries.push(Ranked {
                rank,
                created,
                item,
            });
        }
        Ok(RankedBuffer {
            entries,
            capacity,
            max_age,
            evicted,
            expired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn buf(cap: usize) -> RankedBuffer<u32> {
        RankedBuffer::new(cap, SimDuration::from_secs(10))
    }

    #[test]
    fn pops_in_rank_order() {
        let mut b = buf(10);
        b.push(0.3, SimTime::ZERO, 3);
        b.push(0.9, SimTime::ZERO, 9);
        b.push(0.6, SimTime::ZERO, 6);
        assert_eq!(b.pop_best(SimTime::ZERO), Some(9));
        assert_eq!(b.pop_best(SimTime::ZERO), Some(6));
        assert_eq!(b.pop_best(SimTime::ZERO), Some(3));
        assert_eq!(b.pop_best(SimTime::ZERO), None);
    }

    #[test]
    fn capacity_evicts_lowest() {
        let mut b = buf(2);
        assert!(b.push(0.5, SimTime::ZERO, 5));
        assert!(b.push(0.9, SimTime::ZERO, 9));
        assert!(b.push(0.7, SimTime::ZERO, 7)); // evicts 5
        assert_eq!(b.len(), 2);
        assert_eq!(b.evicted(), 1);
        assert_eq!(b.pop_best(SimTime::ZERO), Some(9));
        assert_eq!(b.pop_best(SimTime::ZERO), Some(7));
    }

    #[test]
    fn low_rank_rejected_when_full() {
        let mut b = buf(2);
        b.push(0.5, SimTime::ZERO, 5);
        b.push(0.9, SimTime::ZERO, 9);
        assert!(!b.push(0.1, SimTime::ZERO, 1));
        assert_eq!(b.evicted(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn expiry() {
        let mut b = buf(10);
        b.push(0.9, SimTime::ZERO, 1);
        b.push(0.5, SimTime::from_secs(8), 2);
        // At t=11s the first entry (age 11s) exceeds the 10s max age.
        assert_eq!(b.pop_best(SimTime::from_secs(11)), Some(2));
        assert_eq!(b.expired(), 1);
        assert_eq!(b.pop_best(SimTime::from_secs(11)), None);
    }

    #[test]
    fn equal_ranks_prefer_older() {
        let mut b = buf(10);
        b.push(0.5, SimTime::from_secs(2), 22);
        b.push(0.5, SimTime::from_secs(1), 11);
        assert_eq!(b.pop_best(SimTime::from_secs(3)), Some(11));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut b = buf(10);
        b.push(0.9, SimTime::ZERO, 1);
        assert_eq!(b.peek_best().unwrap().item, 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        RankedBuffer::<u32>::new(0, SimDuration::from_secs(1));
    }

    #[test]
    fn offer_reports_the_casualty() {
        let mut b = buf(2);
        assert_eq!(b.offer(0.5, SimTime::ZERO, 5), PushOutcome::Kept);
        assert_eq!(b.offer(0.9, SimTime::ZERO, 9), PushOutcome::Kept);
        // New item outranks the minimum: the minimum is the casualty.
        match b.offer(0.7, SimTime::ZERO, 7) {
            PushOutcome::KeptEvicting(e) => assert_eq!(e.item, 5),
            other => panic!("expected eviction, got {other:?}"),
        }
        // New item ranks lowest: it is the casualty itself.
        match b.offer(0.1, SimTime::ZERO, 1) {
            PushOutcome::Rejected(e) => assert_eq!(e.item, 1),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(b.evicted(), 2);
    }

    #[test]
    fn take_expired_returns_aged_entries() {
        let mut b = buf(10);
        b.push(0.9, SimTime::ZERO, 1);
        b.push(0.5, SimTime::ZERO, 2);
        b.push(0.7, SimTime::from_secs(8), 3);
        let gone = b.take_expired(SimTime::from_secs(11));
        let items: Vec<u32> = gone.into_iter().map(|e| e.item).collect();
        assert_eq!(items, vec![1, 2], "rank order among the expired");
        assert_eq!(b.expired(), 2);
        assert_eq!(b.len(), 1);
        assert!(b.take_expired(SimTime::from_secs(11)).is_empty());
    }

    proptest! {
        /// Pop order is always non-increasing in rank, and capacity is
        /// never exceeded.
        #[test]
        fn ordering_invariant(
            items in proptest::collection::vec((0.0f64..1.0, 0u64..5), 1..50),
            cap in 1usize..8,
        ) {
            let mut b = RankedBuffer::new(cap, SimDuration::from_secs(100));
            for (i, &(rank, t)) in items.iter().enumerate() {
                b.push(rank, SimTime::from_secs(t), i);
                prop_assert!(b.len() <= cap);
            }
            let mut last = f64::INFINITY;
            while let Some(&Ranked { rank, .. }) = b.peek_best() {
                prop_assert!(rank <= last);
                last = rank;
                b.pop_best(SimTime::from_secs(5));
            }
        }

        /// Kept entries are always the top-`cap` by rank among pushes
        /// (with ties broken by arrival, which we don't assert exactly).
        #[test]
        fn keeps_high_ranks(
            ranks in proptest::collection::vec(0.0f64..1.0, 1..40),
        ) {
            let cap = 5usize;
            let mut b = RankedBuffer::new(cap, SimDuration::from_secs(100));
            for (i, &r) in ranks.iter().enumerate() {
                b.push(r, SimTime::ZERO, i);
            }
            let mut sorted = ranks.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let threshold = sorted.get(cap.min(sorted.len()) - 1).copied().unwrap_or(0.0);
            // Every kept rank is at least the cap-th best rank.
            while let Some(e) = b.peek_best() {
                prop_assert!(e.rank >= threshold - 1e-12);
                b.pop_best(SimTime::ZERO);
            }
        }
    }
}
