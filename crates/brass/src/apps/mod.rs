//! The sample BRASS applications of §3.4 and §4.
//!
//! Each application is implemented "completely independently of the other
//! applications" as its own [`BrassApp`](crate::app::BrassApp); each took
//! "at most a few hundred JS lines of BRASS code" in production, and the
//! implementations here are comparably sized.

pub mod active_status;
pub mod likes;
pub mod lvc;
pub mod messenger;
pub mod notifications;
pub mod stories;
pub mod typing;

pub use active_status::ActiveStatusApp;
pub use likes::LikesApp;
pub use lvc::{LvcApp, LvcConfig};
pub use messenger::MessengerApp;
pub use notifications::NotificationsApp;
pub use stories::{StoriesApp, StoriesConfig};
pub use typing::TypingApp;
