//! TypingIndicator: "display dancing ellipses when a communicating
//! counterparty is typing" (§3.4).
//!
//! Update events are pushed to the device as they arrive — but, per the
//! Fig. 9 methodology, "the TypingIndicator application here … require\[s\]
//! the BRASS application to perform privacy checking and device-specific
//! transformations by making calls to backend services", so every event
//! triggers a privacy-checking WAS fetch before the (tiny) payload is
//! pushed.

use std::collections::HashMap;

use burst::json::Json;
use pylon::Topic;
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasRequest, WasResponse};
use crate::resolve::resolve;

struct StreamState {
    viewer: u64,
    topic: Topic,
}

/// The TypingIndicator BRASS application.
#[derive(Default)]
pub struct TypingApp {
    streams: HashMap<StreamKey, StreamState>,
    by_topic: HashMap<Topic, Vec<StreamKey>>,
    pending: HashMap<FetchToken, Pending>,
}

struct Pending {
    stream: StreamKey,
    uid: u64,
    typing: bool,
    created_ms: u64,
}

impl TypingApp {
    /// Creates the application.
    pub fn new() -> Self {
        TypingApp::default()
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

impl BrassApp for TypingApp {
    fn name(&self) -> &'static str {
        "typing"
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        ctx.subscribe(sub.topic);
        let watchers = self.by_topic.entry(sub.topic).or_default();
        if !watchers.contains(&stream) {
            watchers.push(stream);
        }
        self.streams.insert(
            stream,
            StreamState {
                viewer: sub.viewer,
                topic: sub.topic,
            },
        );
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::TypingChanged {
            return;
        }
        let Some(watchers) = self.by_topic.get(&event.topic) else {
            return;
        };
        let typing = event.meta.typing.unwrap_or(false);
        for key in watchers.clone() {
            let Some(state) = self.streams.get(&key) else {
                continue;
            };
            ctx.decision();
            // Privacy check + device transform via the WAS (the typer's
            // user object is the referenced TAO object).
            let token = ctx.was_request(WasRequest::FetchObject {
                viewer: state.viewer,
                object: event.object,
            });
            self.pending.insert(
                token,
                Pending {
                    stream: key,
                    uid: event.meta.uid,
                    typing,
                    created_ms: event.meta.created_ms,
                },
            );
        }
    }

    fn on_was_response(&mut self, ctx: &mut Ctx<'_>, token: FetchToken, response: WasResponse) {
        let Some(pending) = self.pending.remove(&token) else {
            return;
        };
        if !self.streams.contains_key(&pending.stream) {
            return;
        }
        match response {
            WasResponse::Payload(_) => {
                // Device-specific transform: the indicator payload is tiny.
                let payload = format!(
                    r#"{{"uid":{},"typing":{},"created_ms":{}}}"#,
                    pending.uid, pending.typing, pending.created_ms
                );
                ctx.send(pending.stream, payload.into_bytes());
            }
            WasResponse::Denied | WasResponse::NotFound => {}
            _ => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        if let Some(watchers) = self.by_topic.get_mut(&state.topic) {
            watchers.retain(|k| *k != stream);
            if watchers.is_empty() {
                self.by_topic.remove(&state.topic);
            }
        }
        // One unsubscribe per subscribe; the host refcounts topic interest.
        ctx.unsubscribe(state.topic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use tao::ObjectId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(thread: u64, counterparty: u64, viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            (
                "gql",
                Json::from(format!(
                    "subscription {{ typingIndicator(threadId: {thread}, counterpartyId: {counterparty}) }}"
                )),
            ),
        ])
    }

    fn typing_event(thread: u64, uid: u64, typing: bool) -> UpdateEvent {
        UpdateEvent {
            id: 1,
            topic: Topic::typing_indicator(thread, uid),
            object: ObjectId(uid),
            kind: EventKind::TypingChanged,
            meta: EventMeta {
                uid,
                typing: Some(typing),
                ..Default::default()
            },
        }
    }

    #[test]
    fn event_flows_through_privacy_fetch_to_device() {
        let mut d = TestDriver::new(TypingApp::new());
        let fx = d.subscribe(stream(1), &header(7, 2, 9));
        assert!(fx.contains(&Effect::SubscribeTopic(Topic::typing_indicator(7, 2))));
        let fx = d.event(&typing_event(7, 2, true));
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was {
                token,
                request: WasRequest::FetchObject { viewer, object },
            } => {
                assert_eq!(*viewer, 9);
                assert_eq!(*object, ObjectId(2));
                Some(*token)
            }
            _ => None,
        });
        let fx = d.was_response(tok.unwrap(), WasResponse::Payload(b"user".to_vec().into()));
        let sent = match &fx[0] {
            Effect::SendPayloads { payloads, .. } => {
                String::from_utf8(payloads[0].to_vec()).unwrap()
            }
            other => panic!("expected send, got {other:?}"),
        };
        assert_eq!(sent, r#"{"uid":2,"typing":true,"created_ms":0}"#);
        assert_eq!(d.counters.decisions, 1);
        assert_eq!(d.counters.deliveries, 1);
    }

    #[test]
    fn privacy_denied_drops_indicator() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        let fx = d.event(&typing_event(7, 2, true));
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was { token, .. } => Some(*token),
            _ => None,
        });
        let fx = d.was_response(tok.unwrap(), WasResponse::Denied);
        assert!(fx.is_empty());
        assert_eq!(d.counters.deliveries, 0);
    }

    #[test]
    fn events_on_other_topics_are_ignored() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        let fx = d.event(&typing_event(8, 2, true));
        assert!(fx.is_empty());
        assert_eq!(d.counters.decisions, 0);
    }

    #[test]
    fn close_balances_subscribes() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        d.subscribe(stream(2), &header(7, 2, 11));
        let fx = d.close(stream(1));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::typing_indicator(7, 2))));
        let fx = d.close(stream(2));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::typing_indicator(7, 2))));
        assert_eq!(d.app.stream_count(), 0);
    }

    #[test]
    fn stale_response_after_close_is_dropped() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        let fx = d.event(&typing_event(7, 2, false));
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was { token, .. } => Some(*token),
            _ => None,
        });
        d.close(stream(1));
        let fx = d.was_response(tok.unwrap(), WasResponse::Payload(vec![1].into()));
        assert!(fx.is_empty(), "no sends to closed streams");
    }
}
