//! TypingIndicator: "display dancing ellipses when a communicating
//! counterparty is typing" (§3.4).
//!
//! Update events are pushed to the device as they arrive — but, per the
//! Fig. 9 methodology, "the TypingIndicator application here … require\[s\]
//! the BRASS application to perform privacy checking and device-specific
//! transformations by making calls to backend services", so every event
//! triggers a privacy-checking WAS fetch before the (tiny) payload is
//! pushed.

use std::collections::HashMap;

use burst::json::Json;
use pylon::Topic;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasRequest, WasResponse};
use crate::resolve::resolve;

struct StreamState {
    viewer: u64,
    topic: Topic,
}

/// The TypingIndicator BRASS application.
#[derive(Default)]
pub struct TypingApp {
    streams: HashMap<StreamKey, StreamState>,
    by_topic: HashMap<Topic, Vec<StreamKey>>,
    pending: HashMap<FetchToken, Pending>,
}

struct Pending {
    stream: StreamKey,
    /// The TAO object the update event referenced, echoed in the pushed
    /// payload's `id` field so delivery tracing can follow the update
    /// through its device-specific transformation.
    object: u64,
    uid: u64,
    typing: bool,
    created_ms: u64,
}

impl TypingApp {
    /// Creates the application.
    pub fn new() -> Self {
        TypingApp::default()
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Writes the complete application state into a snapshot. Maps go out
    /// in sorted key order; the per-topic watcher lists are verbatim because
    /// fan-out order follows them.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let s = &self.streams[&key];
            key.snap(w);
            w.put_u64(s.viewer);
            s.topic.snap(w);
        }
        let mut topics: Vec<Topic> = self.by_topic.keys().copied().collect();
        topics.sort_unstable();
        w.put_usize(topics.len());
        for t in topics {
            t.snap(w);
            let watchers = &self.by_topic[&t];
            w.put_usize(watchers.len());
            for k in watchers {
                k.snap(w);
            }
        }
        let mut tokens: Vec<FetchToken> = self.pending.keys().copied().collect();
        tokens.sort_unstable_by_key(|t| t.0);
        w.put_usize(tokens.len());
        for t in tokens {
            let p = &self.pending[&t];
            w.put_u64(t.0);
            p.stream.snap(w);
            w.put_u64(p.object);
            w.put_u64(p.uid);
            w.put_bool(p.typing);
            w.put_u64(p.created_ms);
        }
    }

    /// Reads the application back, rejecting snapshots whose watcher lists
    /// don't line up with the stream table.
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let nstreams = r.get_len()?;
        let mut streams: HashMap<StreamKey, StreamState> = HashMap::with_capacity(nstreams);
        let mut prev: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let key = StreamKey::restore(r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid(
                    "typing: stream keys out of order".into(),
                ));
            }
            prev = Some(key);
            let viewer = r.get_u64()?;
            let topic = Topic::restore(r)?;
            streams.insert(key, StreamState { viewer, topic });
        }
        let ntopics = r.get_len()?;
        let mut by_topic: HashMap<Topic, Vec<StreamKey>> = HashMap::with_capacity(ntopics);
        let mut prev_topic: Option<Topic> = None;
        for _ in 0..ntopics {
            let t = Topic::restore(r)?;
            if prev_topic.is_some_and(|p| p >= t) {
                return Err(SnapError::Invalid("typing: topics out of order".into()));
            }
            prev_topic = Some(t);
            let nw = r.get_len()?;
            let mut watchers = Vec::with_capacity(nw);
            for _ in 0..nw {
                let k = StreamKey::restore(r)?;
                match streams.get(&k) {
                    Some(s) if s.topic == t => watchers.push(k),
                    _ => return Err(SnapError::Invalid("typing: dangling watcher".into())),
                }
            }
            by_topic.insert(t, watchers);
        }
        let npending = r.get_len()?;
        let mut pending: HashMap<FetchToken, Pending> = HashMap::with_capacity(npending);
        let mut prev_tok: Option<u64> = None;
        for _ in 0..npending {
            let tok = r.get_u64()?;
            if prev_tok.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "typing: fetch tokens out of order".into(),
                ));
            }
            prev_tok = Some(tok);
            let stream = StreamKey::restore(r)?;
            let object = r.get_u64()?;
            let uid = r.get_u64()?;
            let typing = r.get_bool()?;
            let created_ms = r.get_u64()?;
            pending.insert(
                FetchToken(tok),
                Pending {
                    stream,
                    object,
                    uid,
                    typing,
                    created_ms,
                },
            );
        }
        Ok(TypingApp {
            streams,
            by_topic,
            pending,
        })
    }
}

impl BrassApp for TypingApp {
    fn name(&self) -> &'static str {
        "typing"
    }

    fn snap(&self, w: &mut SnapWriter) {
        self.snap_state(w);
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        ctx.subscribe(sub.topic);
        let watchers = self.by_topic.entry(sub.topic).or_default();
        if !watchers.contains(&stream) {
            watchers.push(stream);
        }
        self.streams.insert(
            stream,
            StreamState {
                viewer: sub.viewer,
                topic: sub.topic,
            },
        );
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::TypingChanged {
            return;
        }
        let Some(watchers) = self.by_topic.get(&event.topic) else {
            return;
        };
        let typing = event.meta.typing.unwrap_or(false);
        for key in watchers.clone() {
            let Some(state) = self.streams.get(&key) else {
                continue;
            };
            ctx.decision();
            // Privacy check + device transform via the WAS (the typer's
            // user object is the referenced TAO object).
            let token = ctx.was_request(WasRequest::FetchObject {
                viewer: state.viewer,
                object: event.object,
            });
            self.pending.insert(
                token,
                Pending {
                    stream: key,
                    object: event.object.0,
                    uid: event.meta.uid,
                    typing,
                    created_ms: event.meta.created_ms,
                },
            );
        }
    }

    fn on_was_response(&mut self, ctx: &mut Ctx<'_>, token: FetchToken, response: WasResponse) {
        let Some(pending) = self.pending.remove(&token) else {
            return;
        };
        if !self.streams.contains_key(&pending.stream) {
            return;
        }
        match response {
            WasResponse::Payload(_) => {
                // Device-specific transform: the indicator payload is
                // tiny, but keeps the source object's `id` so the trace
                // ledger can follow the transformed update to the device.
                let payload = format!(
                    r#"{{"id":{},"uid":{},"typing":{},"created_ms":{}}}"#,
                    pending.object, pending.uid, pending.typing, pending.created_ms
                );
                ctx.send(pending.stream, payload.into_bytes());
            }
            WasResponse::Denied | WasResponse::NotFound => {}
            _ => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        if let Some(watchers) = self.by_topic.get_mut(&state.topic) {
            watchers.retain(|k| *k != stream);
            if watchers.is_empty() {
                self.by_topic.remove(&state.topic);
            }
        }
        // One unsubscribe per subscribe; the host refcounts topic interest.
        ctx.unsubscribe(state.topic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use tao::ObjectId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(thread: u64, counterparty: u64, viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            (
                "gql",
                Json::from(format!(
                    "subscription {{ typingIndicator(threadId: {thread}, counterpartyId: {counterparty}) }}"
                )),
            ),
        ])
    }

    fn typing_event(thread: u64, uid: u64, typing: bool) -> UpdateEvent {
        UpdateEvent {
            id: 1,
            topic: Topic::typing_indicator(thread, uid),
            object: ObjectId(uid),
            kind: EventKind::TypingChanged,
            meta: EventMeta {
                uid,
                typing: Some(typing),
                ..Default::default()
            },
        }
    }

    #[test]
    fn event_flows_through_privacy_fetch_to_device() {
        let mut d = TestDriver::new(TypingApp::new());
        let fx = d.subscribe(stream(1), &header(7, 2, 9));
        assert!(fx.contains(&Effect::SubscribeTopic(Topic::typing_indicator(7, 2))));
        let fx = d.event(&typing_event(7, 2, true));
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was {
                token,
                request: WasRequest::FetchObject { viewer, object },
            } => {
                assert_eq!(*viewer, 9);
                assert_eq!(*object, ObjectId(2));
                Some(*token)
            }
            _ => None,
        });
        let fx = d.was_response(tok.unwrap(), WasResponse::Payload(b"user".to_vec().into()));
        let sent = match &fx[0] {
            Effect::SendPayloads { payloads, .. } => {
                String::from_utf8(payloads[0].to_vec()).unwrap()
            }
            other => panic!("expected send, got {other:?}"),
        };
        // The payload leads with the TAO object id so downstream trace
        // attribution can resolve which update a rendered frame carries.
        assert_eq!(sent, r#"{"id":2,"uid":2,"typing":true,"created_ms":0}"#);
        assert_eq!(d.counters.decisions, 1);
        assert_eq!(d.counters.deliveries, 1);
    }

    #[test]
    fn privacy_denied_drops_indicator() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        let fx = d.event(&typing_event(7, 2, true));
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was { token, .. } => Some(*token),
            _ => None,
        });
        let fx = d.was_response(tok.unwrap(), WasResponse::Denied);
        assert!(fx.is_empty());
        assert_eq!(d.counters.deliveries, 0);
    }

    #[test]
    fn events_on_other_topics_are_ignored() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        let fx = d.event(&typing_event(8, 2, true));
        assert!(fx.is_empty());
        assert_eq!(d.counters.decisions, 0);
    }

    #[test]
    fn close_balances_subscribes() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        d.subscribe(stream(2), &header(7, 2, 11));
        let fx = d.close(stream(1));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::typing_indicator(7, 2))));
        let fx = d.close(stream(2));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::typing_indicator(7, 2))));
        assert_eq!(d.app.stream_count(), 0);
    }

    #[test]
    fn stale_response_after_close_is_dropped() {
        let mut d = TestDriver::new(TypingApp::new());
        d.subscribe(stream(1), &header(7, 2, 9));
        let fx = d.event(&typing_event(7, 2, false));
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was { token, .. } => Some(*token),
            _ => None,
        });
        d.close(stream(1));
        let fx = d.was_response(tok.unwrap(), WasResponse::Payload(vec![1].into()));
        assert!(fx.is_empty(), "no sends to closed streams");
    }
}
