//! LiveVideoComments: the application that drove Bladerunner's design.
//!
//! Per §3.4: the BRASS "maintains a ranked buffer for each stream-connected
//! device to which it adds the incoming updates after filtering them on a
//! per user basis. For the most relevant ones, BRASS fetches the comments
//! from the WAS. The highest-ranked comment in the buffer is pushed to the
//! device periodically at a prescribed rate."
//!
//! Per-viewer filters implemented here (§2): language mismatch, low ML
//! quality, stale comments (age > 10 s), and — via the WAS fetch — blocked
//! users and other privacy rules. In **hot mode** the stream additionally
//! subscribes to the per-poster overflow topics `/LVC/videoID/f-uid` for
//! each of the viewer's friends, matching the WAS-side strategy switch.

use std::collections::HashMap;

use burst::json::Json;
use pylon::Topic;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::{SimDuration, SimTime};
use simkit::trace::DropReason;
use tao::ObjectId;
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasRequest, WasResponse};
use crate::buffer::{PushOutcome, RankedBuffer};
use crate::limiter::TokenBucket;
use crate::resolve::resolve;

/// LiveVideoComments tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct LvcConfig {
    /// Ranked-buffer capacity per stream (the paper's Fig. 9 runs hold the
    /// "ranking … fixed at 5 elements").
    pub buffer_capacity: usize,
    /// Comments older than this are discarded ("comments older than n
    /// seconds become irrelevant", §2; the product chose 10 s, §5).
    pub max_comment_age: SimDuration,
    /// Per-stream push cadence ("rate limits each stream to one message
    /// every two seconds", §5).
    pub push_interval: SimDuration,
    /// Minimum ML quality score a comment needs to enter the buffer.
    pub min_quality: f64,
}

impl Default for LvcConfig {
    fn default() -> Self {
        LvcConfig {
            buffer_capacity: 5,
            max_comment_age: SimDuration::from_secs(10),
            push_interval: SimDuration::from_secs(2),
            min_quality: 0.2,
        }
    }
}

/// A buffered comment reference (the payload stays in TAO until fetched).
#[derive(Clone, Debug)]
struct BufferedComment {
    object: ObjectId,
}

struct StreamState {
    viewer: u64,
    /// Viewer language as an index into [`LvcApp::langs`] — the fleet
    /// speaks a handful of languages, so a per-stream heap `String` would
    /// repeat each of them once per watcher.
    lang: u16,
    video: u64,
    buffer: RankedBuffer<BufferedComment>,
    limiter: TokenBucket,
    friend_topics: Vec<Topic>,
    sends_since_rewrite: u32,
    /// Buffer-loss counters already converted into drop decisions.
    accounted_losses: u64,
}

/// The LiveVideoComments BRASS application.
pub struct LvcApp {
    config: LvcConfig,
    streams: HashMap<StreamKey, StreamState>,
    by_video: HashMap<u64, Vec<StreamKey>>,
    pending_fetch: HashMap<FetchToken, PendingFetch>,
    timers: HashMap<u64, StreamKey>,
    next_timer: u64,
    /// Interned viewer languages (see [`StreamState::lang`]).
    langs: Vec<Box<str>>,
}

enum PendingFetch {
    /// A popped comment awaiting its payload/privacy fetch. Carries the
    /// object so the fetch outcome can be attributed if the comment never
    /// reaches the device (privacy denial, deletion, stream teardown
    /// while the fetch was in flight).
    Comment(StreamKey, ObjectId),
    Friends(StreamKey),
}

impl LvcApp {
    /// Creates the application with the given configuration.
    pub fn new(config: LvcConfig) -> Self {
        LvcApp {
            config,
            streams: HashMap::new(),
            by_video: HashMap::new(),
            pending_fetch: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
            langs: Vec::new(),
        }
    }

    fn intern_lang(&mut self, lang: &str) -> u16 {
        if let Some(i) = self.langs.iter().position(|l| &**l == lang) {
            return i as u16;
        }
        assert!(self.langs.len() < u16::MAX as usize, "lang table overflow");
        self.langs.push(lang.into());
        (self.langs.len() - 1) as u16
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn video_of_topic(topic: &Topic) -> Option<u64> {
        let mut segs = topic.segments();
        if segs.next() != Some("LVC") {
            return None;
        }
        segs.next()?.parse().ok()
    }

    fn arm_timer(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, after: SimDuration) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, stream);
        ctx.timer(after, token);
    }

    /// Converts buffer evictions/expiries that happened since the last call
    /// into drop decisions, so the Fig. 8 decision counts include them.
    fn account_buffer_losses(state: &mut StreamState, ctx: &mut Ctx<'_>) {
        let losses = state.buffer.evicted() + state.buffer.expired();
        while state.accounted_losses < losses {
            ctx.decision();
            state.accounted_losses += 1;
        }
    }

    /// Writes the complete application state into a snapshot. Hash maps go
    /// out in sorted key order; the watcher lists and the language table are
    /// written verbatim because their order is behavior-visible (fan-out
    /// order and interned indices respectively).
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.config.buffer_capacity);
        w.put_u64(self.config.max_comment_age.as_micros());
        w.put_u64(self.config.push_interval.as_micros());
        w.put_f64(self.config.min_quality);
        w.put_usize(self.langs.len());
        for l in &self.langs {
            w.put_str(l);
        }
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let s = &self.streams[&key];
            key.snap(w);
            w.put_u64(s.viewer);
            w.put_u16(s.lang);
            w.put_u64(s.video);
            s.buffer.snap_with(w, |c, w| w.put_u64(c.object.0));
            s.limiter.snap(w);
            w.put_usize(s.friend_topics.len());
            for t in &s.friend_topics {
                t.snap(w);
            }
            w.put_u32(s.sends_since_rewrite);
            w.put_u64(s.accounted_losses);
        }
        let mut videos: Vec<u64> = self.by_video.keys().copied().collect();
        videos.sort_unstable();
        w.put_usize(videos.len());
        for v in videos {
            w.put_u64(v);
            let watchers = &self.by_video[&v];
            w.put_usize(watchers.len());
            for k in watchers {
                k.snap(w);
            }
        }
        let mut fetches: Vec<FetchToken> = self.pending_fetch.keys().copied().collect();
        fetches.sort_unstable_by_key(|t| t.0);
        w.put_usize(fetches.len());
        for t in fetches {
            w.put_u64(t.0);
            match &self.pending_fetch[&t] {
                PendingFetch::Comment(k, object) => {
                    w.put_u8(0);
                    k.snap(w);
                    w.put_u64(object.0);
                }
                PendingFetch::Friends(k) => {
                    w.put_u8(1);
                    k.snap(w);
                }
            }
        }
        let mut timers: Vec<u64> = self.timers.keys().copied().collect();
        timers.sort_unstable();
        w.put_usize(timers.len());
        for t in timers {
            w.put_u64(t);
            self.timers[&t].snap(w);
        }
        w.put_u64(self.next_timer);
    }

    /// Reads the application back, rejecting snapshots whose cross-map
    /// references (watcher lists, language indices, timer tokens) don't
    /// line up.
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let buffer_capacity = r.get_usize()?;
        let max_comment_age = SimDuration::from_micros(r.get_u64()?);
        let push_interval = SimDuration::from_micros(r.get_u64()?);
        let min_quality = r.get_f64()?;
        if buffer_capacity == 0 || !min_quality.is_finite() {
            return Err(SnapError::Invalid("lvc: bad config".into()));
        }
        let config = LvcConfig {
            buffer_capacity,
            max_comment_age,
            push_interval,
            min_quality,
        };
        let nlangs = r.get_len()?;
        let mut langs: Vec<Box<str>> = Vec::with_capacity(nlangs);
        for _ in 0..nlangs {
            langs.push(r.get_str()?.into());
        }
        let nstreams = r.get_len()?;
        let mut streams: HashMap<StreamKey, StreamState> = HashMap::with_capacity(nstreams);
        let mut prev: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let key = StreamKey::restore(r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid("lvc: stream keys out of order".into()));
            }
            prev = Some(key);
            let viewer = r.get_u64()?;
            let lang = r.get_u16()?;
            if lang as usize >= langs.len() {
                return Err(SnapError::Invalid("lvc: lang index out of range".into()));
            }
            let video = r.get_u64()?;
            let buffer = RankedBuffer::restore_with(r, |r| {
                Ok(BufferedComment {
                    object: ObjectId(r.get_u64()?),
                })
            })?;
            let limiter = TokenBucket::restore(r)?;
            let nft = r.get_len()?;
            let mut friend_topics = Vec::with_capacity(nft);
            for _ in 0..nft {
                friend_topics.push(Topic::restore(r)?);
            }
            let sends_since_rewrite = r.get_u32()?;
            let accounted_losses = r.get_u64()?;
            if accounted_losses > buffer.evicted() + buffer.expired() {
                return Err(SnapError::Invalid(
                    "lvc: accounted losses exceed losses".into(),
                ));
            }
            streams.insert(
                key,
                StreamState {
                    viewer,
                    lang,
                    video,
                    buffer,
                    limiter,
                    friend_topics,
                    sends_since_rewrite,
                    accounted_losses,
                },
            );
        }
        let nvideos = r.get_len()?;
        let mut by_video: HashMap<u64, Vec<StreamKey>> = HashMap::with_capacity(nvideos);
        let mut prev_video: Option<u64> = None;
        for _ in 0..nvideos {
            let v = r.get_u64()?;
            if prev_video.is_some_and(|p| p >= v) {
                return Err(SnapError::Invalid("lvc: video keys out of order".into()));
            }
            prev_video = Some(v);
            let nw = r.get_len()?;
            let mut watchers = Vec::with_capacity(nw);
            for _ in 0..nw {
                let k = StreamKey::restore(r)?;
                match streams.get(&k) {
                    Some(s) if s.video == v => watchers.push(k),
                    _ => return Err(SnapError::Invalid("lvc: dangling watcher".into())),
                }
            }
            by_video.insert(v, watchers);
        }
        let nfetch = r.get_len()?;
        let mut pending_fetch: HashMap<FetchToken, PendingFetch> = HashMap::with_capacity(nfetch);
        let mut prev_tok: Option<u64> = None;
        for _ in 0..nfetch {
            let tok = r.get_u64()?;
            if prev_tok.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid("lvc: fetch tokens out of order".into()));
            }
            prev_tok = Some(tok);
            let pending = match r.get_u8()? {
                0 => {
                    let k = StreamKey::restore(r)?;
                    let object = ObjectId(r.get_u64()?);
                    PendingFetch::Comment(k, object)
                }
                1 => PendingFetch::Friends(StreamKey::restore(r)?),
                _ => return Err(SnapError::Invalid("lvc: bad pending-fetch tag".into())),
            };
            pending_fetch.insert(FetchToken(tok), pending);
        }
        let ntimers = r.get_len()?;
        let mut timers: HashMap<u64, StreamKey> = HashMap::with_capacity(ntimers);
        let mut prev_timer: Option<u64> = None;
        let next_timer_floor =
            |timers: &HashMap<u64, StreamKey>| timers.keys().max().map_or(0, |m| m + 1);
        for _ in 0..ntimers {
            let tok = r.get_u64()?;
            if prev_timer.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid("lvc: timer tokens out of order".into()));
            }
            prev_timer = Some(tok);
            timers.insert(tok, StreamKey::restore(r)?);
        }
        let next_timer = r.get_u64()?;
        if next_timer < next_timer_floor(&timers) {
            return Err(SnapError::Invalid(
                "lvc: next_timer behind live timers".into(),
            ));
        }
        Ok(LvcApp {
            config,
            streams,
            by_video,
            pending_fetch,
            timers,
            next_timer,
            langs,
        })
    }
}

impl BrassApp for LvcApp {
    fn name(&self) -> &'static str {
        "lvc"
    }

    fn snap(&self, w: &mut SnapWriter) {
        self.snap_state(w);
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        let Some(video) = Self::video_of_topic(&sub.topic) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        let lang = self.intern_lang(header.get("lang").and_then(Json::as_str).unwrap_or("en"));
        // Resubscribe to a stream this instance is already serving — the
        // stream-repair path (proxy blip, failover retry) re-sends the
        // Subscribe for a connection that never left this host. The live
        // state is the resumption state: its buffer holds comments
        // admitted but not yet pushed, its limiter is fresher than the
        // header's persisted copy, and its timer chain is already armed.
        // Rebuilding from scratch here silently lost every buffered
        // comment, double-armed the pop timer, and leaked a topic
        // subscription refcount per repair.
        if let Some(existing) = self.streams.get_mut(&stream) {
            if existing.viewer == sub.viewer && existing.video == video {
                existing.lang = lang;
                return;
            }
            // Same key, different identity: the old stream is gone for
            // good. Account its buffer before replacing it, mirroring
            // `on_stream_closed`.
            let mut old = self.streams.remove(&stream).expect("checked above");
            for e in old.buffer.drain() {
                ctx.dropped(e.item.object, DropReason::DeviceDisconnected);
            }
            if let Some(watchers) = self.by_video.get_mut(&old.video) {
                watchers.retain(|k| *k != stream);
                if watchers.is_empty() {
                    self.by_video.remove(&old.video);
                }
            }
            ctx.unsubscribe(Topic::live_video_comments(old.video));
            for topic in old.friend_topics {
                ctx.unsubscribe(topic);
            }
        }
        // Resumption (§3.5): restore rate-limiter state a previous BRASS
        // stored in the header, if any.
        let limiter = TokenBucket::from_header(header)
            .unwrap_or_else(|| TokenBucket::per_interval(self.config.push_interval));

        ctx.subscribe(sub.topic);
        let hot = header.get("hot").and_then(Json::as_bool).unwrap_or(false);
        let state = StreamState {
            viewer: sub.viewer,
            lang,
            video,
            buffer: RankedBuffer::new(self.config.buffer_capacity, self.config.max_comment_age),
            limiter,
            friend_topics: Vec::new(),
            sends_since_rewrite: 0,
            accounted_losses: 0,
        };
        self.streams.insert(stream, state);
        let watchers = self.by_video.entry(video).or_default();
        if !watchers.contains(&stream) {
            // Resubscribes after failures reuse the same stream key.
            watchers.push(stream);
        }
        if hot {
            // Hot strategy: also follow per-poster topics for the viewer's
            // friends; the friend list comes from the backend.
            let token = ctx.was_request(WasRequest::Friends { uid: sub.viewer });
            self.pending_fetch
                .insert(token, PendingFetch::Friends(stream));
        }
        self.arm_timer(ctx, stream, self.config.push_interval);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::CommentPosted {
            return;
        }
        let Some(video) = Self::video_of_topic(&event.topic) else {
            return;
        };
        let Some(watchers) = self.by_video.get(&video) else {
            return;
        };
        let created = SimTime::from_millis(event.meta.created_ms);
        for key in watchers.clone() {
            let Some(state) = self.streams.get_mut(&key) else {
                continue;
            };
            // Per-viewer filtering (§2): language, quality, staleness.
            let lang_ok = event.meta.lang.as_deref().is_none_or(|l| {
                self.langs
                    .get(state.lang as usize)
                    .is_some_and(|s| l == &**s)
            });
            let fresh = ctx.now.saturating_since(created) <= self.config.max_comment_age;
            let quality_ok = event.meta.quality >= self.config.min_quality;
            if !(lang_ok && fresh && quality_ok) {
                // Attribute the first failing filter for the trace ledger.
                let reason = if !lang_ok {
                    DropReason::LanguageFilter
                } else if !fresh {
                    DropReason::Stale
                } else {
                    DropReason::QualityFilter
                };
                ctx.dropped(event.object, reason);
                ctx.decision();
                continue;
            }
            match state.buffer.offer(
                event.meta.quality,
                created,
                BufferedComment {
                    object: event.object,
                },
            ) {
                PushOutcome::KeptEvicting(e) | PushOutcome::Rejected(e) => {
                    ctx.dropped(e.item.object, DropReason::BufferOverflow);
                }
                PushOutcome::Kept => {}
            }
            Self::account_buffer_losses(state, ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(stream) = self.timers.remove(&token) else {
            return;
        };
        let push_interval = self.config.push_interval;
        let Some(state) = self.streams.get_mut(&stream) else {
            return; // Stream closed; let the timer chain die.
        };
        // Comments that aged out died waiting for the rate-limited push slot.
        for e in state.buffer.take_expired(ctx.now) {
            ctx.dropped(e.item.object, DropReason::RateLimit);
        }
        if state.limiter.try_acquire(ctx.now) {
            if let Some(comment) = state.buffer.pop_best(ctx.now) {
                // Popping is the deliver decision; the fetch decides privacy.
                ctx.decision();
                let viewer = state.viewer;
                let token = ctx.was_request(WasRequest::FetchObject {
                    viewer,
                    object: comment.object,
                });
                self.pending_fetch
                    .insert(token, PendingFetch::Comment(stream, comment.object));
            }
            if let Some(state) = self.streams.get_mut(&stream) {
                Self::account_buffer_losses(state, ctx);
            }
        }
        self.arm_timer(ctx, stream, push_interval);
    }

    fn on_was_response(&mut self, ctx: &mut Ctx<'_>, token: FetchToken, response: WasResponse) {
        match self.pending_fetch.remove(&token) {
            Some(PendingFetch::Comment(stream, object)) => {
                if !self.streams.contains_key(&stream) {
                    // The stream was torn down while the fetch was in
                    // flight; the popped comment dies here with it.
                    ctx.dropped(object, DropReason::DeviceDisconnected);
                    return;
                }
                match response {
                    WasResponse::Payload(payload) => {
                        ctx.send(stream, payload);
                        let state = self.streams.get_mut(&stream).expect("checked above");
                        state.sends_since_rewrite += 1;
                        // Periodically persist limiter state into the header
                        // so a failover BRASS continues the rate limit.
                        if state.sends_since_rewrite >= 8 {
                            state.sends_since_rewrite = 0;
                            let patch = state.limiter.to_header();
                            ctx.rewrite(stream, patch);
                        }
                    }
                    // The decision was already counted at pop; the drop
                    // still needs trace attribution or the update ledger
                    // shows unaccounted loss.
                    WasResponse::Denied => {
                        ctx.dropped(object, DropReason::PrivacyBlock);
                    }
                    WasResponse::NotFound => {
                        ctx.dropped(object, DropReason::NotFound);
                    }
                    _ => {}
                }
            }
            Some(PendingFetch::Friends(stream)) => {
                let Some(state) = self.streams.get_mut(&stream) else {
                    return;
                };
                if let WasResponse::Friends(friends) = response {
                    for f in friends {
                        let topic = Topic::live_video_comments_by(state.video, f);
                        state.friend_topics.push(topic);
                        ctx.subscribe(topic);
                    }
                }
            }
            None => {}
        }
    }

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(mut state) = self.streams.remove(&stream) else {
            return;
        };
        // Comments still buffered when the stream goes away never reach the
        // device; attribute them so their traces resolve.
        for e in state.buffer.drain() {
            ctx.dropped(e.item.object, DropReason::DeviceDisconnected);
        }
        if let Some(watchers) = self.by_video.get_mut(&state.video) {
            watchers.retain(|k| *k != stream);
            if watchers.is_empty() {
                self.by_video.remove(&state.video);
            }
        }
        // One unsubscribe per subscribe; the host's subscription manager
        // refcounts and only drops the Pylon subscription at zero.
        ctx.unsubscribe(Topic::live_video_comments(state.video));
        for topic in state.friend_topics {
            ctx.unsubscribe(topic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(video: u64, viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            (
                "gql",
                Json::from(format!(
                    "subscription {{ liveVideoComments(videoId: {video}) }}"
                )),
            ),
        ])
    }

    fn comment_event(
        video: u64,
        object: u64,
        quality: f64,
        lang: &str,
        created_ms: u64,
    ) -> UpdateEvent {
        UpdateEvent {
            id: object,
            topic: Topic::live_video_comments(video),
            object: ObjectId(object),
            kind: EventKind::CommentPosted,
            meta: EventMeta {
                uid: 1,
                quality,
                lang: Some(lang.into()),
                created_ms,
                seq: None,
                typing: None,
            },
        }
    }

    fn driver() -> TestDriver<LvcApp> {
        TestDriver::new(LvcApp::new(LvcConfig::default()))
    }

    #[test]
    fn subscribe_registers_topic_and_timer() {
        let mut d = driver();
        let fx = d.subscribe(stream(1), &header(42, 9));
        assert!(fx.contains(&Effect::SubscribeTopic(Topic::live_video_comments(42))));
        assert_eq!(d.timers().len(), 1);
        assert_eq!(d.app.stream_count(), 1);
    }

    #[test]
    fn bad_header_terminates_stream() {
        let mut d = driver();
        let fx = d.subscribe(stream(1), &Json::obj::<&str>([]));
        assert!(matches!(fx[0], Effect::SendDeltas { .. }));
        assert_eq!(d.app.stream_count(), 0);
    }

    #[test]
    fn quality_and_language_filters() {
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        // Low quality: filtered.
        d.event(&comment_event(42, 100, 0.05, "en", 0));
        // Wrong language: filtered.
        d.event(&comment_event(42, 101, 0.9, "fr", 0));
        assert_eq!(d.counters.decisions, 2);
        assert_eq!(d.counters.deliveries, 0);
        // Good comment: buffered, then delivered on the next tick.
        d.event(&comment_event(42, 102, 0.9, "en", 0));
        d.advance(SimDuration::from_secs(2));
        let (at, token) = d.timers()[0];
        assert!(at <= d.now());
        let fx = d.fire_timer(token);
        let fetch = fx.iter().find_map(|e| match e {
            Effect::Was {
                token,
                request: WasRequest::FetchObject { object, viewer },
            } => Some((*token, *object, *viewer)),
            _ => None,
        });
        let (tok, obj, viewer) = fetch.expect("tick fetches the best comment");
        assert_eq!(obj, ObjectId(102));
        assert_eq!(viewer, 9);
        let fx = d.was_response(tok, WasResponse::Payload(b"payload".to_vec().into()));
        assert!(matches!(fx[0], Effect::SendPayloads { .. }));
        assert_eq!(d.counters.deliveries, 1);
    }

    #[test]
    fn rate_limit_one_per_interval() {
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        for i in 0..10 {
            d.event(&comment_event(42, 200 + i, 0.9, "en", 0));
        }
        // First tick at t=2s delivers one fetch...
        d.advance(SimDuration::from_secs(2));
        let (_, t0) = d.timers()[0];
        let fx = d.fire_timer(t0);
        assert_eq!(
            fx.iter()
                .filter(|e| matches!(e, Effect::Was { .. }))
                .count(),
            1
        );
        // ...an immediate second tick (same instant) is rate-limited.
        let (_, t1) = *d.timers().last().unwrap();
        let fx = d.fire_timer(t1);
        assert_eq!(
            fx.iter()
                .filter(|e| matches!(e, Effect::Was { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn highest_ranked_pops_first_and_stale_expire() {
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        d.event(&comment_event(42, 300, 0.5, "en", 0));
        d.event(&comment_event(42, 301, 0.95, "en", 0));
        d.advance(SimDuration::from_secs(2));
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        let obj = fx.iter().find_map(|e| match e {
            Effect::Was {
                request: WasRequest::FetchObject { object, .. },
                ..
            } => Some(*object),
            _ => None,
        });
        assert_eq!(obj, Some(ObjectId(301)), "best quality first");
        // Let the remaining comment age out past 10s.
        d.advance(SimDuration::from_secs(12));
        let (_, t) = *d.timers().last().unwrap();
        let fx = d.fire_timer(t);
        assert!(
            !fx.iter().any(|e| matches!(e, Effect::Was { .. })),
            "stale comment must not be delivered"
        );
    }

    #[test]
    fn resubscribe_keeps_buffered_comments() {
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        d.event(&comment_event(42, 500, 0.9, "en", 0));
        // Stream repair after a proxy blip re-sends Subscribe for a
        // stream this instance is already serving: the buffered comment
        // must survive, no duplicate topic subscription may be taken,
        // and no second timer chain may be armed.
        let timers_before = d.timers().len();
        let fx = d.subscribe(stream(1), &header(42, 9));
        assert!(
            !fx.iter()
                .any(|e| matches!(e, Effect::SubscribeTopic(_) | Effect::Timer { .. })),
            "same-identity resubscribe resumes live state: {fx:?}"
        );
        assert_eq!(d.timers().len(), timers_before);
        d.advance(SimDuration::from_secs(2));
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        let obj = fx.iter().find_map(|e| match e {
            Effect::Was {
                request: WasRequest::FetchObject { object, .. },
                ..
            } => Some(*object),
            _ => None,
        });
        assert_eq!(
            obj,
            Some(ObjectId(500)),
            "buffered comment survives the resubscribe"
        );
    }

    #[test]
    fn privacy_denied_fetch_is_dropped() {
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        d.event(&comment_event(42, 400, 0.9, "en", 0));
        d.advance(SimDuration::from_secs(2));
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was { token, .. } => Some(*token),
            _ => None,
        });
        let fx = d.was_response(tok.unwrap(), WasResponse::Denied);
        // The denial never reaches the device, but the popped comment
        // must still be attributed or its trace shows unaccounted loss.
        assert!(
            !fx.iter().any(|e| matches!(e, Effect::SendPayloads { .. })),
            "denied payloads never reach the device"
        );
        assert_eq!(
            fx,
            vec![Effect::DropUpdate {
                object: ObjectId(400),
                reason: DropReason::PrivacyBlock,
            }]
        );
        assert_eq!(d.counters.deliveries, 0);
        assert_eq!(d.counters.decisions, 1);
    }

    #[test]
    fn hot_mode_subscribes_friend_overflow_topics() {
        let mut d = driver();
        let mut h = header(42, 9);
        h.set("hot", Json::from(true));
        let fx = d.subscribe(stream(1), &h);
        let tok = fx.iter().find_map(|e| match e {
            Effect::Was {
                token,
                request: WasRequest::Friends { uid },
            } => {
                assert_eq!(*uid, 9);
                Some(*token)
            }
            _ => None,
        });
        let fx = d.was_response(tok.unwrap(), WasResponse::Friends(vec![5, 6]));
        assert!(
            fx.contains(&Effect::SubscribeTopic(Topic::live_video_comments_by(
                42, 5
            )))
        );
        assert!(
            fx.contains(&Effect::SubscribeTopic(Topic::live_video_comments_by(
                42, 6
            )))
        );
    }

    #[test]
    fn close_balances_each_subscribe_with_an_unsubscribe() {
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        d.subscribe(stream(2), &header(42, 10));
        // One unsubscribe per closed stream; the host refcounts them.
        let fx = d.close(stream(1));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::live_video_comments(42))));
        let fx = d.close(stream(2));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::live_video_comments(42))));
        assert_eq!(d.app.stream_count(), 0);
    }

    #[test]
    fn limiter_state_restored_from_header() {
        // A header carrying a drained limiter should prevent an immediate
        // send after failover.
        let mut exhausted = TokenBucket::per_interval(SimDuration::from_secs(2));
        exhausted.try_acquire(SimTime::ZERO);
        let mut h = header(42, 9);
        h.merge(&exhausted.to_header());
        let mut d = driver();
        d.subscribe(stream(1), &h);
        d.event(&comment_event(42, 500, 0.9, "en", 0));
        let (_, t) = d.timers()[0];
        // Timer fires immediately at t=0: the restored limiter has no token.
        let fx = d.fire_timer(t);
        assert!(!fx.iter().any(|e| matches!(e, Effect::Was { .. })));
    }

    #[test]
    fn rewrite_persists_limiter_after_sends() {
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        let mut rewrites = 0;
        for i in 0..9u64 {
            d.event(&comment_event(42, 600 + i, 0.9, "en", d.now().as_millis()));
            d.advance(SimDuration::from_secs(2));
            let (_, t) = *d.timers().last().unwrap();
            let fx = d.fire_timer(t);
            if let Some(tok) = fx.iter().find_map(|e| match e {
                Effect::Was {
                    token,
                    request: WasRequest::FetchObject { .. },
                } => Some(*token),
                _ => None,
            }) {
                let fx = d.was_response(tok, WasResponse::Payload(vec![1].into()));
                rewrites += fx
                    .iter()
                    .filter(|e| matches!(e, Effect::SendDeltas { .. }))
                    .count();
            }
        }
        assert!(rewrites >= 1, "limiter state is periodically rewritten");
    }

    #[test]
    fn filtered_fraction_is_high_under_load() {
        // A firehose of comments against a 1-per-2s limit: the vast
        // majority must be dropped (the paper reports ~80%).
        let mut d = driver();
        d.subscribe(stream(1), &header(42, 9));
        for i in 0..200u64 {
            let ms = i * 100; // 10 comments/second for 20 seconds
            d.advance(SimDuration::from_millis(100));
            d.event(&comment_event(
                42,
                1_000 + i,
                0.3 + (i % 7) as f64 / 10.0,
                "en",
                ms,
            ));
            // Fire any due timers.
            let due: Vec<u64> = d
                .timers()
                .iter()
                .filter(|(at, _)| *at <= d.now())
                .map(|(_, t)| *t)
                .collect();
            for t in due {
                let fx = d.fire_timer(t);
                let toks: Vec<FetchToken> = fx
                    .iter()
                    .filter_map(|e| match e {
                        Effect::Was {
                            token,
                            request: WasRequest::FetchObject { .. },
                        } => Some(*token),
                        _ => None,
                    })
                    .collect();
                for tok in toks {
                    d.was_response(tok, WasResponse::Payload(vec![0].into()));
                }
            }
        }
        assert!(d.counters.decisions > 50);
        let filtered = d.counters.filtered_fraction();
        assert!(filtered > 0.5, "filtered fraction {filtered}");
    }
}
