//! WebsiteNotifications: the coalescing notification feed (§1's onboarded
//! application list).
//!
//! The distinguishing behaviour is **coalescing**: a viral post produces
//! thousands of "X liked your post" events, but the device should see
//! "X and 4,999 others liked your post" — one push. The BRASS buffers
//! incoming notification events per stream for a short window, then
//! flushes a single coalesced payload naming the first actor and the
//! total count.

use std::collections::HashMap;

use burst::json::Json;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::SimDuration;
use tao::ObjectId;
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasResponse};
use crate::resolve::resolve;

/// Coalescing window: events arriving within this span merge into one push.
pub const COALESCE_WINDOW: SimDuration = SimDuration::from_secs(4);

#[derive(Default)]
struct PendingGroup {
    /// The first actor in the window (named in the payload).
    first_actor: u64,
    /// Total events coalesced.
    count: u64,
}

struct StreamState {
    uid: u64,
    /// Pending notifications per subject object (e.g. per liked post).
    pending: HashMap<ObjectId, PendingGroup>,
    /// Whether a flush timer is armed.
    timer_armed: bool,
}

/// The WebsiteNotifications BRASS application.
#[derive(Default)]
pub struct NotificationsApp {
    streams: HashMap<StreamKey, StreamState>,
    by_uid: HashMap<u64, Vec<StreamKey>>,
    timers: HashMap<u64, StreamKey>,
    next_timer: u64,
}

impl NotificationsApp {
    /// Creates the application.
    pub fn new() -> Self {
        NotificationsApp::default()
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn uid_of_topic(topic: &pylon::Topic) -> Option<u64> {
        let mut segs = topic.segments();
        if segs.next() != Some("Notif") {
            return None;
        }
        segs.next()?.parse().ok()
    }

    fn arm_flush(&mut self, ctx: &mut Ctx<'_>, key: StreamKey) {
        let Some(state) = self.streams.get_mut(&key) else {
            return;
        };
        if state.timer_armed {
            return;
        }
        state.timer_armed = true;
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, key);
        ctx.timer(COALESCE_WINDOW, token);
    }

    /// Writes the complete application state into a snapshot. Maps go out
    /// in sorted key order; the per-uid watcher lists are verbatim because
    /// fan-out order follows them.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let s = &self.streams[&key];
            key.snap(w);
            w.put_u64(s.uid);
            let mut objects: Vec<ObjectId> = s.pending.keys().copied().collect();
            objects.sort_unstable();
            w.put_usize(objects.len());
            for o in objects {
                let g = &s.pending[&o];
                w.put_u64(o.0);
                w.put_u64(g.first_actor);
                w.put_u64(g.count);
            }
            w.put_bool(s.timer_armed);
        }
        let mut uids: Vec<u64> = self.by_uid.keys().copied().collect();
        uids.sort_unstable();
        w.put_usize(uids.len());
        for u in uids {
            w.put_u64(u);
            let watchers = &self.by_uid[&u];
            w.put_usize(watchers.len());
            for k in watchers {
                k.snap(w);
            }
        }
        let mut timers: Vec<u64> = self.timers.keys().copied().collect();
        timers.sort_unstable();
        w.put_usize(timers.len());
        for t in timers {
            w.put_u64(t);
            self.timers[&t].snap(w);
        }
        w.put_u64(self.next_timer);
    }

    /// Reads the application back, rejecting snapshots whose coalescing
    /// groups or cross-map references are inconsistent.
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let nstreams = r.get_len()?;
        let mut streams: HashMap<StreamKey, StreamState> = HashMap::with_capacity(nstreams);
        let mut prev: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let key = StreamKey::restore(r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid(
                    "notifications: stream keys out of order".into(),
                ));
            }
            prev = Some(key);
            let uid = r.get_u64()?;
            let npending = r.get_len()?;
            let mut pending: HashMap<ObjectId, PendingGroup> = HashMap::with_capacity(npending);
            let mut prev_obj: Option<u64> = None;
            for _ in 0..npending {
                let obj = r.get_u64()?;
                if prev_obj.is_some_and(|p| p >= obj) {
                    return Err(SnapError::Invalid(
                        "notifications: pending objects out of order".into(),
                    ));
                }
                prev_obj = Some(obj);
                let first_actor = r.get_u64()?;
                let count = r.get_u64()?;
                if count == 0 {
                    return Err(SnapError::Invalid(
                        "notifications: empty coalescing group".into(),
                    ));
                }
                pending.insert(ObjectId(obj), PendingGroup { first_actor, count });
            }
            let timer_armed = r.get_bool()?;
            streams.insert(
                key,
                StreamState {
                    uid,
                    pending,
                    timer_armed,
                },
            );
        }
        let nuids = r.get_len()?;
        let mut by_uid: HashMap<u64, Vec<StreamKey>> = HashMap::with_capacity(nuids);
        let mut prev_uid: Option<u64> = None;
        for _ in 0..nuids {
            let u = r.get_u64()?;
            if prev_uid.is_some_and(|p| p >= u) {
                return Err(SnapError::Invalid(
                    "notifications: uids out of order".into(),
                ));
            }
            prev_uid = Some(u);
            let nw = r.get_len()?;
            let mut watchers = Vec::with_capacity(nw);
            for _ in 0..nw {
                let k = StreamKey::restore(r)?;
                match streams.get(&k) {
                    Some(s) if s.uid == u => watchers.push(k),
                    _ => return Err(SnapError::Invalid("notifications: dangling watcher".into())),
                }
            }
            by_uid.insert(u, watchers);
        }
        let ntimers = r.get_len()?;
        let mut timers: HashMap<u64, StreamKey> = HashMap::with_capacity(ntimers);
        let mut prev_timer: Option<u64> = None;
        for _ in 0..ntimers {
            let tok = r.get_u64()?;
            if prev_timer.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "notifications: timer tokens out of order".into(),
                ));
            }
            prev_timer = Some(tok);
            timers.insert(tok, StreamKey::restore(r)?);
        }
        let next_timer = r.get_u64()?;
        if timers.keys().max().is_some_and(|m| next_timer <= *m) {
            return Err(SnapError::Invalid(
                "notifications: next_timer behind live timers".into(),
            ));
        }
        Ok(NotificationsApp {
            streams,
            by_uid,
            timers,
            next_timer,
        })
    }
}

impl BrassApp for NotificationsApp {
    fn name(&self) -> &'static str {
        "notifications"
    }

    fn snap(&self, w: &mut SnapWriter) {
        self.snap_state(w);
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        let Some(uid) = Self::uid_of_topic(&sub.topic) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        ctx.subscribe(sub.topic);
        self.streams.insert(
            stream,
            StreamState {
                uid,
                pending: HashMap::new(),
                timer_armed: false,
            },
        );
        let watchers = self.by_uid.entry(uid).or_default();
        if !watchers.contains(&stream) {
            watchers.push(stream);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::NotificationPosted {
            return;
        }
        let Some(uid) = Self::uid_of_topic(&event.topic) else {
            return;
        };
        let Some(watchers) = self.by_uid.get(&uid) else {
            return;
        };
        for key in watchers.clone() {
            if let Some(state) = self.streams.get_mut(&key) {
                ctx.decision();
                let group = state.pending.entry(event.object).or_default();
                if group.count == 0 {
                    group.first_actor = event.meta.uid;
                }
                group.count += 1;
            }
            self.arm_flush(ctx, key);
        }
    }

    fn on_was_response(&mut self, _ctx: &mut Ctx<'_>, _token: FetchToken, _response: WasResponse) {
        // Notification payloads are synthesized from event metadata.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(key) = self.timers.remove(&token) else {
            return;
        };
        let Some(state) = self.streams.get_mut(&key) else {
            return;
        };
        state.timer_armed = false;
        let mut groups: Vec<(ObjectId, PendingGroup)> = state.pending.drain().collect();
        groups.sort_by_key(|(obj, _)| *obj);
        let payloads: Vec<Vec<u8>> = groups
            .into_iter()
            .map(|(obj, g)| {
                let text = if g.count == 1 {
                    format!(
                        r#"{{"notif":"like","post":{},"actor":{}}}"#,
                        obj.0, g.first_actor
                    )
                } else {
                    format!(
                        r#"{{"notif":"like","post":{},"actor":{},"others":{}}}"#,
                        obj.0,
                        g.first_actor,
                        g.count - 1
                    )
                };
                text.into_bytes()
            })
            .collect();
        ctx.send_batch(key, payloads);
    }

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        if let Some(w) = self.by_uid.get_mut(&state.uid) {
            w.retain(|k| *k != stream);
            if w.is_empty() {
                self.by_uid.remove(&state.uid);
            }
        }
        ctx.unsubscribe(pylon::Topic::notifications(state.uid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(uid: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(uid)),
            ("gql", Json::from("subscription { notifications }")),
        ])
    }

    fn notif(owner: u64, post: u64, actor: u64) -> UpdateEvent {
        UpdateEvent {
            id: actor,
            topic: pylon::Topic::notifications(owner),
            object: ObjectId(post),
            kind: EventKind::NotificationPosted,
            meta: EventMeta {
                uid: actor,
                ..Default::default()
            },
        }
    }

    fn payloads(fx: &[Effect]) -> Vec<String> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::SendPayloads { payloads, .. } => Some(
                    payloads
                        .iter()
                        .map(|p| String::from_utf8(p.to_vec()).unwrap())
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn single_notification_flushes_after_window() {
        let mut d = TestDriver::new(NotificationsApp::new());
        d.subscribe(stream(1), &header(9));
        let fx = d.event(&notif(9, 7, 100));
        assert!(payloads(&fx).is_empty(), "buffered, not pushed immediately");
        d.advance(COALESCE_WINDOW);
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        assert_eq!(
            payloads(&fx),
            vec![r#"{"notif":"like","post":7,"actor":100}"#]
        );
    }

    #[test]
    fn burst_coalesces_into_x_and_others() {
        let mut d = TestDriver::new(NotificationsApp::new());
        d.subscribe(stream(1), &header(9));
        for actor in 0..5_000u64 {
            d.event(&notif(9, 7, 100 + actor));
        }
        d.advance(COALESCE_WINDOW);
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        assert_eq!(
            payloads(&fx),
            vec![r#"{"notif":"like","post":7,"actor":100,"others":4999}"#],
            "five thousand events -> one push"
        );
        assert_eq!(d.counters.decisions, 5_000);
        assert_eq!(d.counters.deliveries, 1);
    }

    #[test]
    fn distinct_posts_flush_separately_in_one_batch() {
        let mut d = TestDriver::new(NotificationsApp::new());
        d.subscribe(stream(1), &header(9));
        d.event(&notif(9, 7, 1));
        d.event(&notif(9, 8, 2));
        d.advance(COALESCE_WINDOW);
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        let p = payloads(&fx);
        assert_eq!(p.len(), 2, "one payload per subject post");
        assert!(p[0].contains(r#""post":7"#));
        assert!(p[1].contains(r#""post":8"#));
        assert_eq!(d.counters.deliveries, 2, "two payloads in one atomic batch");
    }

    #[test]
    fn window_restarts_after_flush() {
        let mut d = TestDriver::new(NotificationsApp::new());
        d.subscribe(stream(1), &header(9));
        d.event(&notif(9, 7, 1));
        d.advance(COALESCE_WINDOW);
        let (_, t) = d.timers()[0];
        d.fire_timer(t);
        // A later like starts a fresh window and a fresh count.
        d.event(&notif(9, 7, 2));
        d.advance(COALESCE_WINDOW);
        let (_, t) = *d.timers().last().unwrap();
        let fx = d.fire_timer(t);
        assert_eq!(
            payloads(&fx),
            vec![r#"{"notif":"like","post":7,"actor":2}"#]
        );
    }

    #[test]
    fn close_unsubscribes() {
        let mut d = TestDriver::new(NotificationsApp::new());
        d.subscribe(stream(1), &header(9));
        let fx = d.close(stream(1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::UnsubscribeTopic(t) if t.as_str() == "/Notif/9")));
    }

    #[test]
    fn events_for_other_users_ignored() {
        let mut d = TestDriver::new(NotificationsApp::new());
        d.subscribe(stream(1), &header(9));
        let fx = d.event(&notif(10, 7, 1));
        assert!(fx.is_empty());
        assert_eq!(d.counters.decisions, 0);
    }
}
