//! Messenger: reliable, in-order message delivery layered on best-effort
//! Bladerunner (§4).
//!
//! "Each time a message is added to a mailbox, it is assigned the next
//! consecutive sequence number for the mailbox. This allows dropped
//! messages to be detected both at the BRASS and at the device, although
//! BRASS will recover the dropped message so the device does not have to.
//! If the connection to the device fails, the device will resubscribe with
//! the latest sequence number it obtained, at which point the BRASS polls
//! the mailbox to obtain all subsequent messages."
//!
//! Gap handling: out-of-order events wait in a reorder buffer; a detected
//! gap triggers a mailbox backfill via the WAS. Progress is persisted into
//! the BURST header (`msgr_seq`) through rewrites, so resumption after
//! failover needs no device logic.

use std::collections::{BTreeMap, HashMap};

use burst::json::Json;
use pylon::Topic;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::SimDuration;
use tao::ObjectId;
use was::{EventKind, UpdateEvent};

use burst::frame::Payload;

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasRequest, WasResponse};
use crate::resolve::resolve;

#[derive(Clone, Debug)]
enum Slot {
    /// Event seen; payload fetch in flight.
    Fetching,
    /// Payload ready to deliver once all earlier sequences are.
    Ready(Payload),
}

struct StreamState {
    viewer: u64,
    mailbox: u64,
    topic: Topic,
    /// Next mailbox sequence number the device expects.
    next_seq: u64,
    /// Reorder buffer keyed by mailbox seq.
    pending: BTreeMap<u64, Slot>,
    /// Whether a backfill poll is currently outstanding.
    backfilling: bool,
    /// Sequence persisted in the header via the last rewrite.
    persisted_seq: Option<u64>,
}

/// How often sent-but-unacked updates are retransmitted.
pub const RETRANSMIT_INTERVAL: SimDuration = SimDuration::from_secs(5);

/// The Messenger content-delivery BRASS application.
#[derive(Default)]
pub struct MessengerApp {
    streams: HashMap<StreamKey, StreamState>,
    by_mailbox: HashMap<u64, Vec<StreamKey>>,
    pending_fetch: HashMap<FetchToken, (StreamKey, u64)>,
    pending_backfill: HashMap<FetchToken, StreamKey>,
    timers: HashMap<u64, StreamKey>,
    next_timer: u64,
}

impl MessengerApp {
    /// Creates the application.
    pub fn new() -> Self {
        MessengerApp::default()
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The next expected sequence for a stream (test observability).
    pub fn next_seq(&self, stream: StreamKey) -> Option<u64> {
        self.streams.get(&stream).map(|s| s.next_seq)
    }

    fn mailbox_of_topic(topic: &Topic) -> Option<u64> {
        let mut segs = topic.segments();
        if segs.next() != Some("Msgr") {
            return None;
        }
        segs.next()?.parse().ok()
    }

    /// Delivers every contiguous ready message starting at `next_seq`, then
    /// persists progress into the header.
    fn drain_ready(state: &mut StreamState, stream: StreamKey, ctx: &mut Ctx<'_>) {
        let mut batch: Vec<Payload> = Vec::new();
        while let Some(Slot::Ready(_)) = state.pending.get(&state.next_seq) {
            let Slot::Ready(payload) = state
                .pending
                .remove(&state.next_seq)
                .expect("checked above")
            else {
                unreachable!("matched Ready above");
            };
            batch.push(payload);
            state.next_seq += 1;
        }
        if !batch.is_empty() {
            // Resumption: persist the delivered sequence so a resubscribe
            // (to this or another BRASS) resumes rather than replays. The
            // rewrite travels in the SAME atomic batch as the payloads, so
            // a frame lost on the last mile loses the progress marker with
            // it — the next backfill re-covers exactly what was lost.
            let last = state.next_seq - 1;
            state.persisted_seq = Some(last);
            ctx.send_batch_rewriting(stream, batch, Json::obj([("msgr_seq", Json::from(last))]));
        }
    }

    fn on_timer_impl(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(stream) = self.timers.remove(&token) else {
            return;
        };
        if !self.streams.contains_key(&stream) {
            return; // Stream closed; the timer chain dies.
        }
        ctx.replay_unacked(stream);
        self.arm_retransmit(stream, ctx);
    }

    fn arm_retransmit(&mut self, stream: StreamKey, ctx: &mut Ctx<'_>) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, stream);
        ctx.timer(RETRANSMIT_INTERVAL, token);
    }

    fn start_backfill(&mut self, state_key: StreamKey, ctx: &mut Ctx<'_>) {
        let Some(state) = self.streams.get_mut(&state_key) else {
            return;
        };
        if state.backfilling {
            return;
        }
        state.backfilling = true;
        let after = state.next_seq.checked_sub(1);
        let token = ctx.was_request(WasRequest::MailboxAfter {
            uid: state.mailbox,
            after_seq: after,
        });
        self.pending_backfill.insert(token, state_key);
    }

    /// Writes the complete application state into a snapshot. Hash maps go
    /// out in sorted key order (the reorder buffer is a BTreeMap, already
    /// ordered); the per-mailbox watcher lists are verbatim because fan-out
    /// order follows them.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let s = &self.streams[&key];
            key.snap(w);
            w.put_u64(s.viewer);
            w.put_u64(s.mailbox);
            s.topic.snap(w);
            w.put_u64(s.next_seq);
            w.put_usize(s.pending.len());
            for (seq, slot) in &s.pending {
                w.put_u64(*seq);
                match slot {
                    Slot::Fetching => w.put_u8(0),
                    Slot::Ready(p) => {
                        w.put_u8(1);
                        w.put_bytes(p);
                    }
                }
            }
            w.put_bool(s.backfilling);
            match s.persisted_seq {
                None => w.put_u8(0),
                Some(seq) => {
                    w.put_u8(1);
                    w.put_u64(seq);
                }
            }
        }
        let mut mailboxes: Vec<u64> = self.by_mailbox.keys().copied().collect();
        mailboxes.sort_unstable();
        w.put_usize(mailboxes.len());
        for m in mailboxes {
            w.put_u64(m);
            let watchers = &self.by_mailbox[&m];
            w.put_usize(watchers.len());
            for k in watchers {
                k.snap(w);
            }
        }
        let mut tokens: Vec<FetchToken> = self.pending_fetch.keys().copied().collect();
        tokens.sort_unstable_by_key(|t| t.0);
        w.put_usize(tokens.len());
        for t in tokens {
            let (stream, seq) = &self.pending_fetch[&t];
            w.put_u64(t.0);
            stream.snap(w);
            w.put_u64(*seq);
        }
        let mut tokens: Vec<FetchToken> = self.pending_backfill.keys().copied().collect();
        tokens.sort_unstable_by_key(|t| t.0);
        w.put_usize(tokens.len());
        for t in tokens {
            w.put_u64(t.0);
            self.pending_backfill[&t].snap(w);
        }
        let mut timers: Vec<u64> = self.timers.keys().copied().collect();
        timers.sort_unstable();
        w.put_usize(timers.len());
        for t in timers {
            w.put_u64(t);
            self.timers[&t].snap(w);
        }
        w.put_u64(self.next_timer);
    }

    /// Reads the application back, rejecting snapshots whose reorder buffer
    /// or cross-map references are inconsistent.
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let nstreams = r.get_len()?;
        let mut streams: HashMap<StreamKey, StreamState> = HashMap::with_capacity(nstreams);
        let mut prev: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let key = StreamKey::restore(r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid(
                    "messenger: stream keys out of order".into(),
                ));
            }
            prev = Some(key);
            let viewer = r.get_u64()?;
            let mailbox = r.get_u64()?;
            let topic = Topic::restore(r)?;
            let next_seq = r.get_u64()?;
            let npending = r.get_len()?;
            let mut pending: BTreeMap<u64, Slot> = BTreeMap::new();
            let mut prev_seq: Option<u64> = None;
            for _ in 0..npending {
                let seq = r.get_u64()?;
                if prev_seq.is_some_and(|p| p >= seq) {
                    return Err(SnapError::Invalid(
                        "messenger: reorder buffer out of order".into(),
                    ));
                }
                prev_seq = Some(seq);
                if seq < next_seq {
                    return Err(SnapError::Invalid(
                        "messenger: buffered seq behind next_seq".into(),
                    ));
                }
                let slot = match r.get_u8()? {
                    0 => Slot::Fetching,
                    1 => Slot::Ready(r.get_bytes()?.into()),
                    _ => return Err(SnapError::Invalid("messenger: bad slot tag".into())),
                };
                pending.insert(seq, slot);
            }
            let backfilling = r.get_bool()?;
            let persisted_seq = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u64()?),
                _ => return Err(SnapError::Invalid("messenger: bad option tag".into())),
            };
            streams.insert(
                key,
                StreamState {
                    viewer,
                    mailbox,
                    topic,
                    next_seq,
                    pending,
                    backfilling,
                    persisted_seq,
                },
            );
        }
        let nmail = r.get_len()?;
        let mut by_mailbox: HashMap<u64, Vec<StreamKey>> = HashMap::with_capacity(nmail);
        let mut prev_mail: Option<u64> = None;
        for _ in 0..nmail {
            let m = r.get_u64()?;
            if prev_mail.is_some_and(|p| p >= m) {
                return Err(SnapError::Invalid(
                    "messenger: mailboxes out of order".into(),
                ));
            }
            prev_mail = Some(m);
            let nw = r.get_len()?;
            let mut watchers = Vec::with_capacity(nw);
            for _ in 0..nw {
                let k = StreamKey::restore(r)?;
                match streams.get(&k) {
                    Some(s) if s.mailbox == m => watchers.push(k),
                    _ => return Err(SnapError::Invalid("messenger: dangling watcher".into())),
                }
            }
            by_mailbox.insert(m, watchers);
        }
        let nfetch = r.get_len()?;
        let mut pending_fetch: HashMap<FetchToken, (StreamKey, u64)> =
            HashMap::with_capacity(nfetch);
        let mut prev_tok: Option<u64> = None;
        for _ in 0..nfetch {
            let tok = r.get_u64()?;
            if prev_tok.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "messenger: fetch tokens out of order".into(),
                ));
            }
            prev_tok = Some(tok);
            let stream = StreamKey::restore(r)?;
            let seq = r.get_u64()?;
            pending_fetch.insert(FetchToken(tok), (stream, seq));
        }
        let nback = r.get_len()?;
        let mut pending_backfill: HashMap<FetchToken, StreamKey> = HashMap::with_capacity(nback);
        let mut prev_tok: Option<u64> = None;
        for _ in 0..nback {
            let tok = r.get_u64()?;
            if prev_tok.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "messenger: backfill tokens out of order".into(),
                ));
            }
            prev_tok = Some(tok);
            pending_backfill.insert(FetchToken(tok), StreamKey::restore(r)?);
        }
        let ntimers = r.get_len()?;
        let mut timers: HashMap<u64, StreamKey> = HashMap::with_capacity(ntimers);
        let mut prev_timer: Option<u64> = None;
        for _ in 0..ntimers {
            let tok = r.get_u64()?;
            if prev_timer.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "messenger: timer tokens out of order".into(),
                ));
            }
            prev_timer = Some(tok);
            timers.insert(tok, StreamKey::restore(r)?);
        }
        let next_timer = r.get_u64()?;
        if timers.keys().max().is_some_and(|m| next_timer <= *m) {
            return Err(SnapError::Invalid(
                "messenger: next_timer behind live timers".into(),
            ));
        }
        Ok(MessengerApp {
            streams,
            by_mailbox,
            pending_fetch,
            pending_backfill,
            timers,
            next_timer,
        })
    }
}

impl BrassApp for MessengerApp {
    fn name(&self) -> &'static str {
        "messenger"
    }

    fn snap(&self, w: &mut SnapWriter) {
        self.snap_state(w);
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        let Some(mailbox) = Self::mailbox_of_topic(&sub.topic) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        // Resumption: the header may carry the last sequence the device
        // received (installed by a previous BRASS via rewrite).
        let next_seq = header
            .get("msgr_seq")
            .and_then(Json::as_u64)
            .map(|s| s + 1)
            .unwrap_or(0);
        ctx.subscribe(sub.topic);
        self.streams.insert(
            stream,
            StreamState {
                viewer: sub.viewer,
                mailbox,
                topic: sub.topic,
                next_seq,
                pending: BTreeMap::new(),
                backfilling: false,
                persisted_seq: header.get("msgr_seq").and_then(Json::as_u64),
            },
        );
        let watchers = self.by_mailbox.entry(mailbox).or_default();
        if !watchers.contains(&stream) {
            watchers.push(stream);
        }
        // Catch up on anything missed while disconnected.
        self.start_backfill(stream, ctx);
        // Retransmission loop: unacked updates are replayed until acked
        // (the device's duplicate suppression makes this idempotent).
        self.arm_retransmit(stream, ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::MessageAdded {
            return;
        }
        let Some(mailbox) = Self::mailbox_of_topic(&event.topic) else {
            return;
        };
        let Some(seq) = event.meta.seq else {
            return;
        };
        let Some(watchers) = self.by_mailbox.get(&mailbox) else {
            return;
        };
        let mut fetches: Vec<(StreamKey, u64, u64, ObjectId)> = Vec::new();
        let mut gaps: Vec<StreamKey> = Vec::new();
        for key in watchers.clone() {
            let Some(state) = self.streams.get_mut(&key) else {
                continue;
            };
            ctx.decision();
            if seq < state.next_seq || state.pending.contains_key(&seq) {
                continue; // Duplicate.
            }
            state.pending.insert(seq, Slot::Fetching);
            fetches.push((key, seq, state.viewer, event.object));
            if seq > state.next_seq {
                // A gap: events for the missing range may have been dropped
                // by best-effort Pylon. Poll the mailbox to recover them —
                // the BRASS recovers so the device does not have to.
                gaps.push(key);
            }
        }
        for (key, seq, viewer, object) in fetches {
            let token = ctx.was_request(WasRequest::FetchObject { viewer, object });
            self.pending_fetch.insert(token, (key, seq));
        }
        for key in gaps {
            self.start_backfill(key, ctx);
        }
    }

    fn on_was_response(&mut self, ctx: &mut Ctx<'_>, token: FetchToken, response: WasResponse) {
        if let Some((stream, seq)) = self.pending_fetch.remove(&token) {
            let Some(state) = self.streams.get_mut(&stream) else {
                return;
            };
            match response {
                WasResponse::Payload(payload) => {
                    if let Some(slot) = state.pending.get_mut(&seq) {
                        *slot = Slot::Ready(payload);
                    }
                    Self::drain_ready(state, stream, ctx);
                }
                _ => {
                    // Denied/missing content: skip this seq so the stream
                    // does not stall forever.
                    state.pending.remove(&seq);
                    if state.next_seq == seq {
                        state.next_seq += 1;
                        Self::drain_ready(state, stream, ctx);
                    }
                }
            }
            return;
        }
        if let Some(stream) = self.pending_backfill.remove(&token) {
            let Some(state) = self.streams.get_mut(&stream) else {
                return;
            };
            state.backfilling = false;
            if let WasResponse::Mailbox(entries) = response {
                let mut fetches = Vec::new();
                for (seq, object) in entries {
                    if seq >= state.next_seq && !state.pending.contains_key(&seq) {
                        state.pending.insert(seq, Slot::Fetching);
                        fetches.push((seq, state.viewer, object));
                    }
                }
                for (seq, viewer, object) in fetches {
                    let token = ctx.was_request(WasRequest::FetchObject { viewer, object });
                    self.pending_fetch.insert(token, (stream, seq));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.on_timer_impl(ctx, token);
    }

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        if let Some(w) = self.by_mailbox.get_mut(&state.mailbox) {
            w.retain(|k| *k != stream);
            if w.is_empty() {
                self.by_mailbox.remove(&state.mailbox);
            }
        }
        // One unsubscribe per subscribe; the host refcounts topic interest.
        ctx.unsubscribe(state.topic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(mailbox: u64, viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            (
                "gql",
                Json::from(format!("subscription {{ mailbox(uid: {mailbox}) }}")),
            ),
        ])
    }

    fn msg_event(mailbox: u64, seq: u64, object: u64) -> UpdateEvent {
        UpdateEvent {
            id: object,
            topic: Topic::messenger_mailbox(mailbox),
            object: ObjectId(object),
            kind: EventKind::MessageAdded,
            meta: EventMeta {
                uid: 1,
                seq: Some(seq),
                ..Default::default()
            },
        }
    }

    /// Subscribes and resolves the initial (empty) backfill.
    fn subscribe_empty(d: &mut TestDriver<MessengerApp>, s: StreamKey, mailbox: u64) {
        let fx = d.subscribe(s, &header(mailbox, 9));
        let tok = fx
            .iter()
            .find_map(|e| match e {
                Effect::Was {
                    token,
                    request: WasRequest::MailboxAfter { .. },
                } => Some(*token),
                _ => None,
            })
            .expect("subscribe triggers catch-up backfill");
        d.was_response(tok, WasResponse::Mailbox(vec![]));
    }

    fn fetch_tokens(fx: &[Effect]) -> Vec<FetchToken> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::Was {
                    token,
                    request: WasRequest::FetchObject { .. },
                } => Some(*token),
                _ => None,
            })
            .collect()
    }

    fn sent(fx: &[Effect]) -> Vec<String> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::SendPayloads { payloads, .. } => Some(
                    payloads
                        .iter()
                        .map(|p| String::from_utf8(p.to_vec()).unwrap())
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn in_order_messages_flow_through() {
        let mut d = TestDriver::new(MessengerApp::new());
        subscribe_empty(&mut d, stream(1), 7);
        for seq in 0..3u64 {
            let fx = d.event(&msg_event(7, seq, 100 + seq));
            let toks = fetch_tokens(&fx);
            let fx = d.was_response(
                toks[0],
                WasResponse::Payload(format!("m{seq}").into_bytes().into()),
            );
            assert_eq!(sent(&fx), vec![format!("m{seq}")]);
        }
        assert_eq!(d.app.next_seq(stream(1)), Some(3));
        assert_eq!(d.counters.deliveries, 3);
    }

    #[test]
    fn out_of_order_fetches_deliver_in_order() {
        let mut d = TestDriver::new(MessengerApp::new());
        subscribe_empty(&mut d, stream(1), 7);
        let fx0 = d.event(&msg_event(7, 0, 100));
        let t0 = fetch_tokens(&fx0)[0];
        let fx1 = d.event(&msg_event(7, 1, 101));
        let t1 = fetch_tokens(&fx1)[0];
        // Fetch for seq 1 completes first: nothing is sent yet.
        let fx = d.was_response(t1, WasResponse::Payload(b"m1".to_vec().into()));
        assert!(sent(&fx).is_empty(), "seq 1 must wait for seq 0");
        // Seq 0 completes: both flush, in order, in one batch.
        let fx = d.was_response(t0, WasResponse::Payload(b"m0".to_vec().into()));
        assert_eq!(sent(&fx), vec!["m0", "m1"]);
    }

    #[test]
    fn gap_triggers_mailbox_backfill() {
        let mut d = TestDriver::new(MessengerApp::new());
        subscribe_empty(&mut d, stream(1), 7);
        // Seq 0 never arrives (dropped by best-effort Pylon); seq 2 shows up.
        let fx = d.event(&msg_event(7, 2, 102));
        let backfill = fx.iter().find_map(|e| match e {
            Effect::Was {
                token,
                request: WasRequest::MailboxAfter { uid, after_seq },
            } => {
                assert_eq!(*uid, 7);
                assert_eq!(*after_seq, None, "nothing delivered yet");
                Some(*token)
            }
            _ => None,
        });
        let backfill = backfill.expect("gap must trigger a backfill");
        // The mailbox has the dropped messages 0 and 1 (and 2, deduped).
        let fx = d.was_response(
            backfill,
            WasResponse::Mailbox(vec![
                (0, ObjectId(100)),
                (1, ObjectId(101)),
                (2, ObjectId(102)),
            ]),
        );
        let toks = fetch_tokens(&fx);
        assert_eq!(toks.len(), 2, "seq 2 is already being fetched: {toks:?}");
        // Resolve all three fetches (2 was requested by the event).
        let all_effects = d.effects.clone();
        let ev_tok = fetch_tokens(&all_effects)[0];
        d.was_response(ev_tok, WasResponse::Payload(b"m2".to_vec().into()));
        d.was_response(toks[0], WasResponse::Payload(b"m0".to_vec().into()));
        let fx = d.was_response(toks[1], WasResponse::Payload(b"m1".to_vec().into()));
        assert_eq!(
            sent(&fx),
            vec!["m1", "m2"],
            "m0 flushed earlier, rest in order"
        );
        assert_eq!(d.app.next_seq(stream(1)), Some(3));
    }

    #[test]
    fn resumption_from_header_seq() {
        let mut d = TestDriver::new(MessengerApp::new());
        let mut h = header(7, 9);
        h.set("msgr_seq", Json::from(4u64));
        let fx = d.subscribe(stream(1), &h);
        let tok = fx
            .iter()
            .find_map(|e| match e {
                Effect::Was {
                    token,
                    request: WasRequest::MailboxAfter { after_seq, .. },
                } => {
                    assert_eq!(*after_seq, Some(4), "backfill starts after persisted seq");
                    Some(*token)
                }
                _ => None,
            })
            .unwrap();
        d.was_response(tok, WasResponse::Mailbox(vec![]));
        assert_eq!(d.app.next_seq(stream(1)), Some(5));
        // Old (already seen) events are dropped as duplicates.
        let fx = d.event(&msg_event(7, 3, 103));
        assert!(fetch_tokens(&fx).is_empty());
    }

    #[test]
    fn progress_rewrites_header() {
        let mut d = TestDriver::new(MessengerApp::new());
        subscribe_empty(&mut d, stream(1), 7);
        let fx = d.event(&msg_event(7, 0, 100));
        let t = fetch_tokens(&fx)[0];
        let fx = d.was_response(t, WasResponse::Payload(b"m0".to_vec().into()));
        // The rewrite rides in the same atomic batch as the payloads.
        let rewrite = fx.iter().find_map(|e| match e {
            Effect::SendPayloads {
                rewrite: Some(patch),
                ..
            } => patch.get("msgr_seq").and_then(Json::as_u64),
            _ => None,
        });
        assert_eq!(rewrite, Some(0), "delivered seq persisted via rewrite");
    }

    #[test]
    fn denied_message_does_not_stall_stream() {
        let mut d = TestDriver::new(MessengerApp::new());
        subscribe_empty(&mut d, stream(1), 7);
        let fx = d.event(&msg_event(7, 0, 100));
        let t0 = fetch_tokens(&fx)[0];
        let fx = d.event(&msg_event(7, 1, 101));
        let t1 = fetch_tokens(&fx)[0];
        d.was_response(t1, WasResponse::Payload(b"m1".to_vec().into()));
        // Seq 0 is privacy-denied: skipped, and m1 flushes.
        let fx = d.was_response(t0, WasResponse::Denied);
        assert_eq!(sent(&fx), vec!["m1"]);
        assert_eq!(d.app.next_seq(stream(1)), Some(2));
    }

    #[test]
    fn close_unsubscribes_mailbox() {
        let mut d = TestDriver::new(MessengerApp::new());
        subscribe_empty(&mut d, stream(1), 7);
        let fx = d.close(stream(1));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::messenger_mailbox(7))));
    }
}
