//! ActiveStatus: "display the online status of a user's friends" (§3.4).
//!
//! One device subscribe fans into many Pylon subscriptions (one `/Status/
//! f-uid` per friend). The BRASS maintains a per-stream map of online
//! friends with a 30-second TTL and "periodically pushes a batch update to
//! the device. Pushing batches only periodically prevents the device from
//! receiving too many updates."

use std::collections::HashMap;

use burst::json::Json;
use pylon::Topic;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::{SimDuration, SimTime};
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasRequest, WasResponse};
use crate::resolve::resolve;

/// Online-status TTL: a friend is online if they pinged within this window
/// (devices refresh "every 30 seconds when online").
pub const ONLINE_TTL: SimDuration = SimDuration::from_secs(30);

/// Cadence of batched pushes to each device.
pub const BATCH_INTERVAL: SimDuration = SimDuration::from_secs(10);

struct StreamState {
    friend_topics: Vec<Topic>,
    /// friend uid → last time they reported online.
    online: HashMap<u64, SimTime>,
    /// Snapshot sent in the previous batch (dedupe no-change batches).
    last_sent: Vec<u64>,
}

/// The ActiveStatus BRASS application.
#[derive(Default)]
pub struct ActiveStatusApp {
    streams: HashMap<StreamKey, StreamState>,
    /// friend uid → streams watching that friend.
    pub(crate) watchers: HashMap<u64, Vec<StreamKey>>,
    pending_friends: HashMap<FetchToken, StreamKey>,
    timers: HashMap<u64, StreamKey>,
    next_timer: u64,
}

impl ActiveStatusApp {
    /// Creates the application.
    pub fn new() -> Self {
        ActiveStatusApp::default()
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn arm_timer(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(token, stream);
        ctx.timer(BATCH_INTERVAL, token);
    }

    fn uid_of_status_topic(topic: &Topic) -> Option<u64> {
        let mut segs = topic.segments();
        if segs.next() != Some("Status") {
            return None;
        }
        segs.next()?.parse().ok()
    }

    fn online_snapshot(state: &StreamState, now: SimTime) -> Vec<u64> {
        let mut online: Vec<u64> = state
            .online
            .iter()
            .filter(|(_, &at)| now.saturating_since(at) <= ONLINE_TTL)
            .map(|(&uid, _)| uid)
            .collect();
        online.sort_unstable();
        online
    }

    /// Writes the complete application state into a snapshot. Maps go out
    /// in sorted key order; `friend_topics` and `last_sent` are verbatim —
    /// the former drives unsubscribe order, the latter is device-visible.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let s = &self.streams[&key];
            key.snap(w);
            w.put_usize(s.friend_topics.len());
            for t in &s.friend_topics {
                t.snap(w);
            }
            let mut uids: Vec<u64> = s.online.keys().copied().collect();
            uids.sort_unstable();
            w.put_usize(uids.len());
            for uid in uids {
                w.put_u64(uid);
                w.put_u64(s.online[&uid].as_micros());
            }
            w.put_usize(s.last_sent.len());
            for uid in &s.last_sent {
                w.put_u64(*uid);
            }
        }
        let mut friends: Vec<u64> = self.watchers.keys().copied().collect();
        friends.sort_unstable();
        w.put_usize(friends.len());
        for f in friends {
            w.put_u64(f);
            let watchers = &self.watchers[&f];
            w.put_usize(watchers.len());
            for k in watchers {
                k.snap(w);
            }
        }
        let mut tokens: Vec<FetchToken> = self.pending_friends.keys().copied().collect();
        tokens.sort_unstable_by_key(|t| t.0);
        w.put_usize(tokens.len());
        for t in tokens {
            w.put_u64(t.0);
            self.pending_friends[&t].snap(w);
        }
        let mut timers: Vec<u64> = self.timers.keys().copied().collect();
        timers.sort_unstable();
        w.put_usize(timers.len());
        for t in timers {
            w.put_u64(t);
            self.timers[&t].snap(w);
        }
        w.put_u64(self.next_timer);
    }

    /// Reads the application back, rejecting snapshots with dangling
    /// watcher entries or a timer counter behind its live tokens.
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let nstreams = r.get_len()?;
        let mut streams: HashMap<StreamKey, StreamState> = HashMap::with_capacity(nstreams);
        let mut prev: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let key = StreamKey::restore(r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid(
                    "active_status: stream keys out of order".into(),
                ));
            }
            prev = Some(key);
            let nft = r.get_len()?;
            let mut friend_topics = Vec::with_capacity(nft);
            for _ in 0..nft {
                friend_topics.push(Topic::restore(r)?);
            }
            let nonline = r.get_len()?;
            let mut online: HashMap<u64, SimTime> = HashMap::with_capacity(nonline);
            let mut prev_uid: Option<u64> = None;
            for _ in 0..nonline {
                let uid = r.get_u64()?;
                if prev_uid.is_some_and(|p| p >= uid) {
                    return Err(SnapError::Invalid(
                        "active_status: online uids out of order".into(),
                    ));
                }
                prev_uid = Some(uid);
                online.insert(uid, SimTime::from_micros(r.get_u64()?));
            }
            let nsent = r.get_len()?;
            let mut last_sent = Vec::with_capacity(nsent);
            for _ in 0..nsent {
                last_sent.push(r.get_u64()?);
            }
            streams.insert(
                key,
                StreamState {
                    friend_topics,
                    online,
                    last_sent,
                },
            );
        }
        let nwatch = r.get_len()?;
        let mut watchers: HashMap<u64, Vec<StreamKey>> = HashMap::with_capacity(nwatch);
        let mut prev_friend: Option<u64> = None;
        for _ in 0..nwatch {
            let f = r.get_u64()?;
            if prev_friend.is_some_and(|p| p >= f) {
                return Err(SnapError::Invalid(
                    "active_status: watcher uids out of order".into(),
                ));
            }
            prev_friend = Some(f);
            let nw = r.get_len()?;
            let mut list = Vec::with_capacity(nw);
            for _ in 0..nw {
                let k = StreamKey::restore(r)?;
                if !streams.contains_key(&k) {
                    return Err(SnapError::Invalid("active_status: dangling watcher".into()));
                }
                list.push(k);
            }
            watchers.insert(f, list);
        }
        let npending = r.get_len()?;
        let mut pending_friends: HashMap<FetchToken, StreamKey> = HashMap::with_capacity(npending);
        let mut prev_tok: Option<u64> = None;
        for _ in 0..npending {
            let tok = r.get_u64()?;
            if prev_tok.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "active_status: fetch tokens out of order".into(),
                ));
            }
            prev_tok = Some(tok);
            pending_friends.insert(FetchToken(tok), StreamKey::restore(r)?);
        }
        let ntimers = r.get_len()?;
        let mut timers: HashMap<u64, StreamKey> = HashMap::with_capacity(ntimers);
        let mut prev_timer: Option<u64> = None;
        for _ in 0..ntimers {
            let tok = r.get_u64()?;
            if prev_timer.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "active_status: timer tokens out of order".into(),
                ));
            }
            prev_timer = Some(tok);
            timers.insert(tok, StreamKey::restore(r)?);
        }
        let next_timer = r.get_u64()?;
        if timers.keys().max().is_some_and(|m| next_timer <= *m) {
            return Err(SnapError::Invalid(
                "active_status: next_timer behind live timers".into(),
            ));
        }
        Ok(ActiveStatusApp {
            streams,
            watchers,
            pending_friends,
            timers,
            next_timer,
        })
    }
}

impl BrassApp for ActiveStatusApp {
    fn name(&self) -> &'static str {
        "active_status"
    }

    fn snap(&self, w: &mut SnapWriter) {
        self.snap_state(w);
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        self.streams.insert(
            stream,
            StreamState {
                friend_topics: Vec::new(),
                online: HashMap::new(),
                last_sent: Vec::new(),
            },
        );
        // One device subscribe → many BRASS subscriptions: fetch the friend
        // list, then subscribe per friend.
        let token = ctx.was_request(WasRequest::Friends { uid: sub.viewer });
        self.pending_friends.insert(token, stream);
        self.arm_timer(ctx, stream);
    }

    fn on_was_response(&mut self, ctx: &mut Ctx<'_>, token: FetchToken, response: WasResponse) {
        let Some(stream) = self.pending_friends.remove(&token) else {
            return;
        };
        let Some(state) = self.streams.get_mut(&stream) else {
            return;
        };
        if let WasResponse::Friends(friends) = response {
            for f in friends {
                let topic = Topic::active_status(f);
                if !state.friend_topics.contains(&topic) {
                    state.friend_topics.push(topic);
                }
                let w = self.watchers.entry(f).or_default();
                if !w.contains(&stream) {
                    w.push(stream);
                }
                ctx.subscribe(topic);
            }
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::StatusOnline {
            return;
        }
        let Some(friend) = Self::uid_of_status_topic(&event.topic) else {
            return;
        };
        let Some(watchers) = self.watchers.get(&friend) else {
            return;
        };
        for key in watchers.clone() {
            let Some(state) = self.streams.get_mut(&key) else {
                continue;
            };
            ctx.decision();
            state.online.insert(friend, ctx.now);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(stream) = self.timers.remove(&token) else {
            return;
        };
        let Some(state) = self.streams.get_mut(&stream) else {
            return;
        };
        let online = Self::online_snapshot(state, ctx.now);
        if online != state.last_sent {
            let payload = format!(
                r#"{{"online":[{}]}}"#,
                online
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            state.last_sent = online;
            ctx.send(stream, payload.into_bytes());
        }
        // Garbage-collect expired entries.
        let now = ctx.now;
        state
            .online
            .retain(|_, at| now.saturating_since(*at) <= ONLINE_TTL);
        self.arm_timer(ctx, stream);
    }

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        for topic in &state.friend_topics {
            if let Some(uid) = Self::uid_of_status_topic(topic) {
                if let Some(w) = self.watchers.get_mut(&uid) {
                    w.retain(|k| *k != stream);
                    if w.is_empty() {
                        self.watchers.remove(&uid);
                    }
                }
            }
            // One unsubscribe per per-friend subscribe; host refcounts.
            ctx.unsubscribe(*topic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use tao::ObjectId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            ("gql", Json::from("subscription { activeStatus }")),
        ])
    }

    fn status_event(uid: u64) -> UpdateEvent {
        UpdateEvent {
            id: 1,
            topic: Topic::active_status(uid),
            object: ObjectId(uid),
            kind: EventKind::StatusOnline,
            meta: EventMeta {
                uid,
                ..Default::default()
            },
        }
    }

    fn subscribe_with_friends(
        d: &mut TestDriver<ActiveStatusApp>,
        s: StreamKey,
        viewer: u64,
        friends: Vec<u64>,
    ) {
        let fx = d.subscribe(s, &header(viewer));
        let tok = fx
            .iter()
            .find_map(|e| match e {
                Effect::Was {
                    token,
                    request: WasRequest::Friends { .. },
                } => Some(*token),
                _ => None,
            })
            .expect("subscribe fetches friends");
        d.was_response(tok, WasResponse::Friends(friends));
    }

    #[test]
    fn one_subscribe_fans_into_many_topics() {
        let mut d = TestDriver::new(ActiveStatusApp::new());
        subscribe_with_friends(&mut d, stream(1), 9, vec![5, 6, 7]);
        for f in [5, 6, 7] {
            assert!(d
                .effects
                .contains(&Effect::SubscribeTopic(Topic::active_status(f))));
        }
    }

    #[test]
    fn batches_online_friends_periodically() {
        let mut d = TestDriver::new(ActiveStatusApp::new());
        subscribe_with_friends(&mut d, stream(1), 9, vec![5, 6]);
        d.event(&status_event(5));
        d.event(&status_event(6));
        d.advance(BATCH_INTERVAL);
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        let payload = fx
            .iter()
            .find_map(|e| match e {
                Effect::SendPayloads { payloads, .. } => {
                    Some(String::from_utf8(payloads[0].to_vec()).unwrap())
                }
                _ => None,
            })
            .expect("batch pushed");
        assert_eq!(payload, r#"{"online":[5,6]}"#);
        // Many events, one delivery: that is the point of batching.
        assert_eq!(d.counters.decisions, 2);
        assert_eq!(d.counters.deliveries, 1);
    }

    #[test]
    fn unchanged_snapshot_is_not_resent() {
        let mut d = TestDriver::new(ActiveStatusApp::new());
        subscribe_with_friends(&mut d, stream(1), 9, vec![5]);
        d.event(&status_event(5));
        d.advance(BATCH_INTERVAL);
        let (_, t) = d.timers()[0];
        assert_eq!(
            d.fire_timer(t)
                .iter()
                .filter(|e| matches!(e, Effect::SendPayloads { .. }))
                .count(),
            1
        );
        // Refresh within TTL, snapshot identical → no resend.
        d.event(&status_event(5));
        d.advance(BATCH_INTERVAL);
        let (_, t) = *d.timers().last().unwrap();
        assert_eq!(
            d.fire_timer(t)
                .iter()
                .filter(|e| matches!(e, Effect::SendPayloads { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn ttl_expires_offline_friends() {
        let mut d = TestDriver::new(ActiveStatusApp::new());
        subscribe_with_friends(&mut d, stream(1), 9, vec![5]);
        d.event(&status_event(5));
        d.advance(BATCH_INTERVAL);
        let (_, t) = d.timers()[0];
        d.fire_timer(t); // sends online:[5]
                         // No refresh for > TTL: the friend drops out, and the change batch
                         // (now empty) is pushed.
        d.advance(SimDuration::from_secs(31));
        let (_, t) = *d.timers().last().unwrap();
        let fx = d.fire_timer(t);
        let payload = fx
            .iter()
            .find_map(|e| match e {
                Effect::SendPayloads { payloads, .. } => {
                    Some(String::from_utf8(payloads[0].to_vec()).unwrap())
                }
                _ => None,
            })
            .expect("offline transition pushed");
        assert_eq!(payload, r#"{"online":[]}"#);
    }

    #[test]
    fn events_for_unwatched_friends_ignored() {
        let mut d = TestDriver::new(ActiveStatusApp::new());
        subscribe_with_friends(&mut d, stream(1), 9, vec![5]);
        let fx = d.event(&status_event(99));
        assert!(fx.is_empty());
        assert_eq!(d.counters.decisions, 0);
    }

    #[test]
    fn close_unsubscribes_friend_topics() {
        let mut d = TestDriver::new(ActiveStatusApp::new());
        subscribe_with_friends(&mut d, stream(1), 9, vec![5, 6]);
        subscribe_with_friends(&mut d, stream(2), 10, vec![5]);
        let fx = d.close(stream(1));
        // Each per-friend subscribe is balanced by an unsubscribe; the
        // host's refcounting keeps friend 5 subscribed for stream 2.
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::active_status(6))));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::active_status(5))));
        assert!(d.app.watchers.contains_key(&5), "stream 2 still watches 5");
        assert!(!d.app.watchers.contains_key(&6));
    }
}
