//! Stories: per-user ranked container trays (§3.4).
//!
//! "Stories are organized into 'containers', with each container comprising
//! stories of one user … Each user's UI displays thumbnails of the n
//! highest-ranked containers of their friends." The BRASS maintains, per
//! connected device, a rank-ordered container list and pushes (i) new
//! stories for displayed containers, (ii) newly displayed containers, and
//! (iii) container deletion requests — "the BRASS effectively manages what
//! is being displayed on the device", eliminating the two intersect queries
//! polling would need.

use std::collections::HashMap;

use burst::json::Json;
use pylon::Topic;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::SimTime;
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasRequest, WasResponse};
use crate::resolve::resolve;

/// Stories tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct StoriesConfig {
    /// Number of containers displayed on the device (`n`).
    pub tray_size: usize,
}

impl Default for StoriesConfig {
    fn default() -> Self {
        StoriesConfig { tray_size: 5 }
    }
}

#[derive(Clone, Debug, Default)]
struct Container {
    story_count: u64,
    last_story: SimTime,
}

impl Container {
    /// Rank: recency-dominated with a small volume bonus.
    fn rank(&self) -> f64 {
        self.last_story.as_secs_f64() + (self.story_count as f64).ln_1p()
    }
}

struct StreamState {
    friend_topics: Vec<Topic>,
    containers: HashMap<u64, Container>,
    /// Authors currently displayed on the device, tray order.
    displayed: Vec<u64>,
}

/// The Stories BRASS application.
pub struct StoriesApp {
    config: StoriesConfig,
    streams: HashMap<StreamKey, StreamState>,
    watchers: HashMap<u64, Vec<StreamKey>>,
    pending_friends: HashMap<FetchToken, StreamKey>,
}

impl StoriesApp {
    /// Creates the application.
    pub fn new(config: StoriesConfig) -> Self {
        StoriesApp {
            config,
            streams: HashMap::new(),
            watchers: HashMap::new(),
            pending_friends: HashMap::new(),
        }
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn author_of_topic(topic: &Topic) -> Option<u64> {
        let mut segs = topic.segments();
        if segs.next() != Some("Stories") {
            return None;
        }
        segs.next()?.parse().ok()
    }

    fn top_n(state: &StreamState, n: usize) -> Vec<u64> {
        let mut ranked: Vec<(&u64, &Container)> = state.containers.iter().collect();
        ranked.sort_by(|a, b| {
            b.1.rank()
                .partial_cmp(&a.1.rank())
                .expect("ranks are finite")
                .then(a.0.cmp(b.0))
        });
        ranked.into_iter().take(n).map(|(&uid, _)| uid).collect()
    }

    /// Writes the complete application state into a snapshot. Maps go out
    /// in sorted key order; `friend_topics` and `displayed` are verbatim —
    /// unsubscribe order and tray order are behavior-visible.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.config.tray_size);
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let s = &self.streams[&key];
            key.snap(w);
            w.put_usize(s.friend_topics.len());
            for t in &s.friend_topics {
                t.snap(w);
            }
            let mut authors: Vec<u64> = s.containers.keys().copied().collect();
            authors.sort_unstable();
            w.put_usize(authors.len());
            for a in authors {
                let c = &s.containers[&a];
                w.put_u64(a);
                w.put_u64(c.story_count);
                w.put_u64(c.last_story.as_micros());
            }
            w.put_usize(s.displayed.len());
            for a in &s.displayed {
                w.put_u64(*a);
            }
        }
        let mut authors: Vec<u64> = self.watchers.keys().copied().collect();
        authors.sort_unstable();
        w.put_usize(authors.len());
        for a in authors {
            w.put_u64(a);
            let watchers = &self.watchers[&a];
            w.put_usize(watchers.len());
            for k in watchers {
                k.snap(w);
            }
        }
        let mut tokens: Vec<FetchToken> = self.pending_friends.keys().copied().collect();
        tokens.sort_unstable_by_key(|t| t.0);
        w.put_usize(tokens.len());
        for t in tokens {
            w.put_u64(t.0);
            self.pending_friends[&t].snap(w);
        }
    }

    /// Reads the application back, rejecting snapshots with dangling
    /// watcher entries or unsorted keys.
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let tray_size = r.get_usize()?;
        if tray_size == 0 {
            return Err(SnapError::Invalid("stories: zero tray size".into()));
        }
        let config = StoriesConfig { tray_size };
        let nstreams = r.get_len()?;
        let mut streams: HashMap<StreamKey, StreamState> = HashMap::with_capacity(nstreams);
        let mut prev: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let key = StreamKey::restore(r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid(
                    "stories: stream keys out of order".into(),
                ));
            }
            prev = Some(key);
            let nft = r.get_len()?;
            let mut friend_topics = Vec::with_capacity(nft);
            for _ in 0..nft {
                friend_topics.push(Topic::restore(r)?);
            }
            let ncont = r.get_len()?;
            let mut containers: HashMap<u64, Container> = HashMap::with_capacity(ncont);
            let mut prev_author: Option<u64> = None;
            for _ in 0..ncont {
                let a = r.get_u64()?;
                if prev_author.is_some_and(|p| p >= a) {
                    return Err(SnapError::Invalid(
                        "stories: container authors out of order".into(),
                    ));
                }
                prev_author = Some(a);
                let story_count = r.get_u64()?;
                let last_story = SimTime::from_micros(r.get_u64()?);
                containers.insert(
                    a,
                    Container {
                        story_count,
                        last_story,
                    },
                );
            }
            let ndisp = r.get_len()?;
            let mut displayed = Vec::with_capacity(ndisp);
            for _ in 0..ndisp {
                displayed.push(r.get_u64()?);
            }
            streams.insert(
                key,
                StreamState {
                    friend_topics,
                    containers,
                    displayed,
                },
            );
        }
        let nwatch = r.get_len()?;
        let mut watchers: HashMap<u64, Vec<StreamKey>> = HashMap::with_capacity(nwatch);
        let mut prev_author: Option<u64> = None;
        for _ in 0..nwatch {
            let a = r.get_u64()?;
            if prev_author.is_some_and(|p| p >= a) {
                return Err(SnapError::Invalid(
                    "stories: watcher authors out of order".into(),
                ));
            }
            prev_author = Some(a);
            let nw = r.get_len()?;
            let mut list = Vec::with_capacity(nw);
            for _ in 0..nw {
                let k = StreamKey::restore(r)?;
                if !streams.contains_key(&k) {
                    return Err(SnapError::Invalid("stories: dangling watcher".into()));
                }
                list.push(k);
            }
            watchers.insert(a, list);
        }
        let npending = r.get_len()?;
        let mut pending_friends: HashMap<FetchToken, StreamKey> = HashMap::with_capacity(npending);
        let mut prev_tok: Option<u64> = None;
        for _ in 0..npending {
            let tok = r.get_u64()?;
            if prev_tok.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "stories: fetch tokens out of order".into(),
                ));
            }
            prev_tok = Some(tok);
            pending_friends.insert(FetchToken(tok), StreamKey::restore(r)?);
        }
        Ok(StoriesApp {
            config,
            streams,
            watchers,
            pending_friends,
        })
    }
}

impl BrassApp for StoriesApp {
    fn name(&self) -> &'static str {
        "stories"
    }

    fn snap(&self, w: &mut SnapWriter) {
        self.snap_state(w);
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        self.streams.insert(
            stream,
            StreamState {
                friend_topics: Vec::new(),
                containers: HashMap::new(),
                displayed: Vec::new(),
            },
        );
        let token = ctx.was_request(WasRequest::Friends { uid: sub.viewer });
        self.pending_friends.insert(token, stream);
    }

    fn on_was_response(&mut self, ctx: &mut Ctx<'_>, token: FetchToken, response: WasResponse) {
        let Some(stream) = self.pending_friends.remove(&token) else {
            return;
        };
        let Some(state) = self.streams.get_mut(&stream) else {
            return;
        };
        if let WasResponse::Friends(friends) = response {
            for f in friends {
                let topic = Topic::stories(f);
                if !state.friend_topics.contains(&topic) {
                    state.friend_topics.push(topic);
                }
                let w = self.watchers.entry(f).or_default();
                if !w.contains(&stream) {
                    w.push(stream);
                }
                ctx.subscribe(topic);
            }
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::StoryCreated {
            return;
        }
        let Some(author) = Self::author_of_topic(&event.topic) else {
            return;
        };
        let Some(watchers) = self.watchers.get(&author) else {
            return;
        };
        let tray_size = self.config.tray_size;
        for key in watchers.clone() {
            let Some(state) = self.streams.get_mut(&key) else {
                continue;
            };
            ctx.decision();
            let c = state.containers.entry(author).or_default();
            c.story_count += 1;
            c.last_story = ctx.now;

            // Recompute the tray and diff against what the device displays.
            let new_tray = Self::top_n(state, tray_size);
            let mut commands: Vec<Vec<u8>> = Vec::new();
            for gone in state.displayed.iter().filter(|u| !new_tray.contains(u)) {
                commands.push(format!(r#"{{"remove_container":{gone}}}"#).into_bytes());
            }
            for added in new_tray.iter().filter(|u| !state.displayed.contains(u)) {
                commands.push(format!(r#"{{"add_container":{added}}}"#).into_bytes());
            }
            if new_tray.contains(&author) && state.displayed.contains(&author) {
                // The container is already on screen: push just the story.
                commands.push(
                    format!(r#"{{"add_story":{},"container":{author}}}"#, event.object.0)
                        .into_bytes(),
                );
            }
            state.displayed = new_tray;
            ctx.send_batch(key, commands);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        for topic in &state.friend_topics {
            if let Some(author) = Self::author_of_topic(topic) {
                if let Some(w) = self.watchers.get_mut(&author) {
                    w.retain(|k| *k != stream);
                    if w.is_empty() {
                        self.watchers.remove(&author);
                    }
                }
            }
            // One unsubscribe per per-friend subscribe; host refcounts.
            ctx.unsubscribe(*topic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use simkit::time::SimDuration;
    use tao::ObjectId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            ("gql", Json::from("subscription { storiesTray }")),
        ])
    }

    fn story(author: u64, story_id: u64) -> UpdateEvent {
        UpdateEvent {
            id: story_id,
            topic: Topic::stories(author),
            object: ObjectId(story_id),
            kind: EventKind::StoryCreated,
            meta: EventMeta {
                uid: author,
                ..Default::default()
            },
        }
    }

    fn setup(friends: Vec<u64>) -> TestDriver<StoriesApp> {
        let mut d = TestDriver::new(StoriesApp::new(StoriesConfig { tray_size: 2 }));
        let fx = d.subscribe(stream(1), &header(9));
        let tok = fx
            .iter()
            .find_map(|e| match e {
                Effect::Was { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        d.was_response(tok, WasResponse::Friends(friends));
        d
    }

    fn last_commands(fx: &[Effect]) -> Vec<String> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::SendPayloads { payloads, .. } => Some(
                    payloads
                        .iter()
                        .map(|p| String::from_utf8(p.to_vec()).unwrap())
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn subscribes_per_friend() {
        let d = setup(vec![5, 6, 7]);
        for f in [5, 6, 7] {
            assert!(d
                .effects
                .contains(&Effect::SubscribeTopic(Topic::stories(f))));
        }
    }

    #[test]
    fn first_story_adds_container() {
        let mut d = setup(vec![5, 6]);
        let fx = d.event(&story(5, 100));
        assert_eq!(last_commands(&fx), vec![r#"{"add_container":5}"#]);
    }

    #[test]
    fn story_for_displayed_container_pushes_story() {
        let mut d = setup(vec![5]);
        d.event(&story(5, 100));
        let fx = d.event(&story(5, 101));
        assert_eq!(
            last_commands(&fx),
            vec![r#"{"add_story":101,"container":5}"#]
        );
    }

    #[test]
    fn tray_overflow_evicts_lowest_ranked_container() {
        let mut d = setup(vec![5, 6, 7]);
        d.event(&story(5, 100));
        d.advance(SimDuration::from_secs(10));
        d.event(&story(6, 101));
        d.advance(SimDuration::from_secs(10));
        // Tray size is 2; author 7's newer story evicts the oldest (5).
        let fx = d.event(&story(7, 102));
        let cmds = last_commands(&fx);
        assert!(
            cmds.contains(&r#"{"remove_container":5}"#.to_string()),
            "{cmds:?}"
        );
        assert!(cmds.contains(&r#"{"add_container":7}"#.to_string()));
    }

    #[test]
    fn decisions_counted_per_watcher() {
        let mut d = setup(vec![5]);
        let fx = d.subscribe(stream(2), &header(11));
        let tok = fx
            .iter()
            .find_map(|e| match e {
                Effect::Was { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        d.was_response(tok, WasResponse::Friends(vec![5]));
        d.event(&story(5, 100));
        assert_eq!(d.counters.decisions, 2, "one decision per watching stream");
    }

    #[test]
    fn close_unsubscribes() {
        let mut d = setup(vec![5]);
        let fx = d.close(stream(1));
        assert!(fx.contains(&Effect::UnsubscribeTopic(Topic::stories(5))));
        assert_eq!(d.app.stream_count(), 0);
    }

    #[test]
    fn unwatched_author_ignored() {
        let mut d = setup(vec![5]);
        let fx = d.event(&story(99, 100));
        assert!(fx.is_empty());
    }
}
