//! NewsFeedPostLikes: aggregated like counters for posts on screen.
//!
//! One of the "more prominent" onboarded applications (§1). Unlike
//! LiveVideoComments, likes need neither payload fetches nor privacy
//! checks — the BRASS aggregates like *events* into a per-post counter and
//! pushes the running total at a bounded rate, so a viral post's million
//! likes cost the device a handful of counter updates. A clean
//! demonstration that per-app BRASS code stays tiny (§3.4: "at most a few
//! hundred JS lines").

use std::collections::HashMap;

use burst::json::Json;
use pylon::Topic;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simkit::time::SimDuration;
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasResponse};
use crate::limiter::TokenBucket;
use crate::resolve::resolve;

/// Minimum spacing between counter pushes per stream.
pub const PUSH_INTERVAL: SimDuration = SimDuration::from_secs(3);

struct StreamState {
    post: u64,
    /// Likes accumulated since the stream opened.
    count: u64,
    /// Count included in the last push.
    pushed: u64,
    limiter: TokenBucket,
    /// Whether a flush timer is currently armed.
    timer_armed: bool,
}

/// The NewsFeedPostLikes BRASS application.
#[derive(Default)]
pub struct LikesApp {
    streams: HashMap<StreamKey, StreamState>,
    by_post: HashMap<u64, Vec<StreamKey>>,
    timers: HashMap<u64, StreamKey>,
    next_timer: u64,
}

impl LikesApp {
    /// Creates the application.
    pub fn new() -> Self {
        LikesApp::default()
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn post_of_topic(topic: &Topic) -> Option<u64> {
        let mut segs = topic.segments();
        if segs.next() != Some("Likes") {
            return None;
        }
        segs.next()?.parse().ok()
    }

    fn push_or_defer(&mut self, ctx: &mut Ctx<'_>, key: StreamKey) {
        let Some(state) = self.streams.get_mut(&key) else {
            return;
        };
        if state.count == state.pushed {
            return;
        }
        if state.limiter.try_acquire(ctx.now) {
            state.pushed = state.count;
            let payload = format!(r#"{{"post":{},"likes":{}}}"#, state.post, state.count);
            ctx.send(key, payload.into_bytes());
        } else if !state.timer_armed {
            // Defer the flush until a token is available. The wait is
            // floored at 1 ms: float rounding in the bucket can otherwise
            // produce a zero wait and an instantly re-firing timer.
            state.timer_armed = true;
            let wait = state
                .limiter
                .time_to_available(ctx.now)
                .max(SimDuration::from_millis(1));
            let token = self.next_timer;
            self.next_timer += 1;
            self.timers.insert(token, key);
            ctx.timer(wait, token);
        }
    }

    /// Writes the complete application state into a snapshot. Maps go out
    /// in sorted key order; the per-post watcher lists are verbatim because
    /// fan-out order follows them.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let s = &self.streams[&key];
            key.snap(w);
            w.put_u64(s.post);
            w.put_u64(s.count);
            w.put_u64(s.pushed);
            s.limiter.snap(w);
            w.put_bool(s.timer_armed);
        }
        let mut posts: Vec<u64> = self.by_post.keys().copied().collect();
        posts.sort_unstable();
        w.put_usize(posts.len());
        for p in posts {
            w.put_u64(p);
            let watchers = &self.by_post[&p];
            w.put_usize(watchers.len());
            for k in watchers {
                k.snap(w);
            }
        }
        let mut timers: Vec<u64> = self.timers.keys().copied().collect();
        timers.sort_unstable();
        w.put_usize(timers.len());
        for t in timers {
            w.put_u64(t);
            self.timers[&t].snap(w);
        }
        w.put_u64(self.next_timer);
    }

    /// Reads the application back, rejecting snapshots whose counters or
    /// cross-map references are inconsistent.
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let nstreams = r.get_len()?;
        let mut streams: HashMap<StreamKey, StreamState> = HashMap::with_capacity(nstreams);
        let mut prev: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let key = StreamKey::restore(r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid("likes: stream keys out of order".into()));
            }
            prev = Some(key);
            let post = r.get_u64()?;
            let count = r.get_u64()?;
            let pushed = r.get_u64()?;
            if pushed > count {
                return Err(SnapError::Invalid("likes: pushed exceeds count".into()));
            }
            let limiter = TokenBucket::restore(r)?;
            let timer_armed = r.get_bool()?;
            streams.insert(
                key,
                StreamState {
                    post,
                    count,
                    pushed,
                    limiter,
                    timer_armed,
                },
            );
        }
        let nposts = r.get_len()?;
        let mut by_post: HashMap<u64, Vec<StreamKey>> = HashMap::with_capacity(nposts);
        let mut prev_post: Option<u64> = None;
        for _ in 0..nposts {
            let p = r.get_u64()?;
            if prev_post.is_some_and(|q| q >= p) {
                return Err(SnapError::Invalid("likes: posts out of order".into()));
            }
            prev_post = Some(p);
            let nw = r.get_len()?;
            let mut watchers = Vec::with_capacity(nw);
            for _ in 0..nw {
                let k = StreamKey::restore(r)?;
                match streams.get(&k) {
                    Some(s) if s.post == p => watchers.push(k),
                    _ => return Err(SnapError::Invalid("likes: dangling watcher".into())),
                }
            }
            by_post.insert(p, watchers);
        }
        let ntimers = r.get_len()?;
        let mut timers: HashMap<u64, StreamKey> = HashMap::with_capacity(ntimers);
        let mut prev_timer: Option<u64> = None;
        for _ in 0..ntimers {
            let tok = r.get_u64()?;
            if prev_timer.is_some_and(|p| p >= tok) {
                return Err(SnapError::Invalid(
                    "likes: timer tokens out of order".into(),
                ));
            }
            prev_timer = Some(tok);
            timers.insert(tok, StreamKey::restore(r)?);
        }
        let next_timer = r.get_u64()?;
        if timers.keys().max().is_some_and(|m| next_timer <= *m) {
            return Err(SnapError::Invalid(
                "likes: next_timer behind live timers".into(),
            ));
        }
        Ok(LikesApp {
            streams,
            by_post,
            timers,
            next_timer,
        })
    }
}

impl BrassApp for LikesApp {
    fn name(&self) -> &'static str {
        "likes"
    }

    fn snap(&self, w: &mut SnapWriter) {
        self.snap_state(w);
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        let Some(post) = Self::post_of_topic(&sub.topic) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        ctx.subscribe(sub.topic);
        self.streams.insert(
            stream,
            StreamState {
                post,
                count: 0,
                pushed: 0,
                limiter: TokenBucket::per_interval(PUSH_INTERVAL),
                timer_armed: false,
            },
        );
        let watchers = self.by_post.entry(post).or_default();
        if !watchers.contains(&stream) {
            watchers.push(stream);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::PostLiked {
            return;
        }
        let Some(post) = Self::post_of_topic(&event.topic) else {
            return;
        };
        let Some(watchers) = self.by_post.get(&post) else {
            return;
        };
        for key in watchers.clone() {
            if let Some(state) = self.streams.get_mut(&key) {
                ctx.decision();
                state.count += 1;
            }
            self.push_or_defer(ctx, key);
        }
    }

    fn on_was_response(&mut self, _ctx: &mut Ctx<'_>, _token: FetchToken, _response: WasResponse) {
        // Likes never fetch: the counter itself is the payload.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(key) = self.timers.remove(&token) else {
            return;
        };
        if let Some(state) = self.streams.get_mut(&key) {
            state.timer_armed = false;
        }
        self.push_or_defer(ctx, key);
    }

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        if let Some(w) = self.by_post.get_mut(&state.post) {
            w.retain(|k| *k != stream);
            if w.is_empty() {
                self.by_post.remove(&state.post);
            }
        }
        ctx.unsubscribe(Topic::new(&format!("/Likes/{}", state.post)).expect("static shape"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use tao::ObjectId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(post: u64, viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            ("app", Json::from("likes")),
            ("topic", Json::from(format!("/Likes/{post}"))),
        ])
    }

    fn like(post: u64, uid: u64) -> UpdateEvent {
        UpdateEvent {
            id: uid,
            topic: Topic::new(&format!("/Likes/{post}")).unwrap(),
            object: ObjectId(post),
            kind: EventKind::PostLiked,
            meta: EventMeta {
                uid,
                ..Default::default()
            },
        }
    }

    fn payloads(fx: &[Effect]) -> Vec<String> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::SendPayloads { payloads, .. } => {
                    Some(String::from_utf8(payloads[0].to_vec()).unwrap())
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn first_like_pushes_immediately() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        let fx = d.event(&like(7, 100));
        assert_eq!(payloads(&fx), vec![r#"{"post":7,"likes":1}"#]);
    }

    #[test]
    fn burst_collapses_into_one_counter_push() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        d.event(&like(7, 100)); // pushed: likes=1
                                // 50 more likes inside the rate-limit window: no pushes, one timer.
        for i in 0..50 {
            d.event(&like(7, 200 + i));
        }
        assert_eq!(d.counters.deliveries, 1);
        // The deferred flush carries the full total.
        d.advance(PUSH_INTERVAL);
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        assert_eq!(payloads(&fx), vec![r#"{"post":7,"likes":51}"#]);
        assert_eq!(d.counters.decisions, 51);
        assert_eq!(d.counters.deliveries, 2, "51 likes -> 2 pushes");
    }

    #[test]
    fn no_redundant_timer_when_idle() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        d.event(&like(7, 1));
        assert!(d.timers().is_empty(), "no defer needed after a clean push");
    }

    #[test]
    fn per_post_isolation() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        d.subscribe(stream(2), &header(8, 9));
        let fx = d.event(&like(8, 1));
        let p = payloads(&fx);
        assert_eq!(p, vec![r#"{"post":8,"likes":1}"#]);
    }

    #[test]
    fn close_unsubscribes() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        let fx = d.close(stream(1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::UnsubscribeTopic(t) if t.as_str() == "/Likes/7")));
        assert_eq!(d.app.stream_count(), 0);
    }

    #[test]
    fn no_was_requests_ever() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        for i in 0..20 {
            d.event(&like(7, i));
        }
        assert_eq!(d.counters.was_requests, 0, "the counter IS the payload");
    }
}
