//! NewsFeedPostLikes: aggregated like counters for posts on screen.
//!
//! One of the "more prominent" onboarded applications (§1). Unlike
//! LiveVideoComments, likes need neither payload fetches nor privacy
//! checks — the BRASS aggregates like *events* into a per-post counter and
//! pushes the running total at a bounded rate, so a viral post's million
//! likes cost the device a handful of counter updates. A clean
//! demonstration that per-app BRASS code stays tiny (§3.4: "at most a few
//! hundred JS lines").

use std::collections::HashMap;

use burst::json::Json;
use pylon::Topic;
use simkit::time::SimDuration;
use was::{EventKind, UpdateEvent};

use crate::app::{BrassApp, Ctx, FetchToken, StreamKey, WasResponse};
use crate::limiter::TokenBucket;
use crate::resolve::resolve;

/// Minimum spacing between counter pushes per stream.
pub const PUSH_INTERVAL: SimDuration = SimDuration::from_secs(3);

struct StreamState {
    post: u64,
    /// Likes accumulated since the stream opened.
    count: u64,
    /// Count included in the last push.
    pushed: u64,
    limiter: TokenBucket,
    /// Whether a flush timer is currently armed.
    timer_armed: bool,
}

/// The NewsFeedPostLikes BRASS application.
#[derive(Default)]
pub struct LikesApp {
    streams: HashMap<StreamKey, StreamState>,
    by_post: HashMap<u64, Vec<StreamKey>>,
    timers: HashMap<u64, StreamKey>,
    next_timer: u64,
}

impl LikesApp {
    /// Creates the application.
    pub fn new() -> Self {
        LikesApp::default()
    }

    /// Streams currently served.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn post_of_topic(topic: &Topic) -> Option<u64> {
        let mut segs = topic.segments();
        if segs.next() != Some("Likes") {
            return None;
        }
        segs.next()?.parse().ok()
    }

    fn push_or_defer(&mut self, ctx: &mut Ctx<'_>, key: StreamKey) {
        let Some(state) = self.streams.get_mut(&key) else {
            return;
        };
        if state.count == state.pushed {
            return;
        }
        if state.limiter.try_acquire(ctx.now) {
            state.pushed = state.count;
            let payload = format!(r#"{{"post":{},"likes":{}}}"#, state.post, state.count);
            ctx.send(key, payload.into_bytes());
        } else if !state.timer_armed {
            // Defer the flush until a token is available. The wait is
            // floored at 1 ms: float rounding in the bucket can otherwise
            // produce a zero wait and an instantly re-firing timer.
            state.timer_armed = true;
            let wait = state
                .limiter
                .time_to_available(ctx.now)
                .max(SimDuration::from_millis(1));
            let token = self.next_timer;
            self.next_timer += 1;
            self.timers.insert(token, key);
            ctx.timer(wait, token);
        }
    }
}

impl BrassApp for LikesApp {
    fn name(&self) -> &'static str {
        "likes"
    }

    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, header: &Json) {
        let Ok(sub) = resolve(header) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        let Some(post) = Self::post_of_topic(&sub.topic) else {
            ctx.terminate(stream, burst::frame::TerminateReason::Error);
            return;
        };
        ctx.subscribe(sub.topic);
        self.streams.insert(
            stream,
            StreamState {
                post,
                count: 0,
                pushed: 0,
                limiter: TokenBucket::per_interval(PUSH_INTERVAL),
                timer_armed: false,
            },
        );
        let watchers = self.by_post.entry(post).or_default();
        if !watchers.contains(&stream) {
            watchers.push(stream);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &UpdateEvent) {
        if event.kind != EventKind::PostLiked {
            return;
        }
        let Some(post) = Self::post_of_topic(&event.topic) else {
            return;
        };
        let Some(watchers) = self.by_post.get(&post) else {
            return;
        };
        for key in watchers.clone() {
            if let Some(state) = self.streams.get_mut(&key) {
                ctx.decision();
                state.count += 1;
            }
            self.push_or_defer(ctx, key);
        }
    }

    fn on_was_response(&mut self, _ctx: &mut Ctx<'_>, _token: FetchToken, _response: WasResponse) {
        // Likes never fetch: the counter itself is the payload.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(key) = self.timers.remove(&token) else {
            return;
        };
        if let Some(state) = self.streams.get_mut(&key) {
            state.timer_armed = false;
        }
        self.push_or_defer(ctx, key);
    }

    fn on_stream_closed(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey) {
        let Some(state) = self.streams.remove(&stream) else {
            return;
        };
        if let Some(w) = self.by_post.get_mut(&state.post) {
            w.retain(|k| *k != stream);
            if w.is_empty() {
                self.by_post.remove(&state.post);
            }
        }
        ctx.unsubscribe(Topic::new(&format!("/Likes/{}", state.post)).expect("static shape"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DeviceId, Effect, TestDriver};
    use burst::frame::StreamId;
    use tao::ObjectId;
    use was::event::EventMeta;

    fn stream(n: u64) -> StreamKey {
        StreamKey {
            device: DeviceId(n),
            sid: StreamId(n),
        }
    }

    fn header(post: u64, viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            ("app", Json::from("likes")),
            ("topic", Json::from(format!("/Likes/{post}"))),
        ])
    }

    fn like(post: u64, uid: u64) -> UpdateEvent {
        UpdateEvent {
            id: uid,
            topic: Topic::new(&format!("/Likes/{post}")).unwrap(),
            object: ObjectId(post),
            kind: EventKind::PostLiked,
            meta: EventMeta {
                uid,
                ..Default::default()
            },
        }
    }

    fn payloads(fx: &[Effect]) -> Vec<String> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::SendPayloads { payloads, .. } => {
                    Some(String::from_utf8(payloads[0].to_vec()).unwrap())
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn first_like_pushes_immediately() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        let fx = d.event(&like(7, 100));
        assert_eq!(payloads(&fx), vec![r#"{"post":7,"likes":1}"#]);
    }

    #[test]
    fn burst_collapses_into_one_counter_push() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        d.event(&like(7, 100)); // pushed: likes=1
                                // 50 more likes inside the rate-limit window: no pushes, one timer.
        for i in 0..50 {
            d.event(&like(7, 200 + i));
        }
        assert_eq!(d.counters.deliveries, 1);
        // The deferred flush carries the full total.
        d.advance(PUSH_INTERVAL);
        let (_, t) = d.timers()[0];
        let fx = d.fire_timer(t);
        assert_eq!(payloads(&fx), vec![r#"{"post":7,"likes":51}"#]);
        assert_eq!(d.counters.decisions, 51);
        assert_eq!(d.counters.deliveries, 2, "51 likes -> 2 pushes");
    }

    #[test]
    fn no_redundant_timer_when_idle() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        d.event(&like(7, 1));
        assert!(d.timers().is_empty(), "no defer needed after a clean push");
    }

    #[test]
    fn per_post_isolation() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        d.subscribe(stream(2), &header(8, 9));
        let fx = d.event(&like(8, 1));
        let p = payloads(&fx);
        assert_eq!(p, vec![r#"{"post":8,"likes":1}"#]);
    }

    #[test]
    fn close_unsubscribes() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        let fx = d.close(stream(1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::UnsubscribeTopic(t) if t.as_str() == "/Likes/7")));
        assert_eq!(d.app.stream_count(), 0);
    }

    #[test]
    fn no_was_requests_ever() {
        let mut d = TestDriver::new(LikesApp::new());
        d.subscribe(stream(1), &header(7, 9));
        for i in 0..20 {
            d.event(&like(7, i));
        }
        assert_eq!(d.counters.was_requests, 0, "the counter IS the payload");
    }
}
