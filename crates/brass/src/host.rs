//! The BRASS host: a machine running (multi-tenant) BRASS instances.
//!
//! §3.2: "BRASS is serverless in the sense that a new instance is spooled up
//! automatically whenever a stream request arrives at a designated host that
//! doesn't already have a running BRASS instance for the target
//! application"; "the number of BRASSes per host is limited to two per core
//! to reduce context switching". Each host also runs a **Pylon subscription
//! manager** (footnote 10): topic subscriptions from colocated BRASSes are
//! reference-counted so Pylon sees at most one subscription per (host,
//! topic).
//!
//! [`BrassHost`] turns application [`Effect`]s into [`HostEffect`]s — the
//! externally visible actions the simulation orchestrator (or the real-time
//! driver) executes: Pylon subscribe/unsubscribe, WAS requests, BURST
//! response frames, timers.

use std::collections::HashMap;
use std::sync::Arc;

use burst::frame::{Delta, Frame, StreamId};
use burst::json::Json;
use burst::stream::ServerStream;
use pylon::Topic;
use simkit::time::SimTime;

use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};

use crate::app::{AppCounters, BrassApp, Ctx, DeviceId, Effect, FetchToken, StreamKey, WasRequest};
use crate::resolve::resolve;

/// Host configuration.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// This host's identity with Pylon.
    pub host_id: pylon::HostId,
    /// CPU cores; instance capacity is two per core (§3.2).
    pub cores: u32,
}

impl HostConfig {
    /// A small host for tests and examples.
    pub fn small(host_id: u32) -> Self {
        HostConfig {
            host_id: pylon::HostId(host_id),
            cores: 4,
        }
    }
}

/// An externally visible action requested by the host.
#[derive(Debug)]
pub enum HostEffect {
    /// Register this host as a subscriber of a topic with Pylon.
    PylonSubscribe(Topic),
    /// Remove this host's subscription to a topic.
    PylonUnsubscribe(Topic),
    /// Issue a WAS request on behalf of an application.
    Was {
        /// Owning application (routes the response back).
        app: String,
        /// Correlation token.
        token: FetchToken,
        /// The request.
        request: WasRequest,
    },
    /// Send a BURST frame toward a device.
    Send {
        /// Target device.
        device: DeviceId,
        /// The frame (typically a `Response`).
        frame: Frame,
    },
    /// Arm a timer for an application.
    Timer {
        /// When to fire.
        at: SimTime,
        /// Owning application.
        app: String,
        /// Opaque app token.
        token: u64,
    },
    /// An application dropped an update; forwarded for trace attribution.
    DropUpdate {
        /// The TAO object the dropped update referenced.
        object: tao::ObjectId,
        /// Why the update was dropped.
        reason: simkit::trace::DropReason,
    },
}

struct Instance {
    app: Box<dyn BrassApp>,
    counters: AppCounters,
    next_token: u64,
    /// This instance's topic reference counts.
    topic_refs: HashMap<Topic, u32>,
}

struct StreamMeta {
    /// The owning application's name, shared with every other stream of
    /// the same app on this host — one entry exists per resident stream,
    /// so a per-stream heap `String` would be fleet-scale overhead.
    app: Arc<str>,
    server: ServerStream,
}

/// Host-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCounters {
    /// Serverless instance spool-ups.
    pub spool_ups: u64,
    /// Subscribe requests accepted.
    pub streams_accepted: u64,
    /// Subscribe requests rejected (capacity or unknown app).
    pub streams_rejected: u64,
    /// Pylon subscriptions deduplicated by the host manager.
    pub dedup_subscribes: u64,
}

type AppFactory = Box<dyn FnMut() -> Box<dyn BrassApp> + Send>;

/// A BRASS host.
pub struct BrassHost {
    config: HostConfig,
    factories: HashMap<String, AppFactory>,
    instances: HashMap<String, Instance>,
    /// Host-wide topic refcounts (the Pylon subscription manager).
    host_topic_refs: HashMap<Topic, u32>,
    streams: HashMap<StreamKey, StreamMeta>,
    /// Interned app names handed to [`StreamMeta`] (a handful of entries).
    app_names: Vec<Arc<str>>,
    counters: HostCounters,
}

impl BrassHost {
    /// Creates an empty host.
    pub fn new(config: HostConfig) -> Self {
        BrassHost {
            config,
            factories: HashMap::new(),
            instances: HashMap::new(),
            host_topic_refs: HashMap::new(),
            streams: HashMap::new(),
            app_names: Vec::new(),
            counters: HostCounters::default(),
        }
    }

    /// Returns the shared copy of an app name, allocating it on first use.
    fn intern_app(&mut self, name: &str) -> Arc<str> {
        if let Some(a) = self.app_names.iter().find(|a| &***a == name) {
            return a.clone();
        }
        let a: Arc<str> = Arc::from(name);
        self.app_names.push(a.clone());
        a
    }

    /// This host's Pylon identity.
    pub fn host_id(&self) -> pylon::HostId {
        self.config.host_id
    }

    /// Registers an application factory; instances spool up on demand.
    pub fn register_app(
        &mut self,
        name: &str,
        factory: impl FnMut() -> Box<dyn BrassApp> + Send + 'static,
    ) {
        self.factories.insert(name.to_owned(), Box::new(factory));
    }

    /// Registers the standard applications with default configs.
    pub fn register_standard_apps(&mut self) {
        use crate::apps::{
            ActiveStatusApp, LikesApp, LvcApp, LvcConfig, MessengerApp, NotificationsApp,
            StoriesApp, StoriesConfig, TypingApp,
        };
        self.register_app("lvc", || Box::new(LvcApp::new(LvcConfig::default())));
        self.register_app("typing", || Box::new(TypingApp::new()));
        self.register_app("active_status", || Box::new(ActiveStatusApp::new()));
        self.register_app("stories", || {
            Box::new(StoriesApp::new(StoriesConfig::default()))
        });
        self.register_app("messenger", || Box::new(MessengerApp::new()));
        self.register_app("likes", || Box::new(LikesApp::new()));
        self.register_app("notifications", || Box::new(NotificationsApp::new()));
    }

    /// Maximum instances this host can run (two per core, §3.2).
    pub fn capacity(&self) -> usize {
        (self.config.cores * 2) as usize
    }

    /// Currently running instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Active streams on this host.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The `(device, sid)` keys of every active stream, sorted. Used by the
    /// chaos convergence checker and availability sampling to ask which
    /// subscriptions a host is actually serving.
    pub fn stream_keys(&self) -> Vec<(u64, StreamId)> {
        let mut keys: Vec<(u64, StreamId)> =
            self.streams.keys().map(|k| (k.device.0, k.sid)).collect();
        keys.sort_unstable_by_key(|&(d, s)| (d, s.0));
        keys
    }

    /// Whether this host serves the given stream.
    pub fn has_stream(&self, device: u64, sid: StreamId) -> bool {
        self.streams.contains_key(&StreamKey {
            device: DeviceId(device),
            sid,
        })
    }

    /// Host counters.
    pub fn counters(&self) -> &HostCounters {
        &self.counters
    }

    /// Per-application counters, if the instance is running.
    pub fn app_counters(&self, app: &str) -> Option<AppCounters> {
        self.instances.get(app).map(|i| i.counters)
    }

    /// Aggregate counters across all instances on this host.
    pub fn total_app_counters(&self) -> AppCounters {
        // Integer sums are order-independent, but aggregate in sorted app
        // order anyway so this stays safe if a non-commutative field (a
        // float, a "last app" sample) is ever added.
        let mut names: Vec<&String> = self.instances.keys().collect();
        names.sort_unstable();
        let mut total = AppCounters::default();
        for name in names {
            let i = &self.instances[name];
            total.decisions += i.counters.decisions;
            total.deliveries += i.counters.deliveries;
            total.events_in += i.counters.events_in;
            total.was_requests += i.counters.was_requests;
        }
        total
    }

    /// Topics this host currently holds Pylon subscriptions for.
    pub fn subscribed_topics(&self) -> usize {
        self.host_topic_refs.len()
    }

    fn ensure_instance(&mut self, app: &str) -> Result<(), ()> {
        if self.instances.contains_key(app) {
            return Ok(());
        }
        if self.instances.len() >= self.capacity() {
            return Err(());
        }
        let factory = self.factories.get_mut(app).ok_or(())?;
        let instance = Instance {
            app: factory(),
            counters: AppCounters::default(),
            next_token: 0,
            topic_refs: HashMap::new(),
        };
        self.instances.insert(app.to_owned(), instance);
        self.counters.spool_ups += 1;
        Ok(())
    }

    /// Runs an app handler and converts its effects into host effects.
    fn run_handler(
        &mut self,
        app: &str,
        now: SimTime,
        out: &mut Vec<HostEffect>,
        f: impl FnOnce(&mut dyn BrassApp, &mut Ctx<'_>),
    ) {
        let Some(instance) = self.instances.get_mut(app) else {
            return;
        };
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx::new(
                now,
                &mut effects,
                &mut instance.counters,
                &mut instance.next_token,
            );
            f(instance.app.as_mut(), &mut ctx);
        }
        self.apply_effects(app, effects, out);
    }

    fn apply_effects(&mut self, app: &str, effects: Vec<Effect>, out: &mut Vec<HostEffect>) {
        for effect in effects {
            match effect {
                Effect::SubscribeTopic(topic) => {
                    let inst = self
                        .instances
                        .get_mut(app)
                        .expect("caller ensured instance");
                    *inst.topic_refs.entry(topic).or_insert(0) += 1;
                    let host_refs = self.host_topic_refs.entry(topic).or_insert(0);
                    *host_refs += 1;
                    if *host_refs == 1 {
                        out.push(HostEffect::PylonSubscribe(topic));
                    } else {
                        self.counters.dedup_subscribes += 1;
                    }
                }
                Effect::UnsubscribeTopic(topic) => {
                    let inst = self
                        .instances
                        .get_mut(app)
                        .expect("caller ensured instance");
                    if let Some(r) = inst.topic_refs.get_mut(&topic) {
                        *r -= 1;
                        if *r == 0 {
                            inst.topic_refs.remove(&topic);
                        }
                        if let Some(hr) = self.host_topic_refs.get_mut(&topic) {
                            *hr -= 1;
                            if *hr == 0 {
                                self.host_topic_refs.remove(&topic);
                                out.push(HostEffect::PylonUnsubscribe(topic));
                            }
                        }
                    }
                }
                Effect::Was { token, request } => out.push(HostEffect::Was {
                    app: app.to_owned(),
                    token,
                    request,
                }),
                Effect::SendPayloads {
                    stream,
                    payloads,
                    rewrite,
                } => {
                    let Some(meta) = self.streams.get_mut(&stream) else {
                        continue; // Stream closed since the app decided.
                    };
                    let mut batch: Vec<Delta> =
                        payloads.into_iter().map(|p| meta.server.push(p)).collect();
                    if let Some(patch) = rewrite {
                        batch.push(meta.server.rewrite(patch));
                    }
                    // Transport-level resumption ("Resumption", §3.5): every
                    // data batch installs `last_seq`, so a resubscribe — to
                    // this incarnation or a replacement — resumes sequence
                    // numbering where delivery actually got to instead of
                    // restarting at zero. Without this, a stale in-flight
                    // frame from the old incarnation can push the client's
                    // expectations permanently ahead of the new one, and
                    // every later update is swallowed as a duplicate.
                    batch.push(meta.server.rewrite_progress());
                    out.push(HostEffect::Send {
                        device: stream.device,
                        frame: Frame::Response {
                            sid: stream.sid,
                            batch,
                        },
                    });
                }
                Effect::SendDeltas { stream, deltas } => {
                    let Some(meta) = self.streams.get_mut(&stream) else {
                        continue;
                    };
                    let mut terminated = false;
                    for delta in &deltas {
                        match delta {
                            Delta::RewriteRequest { patch } => {
                                // Keep the server-side header copy current.
                                let _ = meta.server.rewrite(patch.clone());
                            }
                            Delta::Terminate(_) => terminated = true,
                            _ => {}
                        }
                    }
                    out.push(HostEffect::Send {
                        device: stream.device,
                        frame: Frame::Response {
                            sid: stream.sid,
                            batch: deltas,
                        },
                    });
                    if terminated {
                        self.streams.remove(&stream);
                    }
                }
                Effect::Timer { at, token } => out.push(HostEffect::Timer {
                    at,
                    app: app.to_owned(),
                    token,
                }),
                Effect::DropUpdate { object, reason } => {
                    out.push(HostEffect::DropUpdate { object, reason })
                }
                Effect::ReplayUnacked { stream } => {
                    let Some(meta) = self.streams.get(&stream) else {
                        continue;
                    };
                    let batch = meta.server.replay_unacked();
                    if !batch.is_empty() {
                        out.push(HostEffect::Send {
                            device: stream.device,
                            frame: Frame::Response {
                                sid: stream.sid,
                                batch,
                            },
                        });
                    }
                }
            }
        }
    }

    /// Handles an incoming BURST subscribe for a stream.
    ///
    /// Resolution failures and capacity exhaustion produce a terminate
    /// response rather than an error: devices are remote.
    pub fn on_subscribe(
        &mut self,
        device: DeviceId,
        sid: StreamId,
        header: Json,
        now: SimTime,
    ) -> Vec<HostEffect> {
        let mut out = Vec::new();
        let stream = StreamKey { device, sid };
        let app = match resolve(&header) {
            Ok(sub) => sub.app,
            Err(_) => {
                self.counters.streams_rejected += 1;
                out.push(HostEffect::Send {
                    device,
                    frame: Frame::Response {
                        sid,
                        batch: vec![Delta::Terminate(burst::frame::TerminateReason::Error)],
                    },
                });
                return out;
            }
        };
        if self.ensure_instance(&app).is_err() {
            self.counters.streams_rejected += 1;
            out.push(HostEffect::Send {
                device,
                frame: Frame::Response {
                    sid,
                    batch: vec![Delta::Terminate(
                        burst::frame::TerminateReason::ServerShutdown,
                    )],
                },
            });
            return out;
        }
        self.counters.streams_accepted += 1;
        // Reliable apps retain unacked updates for replay.
        let retain = app == "messenger";
        let server = ServerStream::accept(sid, header.clone(), retain);
        let app_shared = self.intern_app(&app);
        self.streams.insert(
            stream,
            StreamMeta {
                app: app_shared,
                server,
            },
        );
        // Sticky routing (§3.5): patch the header with this host's identity
        // so a resubscribe after failure lands back here.
        let patch = Json::obj([("brass_host", Json::from(self.config.host_id.0 as u64))]);
        if let Some(meta) = self.streams.get_mut(&stream) {
            let _ = meta.server.rewrite(patch.clone());
        }
        out.push(HostEffect::Send {
            device,
            frame: Frame::Response {
                sid,
                batch: vec![Delta::RewriteRequest { patch }],
            },
        });
        self.run_handler(&app, now, &mut out, |a, ctx| {
            a.on_subscribe(ctx, stream, &header)
        });
        out
    }

    /// Fans a Pylon update event to every colocated instance holding a
    /// subscription to its topic.
    pub fn on_pylon_event(&mut self, event: &was::UpdateEvent, now: SimTime) -> Vec<HostEffect> {
        let mut out = Vec::new();
        // Sorted by app name: `instances` is a hash map, and the handler
        // order decides the order of emitted effects (and therefore of
        // every downstream event) — iteration order must never leak in.
        let mut apps: Vec<String> = self
            .instances
            .iter()
            .filter(|(_, i)| i.topic_refs.contains_key(&event.topic))
            .map(|(name, _)| name.clone())
            .collect();
        apps.sort_unstable();
        for app in apps {
            if let Some(i) = self.instances.get_mut(&app) {
                i.counters.events_in += 1;
            }
            self.run_handler(&app, now, &mut out, |a, ctx| a.on_event(ctx, event));
        }
        out
    }

    /// Routes a WAS response back to the owning application.
    pub fn on_was_response(
        &mut self,
        app: &str,
        token: FetchToken,
        response: crate::app::WasResponse,
        now: SimTime,
    ) -> Vec<HostEffect> {
        let mut out = Vec::new();
        self.run_handler(app, now, &mut out, |a, ctx| {
            a.on_was_response(ctx, token, response)
        });
        out
    }

    /// Fires an application timer.
    pub fn on_timer(&mut self, app: &str, token: u64, now: SimTime) -> Vec<HostEffect> {
        let mut out = Vec::new();
        self.run_handler(app, now, &mut out, |a, ctx| a.on_timer(ctx, token));
        out
    }

    /// Handles a client cancel for one stream.
    pub fn on_cancel(&mut self, device: DeviceId, sid: StreamId, now: SimTime) -> Vec<HostEffect> {
        let stream = StreamKey { device, sid };
        let mut out = Vec::new();
        if let Some(meta) = self.streams.remove(&stream) {
            let app = meta.app;
            self.run_handler(&app, now, &mut out, |a, ctx| {
                a.on_stream_closed(ctx, stream)
            });
        }
        out
    }

    /// Handles a device ack (reliable applications replay from here).
    pub fn on_ack(
        &mut self,
        device: DeviceId,
        sid: StreamId,
        seq: u64,
        now: SimTime,
    ) -> Vec<HostEffect> {
        let stream = StreamKey { device, sid };
        let mut out = Vec::new();
        if let Some(meta) = self.streams.get_mut(&stream) {
            meta.server.on_ack(seq);
            let app = meta.app.clone();
            self.run_handler(&app, now, &mut out, |a, ctx| a.on_ack(ctx, stream, seq));
        }
        out
    }

    /// Handles loss of connectivity to a device: every stream it owned is
    /// closed (§4: the POP "will inform all BRASSes servicing streams
    /// instantiated by the device").
    pub fn on_device_disconnected(&mut self, device: DeviceId, now: SimTime) -> Vec<HostEffect> {
        let mut affected: Vec<StreamKey> = self
            .streams
            .keys()
            .filter(|k| k.device == device)
            .copied()
            .collect();
        // Hash-map key order must not decide teardown order: close-handler
        // effects (unsubscribes, buffer flushes) feed scheduled events.
        affected.sort_unstable_by_key(|k| (k.device.0, k.sid.0));
        let mut out = Vec::new();
        for stream in affected {
            if let Some(meta) = self.streams.remove(&stream) {
                let app = meta.app;
                self.run_handler(&app, now, &mut out, |a, ctx| {
                    a.on_stream_closed(ctx, stream)
                });
            }
        }
        out
    }

    /// Redirects one stream to another BRASS host (§3.5 "Redirects": load
    /// balancing, consolidation, or host drain). The header is rewritten
    /// with the new routing target, then the stream is terminated with
    /// [`TerminateReason::Redirect`] so the device retries — landing on
    /// `to_host` via sticky routing, with no device logic involved.
    ///
    /// [`TerminateReason::Redirect`]: burst::frame::TerminateReason::Redirect
    pub fn redirect_stream(
        &mut self,
        device: DeviceId,
        sid: StreamId,
        to_host: u32,
        now: SimTime,
    ) -> Vec<HostEffect> {
        let stream = StreamKey { device, sid };
        let mut out = Vec::new();
        let Some(mut meta) = self.streams.remove(&stream) else {
            return out;
        };
        let patch = Json::obj([("brass_host", Json::from(to_host as u64))]);
        let rewrite = meta.server.rewrite(patch);
        out.push(HostEffect::Send {
            device,
            frame: Frame::Response {
                sid,
                batch: vec![
                    rewrite,
                    Delta::Terminate(burst::frame::TerminateReason::Redirect),
                ],
            },
        });
        // The application releases its per-stream state (and topic refs).
        let app = meta.app.clone();
        self.run_handler(&app, now, &mut out, |a, ctx| {
            a.on_stream_closed(ctx, stream)
        });
        out
    }

    /// Drains this host for shutdown (software upgrade / rebalancing):
    /// every stream receives a redirect-terminate so proxies re-route it.
    pub fn drain_for_shutdown(&mut self, now: SimTime) -> Vec<HostEffect> {
        let mut streams: Vec<StreamKey> = self.streams.keys().copied().collect();
        // Chaos-time stream repair replays these terminates: the order
        // must be a function of the streams, not of hash-map iteration.
        streams.sort_unstable_by_key(|k| (k.device.0, k.sid.0));
        let mut out = Vec::new();
        for stream in streams {
            if let Some(meta) = self.streams.remove(&stream) {
                out.push(HostEffect::Send {
                    device: stream.device,
                    frame: Frame::Response {
                        sid: stream.sid,
                        batch: vec![Delta::Terminate(
                            burst::frame::TerminateReason::ServerShutdown,
                        )],
                    },
                });
                let app = meta.app;
                self.run_handler(&app, now, &mut out, |a, ctx| {
                    a.on_stream_closed(ctx, stream)
                });
            }
        }
        out
    }

    /// Writes the host's complete state into a snapshot: config, every
    /// running instance (counters, token counter, topic refcounts, app
    /// state), the host-wide subscription manager, every server-side
    /// stream, and the host counters. All maps go out in sorted key order.
    /// Factories are code, not state — restore re-registers them.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.config.host_id.0);
        w.put_u32(self.config.cores);
        let mut apps: Vec<&String> = self.instances.keys().collect();
        apps.sort_unstable();
        w.put_usize(apps.len());
        for name in apps {
            let i = &self.instances[name];
            w.put_str(name);
            w.put_u64(i.counters.decisions);
            w.put_u64(i.counters.deliveries);
            w.put_u64(i.counters.events_in);
            w.put_u64(i.counters.was_requests);
            w.put_u64(i.next_token);
            let mut topics: Vec<Topic> = i.topic_refs.keys().copied().collect();
            topics.sort_unstable();
            w.put_usize(topics.len());
            for t in topics {
                t.snap(w);
                w.put_u32(i.topic_refs[&t]);
            }
            i.app.snap(w);
        }
        let mut topics: Vec<Topic> = self.host_topic_refs.keys().copied().collect();
        topics.sort_unstable();
        w.put_usize(topics.len());
        for t in topics {
            t.snap(w);
            w.put_u32(self.host_topic_refs[&t]);
        }
        let mut keys: Vec<StreamKey> = self.streams.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for key in keys {
            let meta = &self.streams[&key];
            w.put_u64(key.device.0);
            w.put_str(&meta.app);
            meta.server.snap(w);
        }
        w.put_u64(self.counters.spool_ups);
        w.put_u64(self.counters.streams_accepted);
        w.put_u64(self.counters.streams_rejected);
        w.put_u64(self.counters.dedup_subscribes);
    }

    /// Reads a host back. The standard application factories are
    /// re-registered (closures aren't serializable) and each instance's
    /// state is restored by dispatching on its application name — snapshots
    /// holding non-standard applications are rejected.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        use crate::apps::{
            ActiveStatusApp, LikesApp, LvcApp, MessengerApp, NotificationsApp, StoriesApp,
            TypingApp,
        };
        let host_id = pylon::HostId(r.get_u32()?);
        let cores = r.get_u32()?;
        if cores == 0 {
            return Err(SnapError::Invalid("brass host: zero cores".into()));
        }
        let mut host = BrassHost::new(HostConfig { host_id, cores });
        host.register_standard_apps();
        let ninst = r.get_len()?;
        if ninst > host.capacity() {
            return Err(SnapError::Invalid("brass host: over capacity".into()));
        }
        let mut prev_app: Option<String> = None;
        for _ in 0..ninst {
            let name = r.get_str()?.to_owned();
            if prev_app.as_ref().is_some_and(|p| *p >= name) {
                return Err(SnapError::Invalid(
                    "brass host: instances out of order".into(),
                ));
            }
            let counters = AppCounters {
                decisions: r.get_u64()?,
                deliveries: r.get_u64()?,
                events_in: r.get_u64()?,
                was_requests: r.get_u64()?,
            };
            let next_token = r.get_u64()?;
            let nrefs = r.get_len()?;
            let mut topic_refs: HashMap<Topic, u32> = HashMap::with_capacity(nrefs);
            let mut prev_topic: Option<Topic> = None;
            for _ in 0..nrefs {
                let t = Topic::restore(r)?;
                if prev_topic.is_some_and(|p| p >= t) {
                    return Err(SnapError::Invalid(
                        "brass host: topic refs out of order".into(),
                    ));
                }
                prev_topic = Some(t);
                let refs = r.get_u32()?;
                if refs == 0 {
                    return Err(SnapError::Invalid("brass host: zero topic refcount".into()));
                }
                topic_refs.insert(t, refs);
            }
            let app: Box<dyn BrassApp> = match name.as_str() {
                "lvc" => Box::new(LvcApp::restore(r)?),
                "typing" => Box::new(TypingApp::restore(r)?),
                "active_status" => Box::new(ActiveStatusApp::restore(r)?),
                "stories" => Box::new(StoriesApp::restore(r)?),
                "messenger" => Box::new(MessengerApp::restore(r)?),
                "likes" => Box::new(LikesApp::restore(r)?),
                "notifications" => Box::new(NotificationsApp::restore(r)?),
                other => {
                    return Err(SnapError::Invalid(format!(
                        "brass host: unknown application {other:?}"
                    )))
                }
            };
            host.instances.insert(
                name.clone(),
                Instance {
                    app,
                    counters,
                    next_token,
                    topic_refs,
                },
            );
            prev_app = Some(name);
        }
        let nhost_refs = r.get_len()?;
        let mut prev_topic: Option<Topic> = None;
        for _ in 0..nhost_refs {
            let t = Topic::restore(r)?;
            if prev_topic.is_some_and(|p| p >= t) {
                return Err(SnapError::Invalid(
                    "brass host: host topic refs out of order".into(),
                ));
            }
            prev_topic = Some(t);
            let refs = r.get_u32()?;
            if refs == 0 {
                return Err(SnapError::Invalid("brass host: zero topic refcount".into()));
            }
            host.host_topic_refs.insert(t, refs);
        }
        let nstreams = r.get_len()?;
        let mut prev_key: Option<StreamKey> = None;
        for _ in 0..nstreams {
            let device = DeviceId(r.get_u64()?);
            let app_name = r.get_str()?.to_owned();
            if !host.instances.contains_key(&app_name) {
                return Err(SnapError::Invalid(
                    "brass host: stream owned by absent instance".into(),
                ));
            }
            let app = host.intern_app(&app_name);
            let server = ServerStream::restore(r)?;
            let key = StreamKey {
                device,
                sid: server.sid(),
            };
            if prev_key.is_some_and(|p| p >= key) {
                return Err(SnapError::Invalid(
                    "brass host: streams out of order".into(),
                ));
            }
            prev_key = Some(key);
            host.streams.insert(key, StreamMeta { app, server });
        }
        host.counters = HostCounters {
            spool_ups: r.get_u64()?,
            streams_accepted: r.get_u64()?,
            streams_rejected: r.get_u64()?,
            dedup_subscribes: r.get_u64()?,
        };
        Ok(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::WasResponse;
    use pylon::HostId;
    use was::event::{EventKind, EventMeta};
    use was::UpdateEvent;

    fn host() -> BrassHost {
        let mut h = BrassHost::new(HostConfig::small(1));
        h.register_standard_apps();
        h
    }

    fn lvc_header(video: u64, viewer: u64) -> Json {
        Json::obj([
            ("viewer", Json::from(viewer)),
            (
                "gql",
                Json::from(format!(
                    "subscription {{ liveVideoComments(videoId: {video}) }}"
                )),
            ),
        ])
    }

    fn comment(video: u64, object: u64, quality: f64) -> UpdateEvent {
        UpdateEvent {
            id: object,
            topic: Topic::live_video_comments(video),
            object: tao::ObjectId(object),
            kind: EventKind::CommentPosted,
            meta: EventMeta {
                uid: 1,
                quality,
                lang: Some("en".into()),
                created_ms: 0,
                seq: None,
                typing: None,
            },
        }
    }

    #[test]
    fn serverless_spool_up_on_first_stream() {
        let mut h = host();
        assert_eq!(h.instance_count(), 0);
        let fx = h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(42, 9), SimTime::ZERO);
        assert_eq!(h.instance_count(), 1);
        assert_eq!(h.counters().spool_ups, 1);
        assert!(fx
            .iter()
            .any(|e| matches!(e, HostEffect::PylonSubscribe(t) if t.as_str() == "/LVC/42")));
        // A second stream for the same app reuses the instance.
        h.on_subscribe(DeviceId(2), StreamId(1), lvc_header(43, 9), SimTime::ZERO);
        assert_eq!(h.instance_count(), 1);
        assert_eq!(h.counters().spool_ups, 1);
    }

    #[test]
    fn sticky_routing_rewrite_sent_on_accept() {
        let mut h = host();
        let fx = h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(42, 9), SimTime::ZERO);
        let rewrite = fx.iter().find_map(|e| match e {
            HostEffect::Send {
                frame: Frame::Response { batch, .. },
                ..
            } => batch.iter().find_map(|d| match d {
                Delta::RewriteRequest { patch } => patch.get("brass_host").and_then(Json::as_u64),
                _ => None,
            }),
            _ => None,
        });
        assert_eq!(rewrite, Some(1), "host identity patched for stickiness");
    }

    #[test]
    fn subscription_manager_dedupes_host_wide() {
        let mut h = host();
        let mut pylon_subs = 0;
        for d in 1..=5 {
            let fx = h.on_subscribe(DeviceId(d), StreamId(1), lvc_header(42, d), SimTime::ZERO);
            pylon_subs += fx
                .iter()
                .filter(|e| matches!(e, HostEffect::PylonSubscribe(_)))
                .count();
        }
        assert_eq!(pylon_subs, 1, "one Pylon subscription per (host, topic)");
        assert_eq!(h.counters().dedup_subscribes, 4);
        assert_eq!(h.subscribed_topics(), 1);
    }

    #[test]
    fn unsubscribe_emitted_when_last_ref_drops() {
        let mut h = host();
        h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(42, 1), SimTime::ZERO);
        h.on_subscribe(DeviceId(2), StreamId(1), lvc_header(42, 2), SimTime::ZERO);
        let fx = h.on_cancel(DeviceId(1), StreamId(1), SimTime::ZERO);
        assert!(!fx
            .iter()
            .any(|e| matches!(e, HostEffect::PylonUnsubscribe(_))));
        let fx = h.on_cancel(DeviceId(2), StreamId(1), SimTime::ZERO);
        assert!(fx
            .iter()
            .any(|e| matches!(e, HostEffect::PylonUnsubscribe(t) if t.as_str() == "/LVC/42")));
        assert_eq!(h.subscribed_topics(), 0);
    }

    #[test]
    fn event_to_delivery_pipeline_with_sequencing() {
        let mut h = host();
        h.on_subscribe(DeviceId(1), StreamId(7), lvc_header(42, 9), SimTime::ZERO);
        h.on_pylon_event(&comment(42, 100, 0.95), SimTime::ZERO);
        // Fire the LVC push timer.
        let now = SimTime::from_secs(2);
        let fx = h.on_timer("lvc", 0, now);
        let (token,) = fx
            .iter()
            .find_map(|e| match e {
                HostEffect::Was { token, .. } => Some((*token,)),
                _ => None,
            })
            .expect("timer triggers WAS fetch");
        let fx = h.on_was_response(
            "lvc",
            token,
            WasResponse::Payload(b"hi".to_vec().into()),
            now,
        );
        let frame = fx
            .iter()
            .find_map(|e| match e {
                HostEffect::Send { device, frame } => {
                    assert_eq!(*device, DeviceId(1));
                    Some(frame.clone())
                }
                _ => None,
            })
            .expect("payload sent");
        match frame {
            Frame::Response { sid, batch } => {
                assert_eq!(sid, StreamId(7));
                // Every data batch closes with a transport-progress
                // rewrite installing `last_seq`, so resubscribes resume
                // sequence numbering instead of restarting at zero.
                assert_eq!(batch.len(), 2);
                assert_eq!(batch[0], Delta::update(0, b"hi".to_vec()));
                match &batch[1] {
                    Delta::RewriteRequest { patch } => {
                        assert_eq!(patch.get("last_seq").and_then(Json::as_u64), Some(0));
                    }
                    other => panic!("expected progress rewrite, got {other:?}"),
                }
            }
            other => panic!("expected response, got {other:?}"),
        }
        let c = h.app_counters("lvc").unwrap();
        assert_eq!(c.deliveries, 1);
        assert_eq!(c.events_in, 1);
    }

    #[test]
    fn unknown_app_terminates_stream() {
        let mut h = BrassHost::new(HostConfig::small(1)); // no apps registered
        let fx = h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(42, 9), SimTime::ZERO);
        assert!(fx.iter().any(|e| matches!(
            e,
            HostEffect::Send { frame: Frame::Response { batch, .. }, .. }
            if batch.iter().any(|d| matches!(d, Delta::Terminate(_)))
        )));
        assert_eq!(h.counters().streams_rejected, 1);
    }

    #[test]
    fn bad_header_terminates_stream() {
        let mut h = host();
        let fx = h.on_subscribe(
            DeviceId(1),
            StreamId(1),
            Json::obj::<&str>([]),
            SimTime::ZERO,
        );
        assert!(matches!(fx[0], HostEffect::Send { .. }));
        assert_eq!(h.stream_count(), 0);
    }

    #[test]
    fn capacity_limit_two_per_core() {
        let mut h = BrassHost::new(HostConfig {
            host_id: HostId(1),
            cores: 1, // capacity 2
        });
        // Register three distinct trivial apps.
        for name in ["lvc", "typing", "messenger"] {
            match name {
                "lvc" => h.register_app("lvc", || {
                    Box::new(crate::apps::LvcApp::new(crate::apps::LvcConfig::default()))
                }),
                "typing" => h.register_app("typing", || Box::new(crate::apps::TypingApp::new())),
                _ => h.register_app("messenger", || Box::new(crate::apps::MessengerApp::new())),
            }
        }
        h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(1, 1), SimTime::ZERO);
        let typing_header = Json::obj([
            ("viewer", Json::from(1u64)),
            (
                "gql",
                Json::from("subscription { typingIndicator(threadId: 1, counterpartyId: 2) }"),
            ),
        ]);
        h.on_subscribe(DeviceId(1), StreamId(2), typing_header, SimTime::ZERO);
        assert_eq!(h.instance_count(), 2);
        // Third app hits the 2-per-core limit.
        let msgr_header = Json::obj([
            ("viewer", Json::from(1u64)),
            ("gql", Json::from("subscription { mailbox(uid: 1) }")),
        ]);
        let fx = h.on_subscribe(DeviceId(1), StreamId(3), msgr_header, SimTime::ZERO);
        assert_eq!(h.instance_count(), 2);
        assert!(fx.iter().any(|e| matches!(
            e,
            HostEffect::Send { frame: Frame::Response { batch, .. }, .. }
            if batch.contains(&Delta::Terminate(burst::frame::TerminateReason::ServerShutdown))
        )));
    }

    #[test]
    fn device_disconnect_closes_all_its_streams() {
        let mut h = host();
        h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(42, 9), SimTime::ZERO);
        h.on_subscribe(DeviceId(1), StreamId(2), lvc_header(43, 9), SimTime::ZERO);
        h.on_subscribe(DeviceId(2), StreamId(1), lvc_header(42, 8), SimTime::ZERO);
        let fx = h.on_device_disconnected(DeviceId(1), SimTime::ZERO);
        assert_eq!(h.stream_count(), 1);
        // Video 43 lost its only watcher → unsubscribed; 42 still watched.
        assert!(fx
            .iter()
            .any(|e| matches!(e, HostEffect::PylonUnsubscribe(t) if t.as_str() == "/LVC/43")));
        assert!(!fx
            .iter()
            .any(|e| matches!(e, HostEffect::PylonUnsubscribe(t) if t.as_str() == "/LVC/42")));
    }

    /// Regression for the `streams.keys()` hash-order family of bugs: a
    /// host crammed with many streams (both the shutdown drain and a
    /// device disconnect touch multiple keys) must emit its teardown
    /// effects in `(device, sid)` order, independent of insertion order.
    #[test]
    fn teardown_order_is_sorted_not_hash_order() {
        let drain_order = |subscribe_order: &[(u64, u64)]| -> Vec<(u64, StreamId)> {
            let mut h = host();
            for &(device, sid) in subscribe_order {
                h.on_subscribe(
                    DeviceId(device),
                    StreamId(sid),
                    lvc_header(40 + device % 3, device),
                    SimTime::ZERO,
                );
            }
            h.drain_for_shutdown(SimTime::ZERO)
                .iter()
                .filter_map(|e| match e {
                    HostEffect::Send {
                        device,
                        frame: Frame::Response { sid, batch },
                    } if batch.contains(&Delta::Terminate(
                        burst::frame::TerminateReason::ServerShutdown,
                    )) =>
                    {
                        Some((device.0, *sid))
                    }
                    _ => None,
                })
                .collect()
        };
        // Enough streams that std-HashMap iteration order would scramble.
        let forward: Vec<(u64, u64)> = (1..=64).map(|d| (d, 1 + d % 4)).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = drain_order(&forward);
        let b = drain_order(&reversed);
        assert_eq!(a, b, "drain order must not depend on insertion order");
        let mut sorted = a.clone();
        sorted.sort_unstable_by_key(|&(d, s)| (d, s.0));
        assert_eq!(a, sorted, "drain order is (device, sid)-sorted");
        assert_eq!(a.len(), 64);

        // Same property for a multi-stream device disconnect.
        let mut h = host();
        for sid in [9u64, 3, 7, 1, 5, 2, 8, 4, 6, 10] {
            h.on_subscribe(DeviceId(1), StreamId(sid), lvc_header(42, 1), SimTime::ZERO);
        }
        let before = h.stream_count();
        assert_eq!(before, 10);
        h.on_device_disconnected(DeviceId(1), SimTime::ZERO);
        assert_eq!(h.stream_count(), 0);
    }

    #[test]
    fn drain_for_shutdown_terminates_everything() {
        let mut h = host();
        h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(42, 9), SimTime::ZERO);
        h.on_subscribe(DeviceId(2), StreamId(1), lvc_header(42, 8), SimTime::ZERO);
        let fx = h.drain_for_shutdown(SimTime::ZERO);
        let terminates = fx
            .iter()
            .filter(|e| matches!(
                e,
                HostEffect::Send { frame: Frame::Response { batch, .. }, .. }
                if batch.contains(&Delta::Terminate(burst::frame::TerminateReason::ServerShutdown))
            ))
            .count();
        assert_eq!(terminates, 2);
        assert_eq!(h.stream_count(), 0);
    }

    #[test]
    fn redirect_rewrites_then_terminates() {
        let mut h = host();
        h.on_subscribe(DeviceId(1), StreamId(1), lvc_header(42, 9), SimTime::ZERO);
        let fx = h.redirect_stream(DeviceId(1), StreamId(1), 3, SimTime::ZERO);
        let batch = fx
            .iter()
            .find_map(|e| match e {
                HostEffect::Send {
                    frame: Frame::Response { batch, .. },
                    ..
                } => Some(batch.clone()),
                _ => None,
            })
            .expect("redirect response");
        assert!(matches!(
            &batch[0],
            Delta::RewriteRequest { patch } if patch.get("brass_host").and_then(Json::as_u64) == Some(3)
        ));
        assert!(matches!(
            batch[1],
            Delta::Terminate(burst::frame::TerminateReason::Redirect)
        ));
        assert_eq!(h.stream_count(), 0, "the stream left this host");
        // Redirecting an unknown stream is a no-op.
        assert!(h
            .redirect_stream(DeviceId(1), StreamId(1), 3, SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn ack_reaches_server_stream_retention() {
        let mut h = host();
        let msgr_header = Json::obj([
            ("viewer", Json::from(9u64)),
            ("gql", Json::from("subscription { mailbox(uid: 9) }")),
        ]);
        let fx = h.on_subscribe(DeviceId(1), StreamId(1), msgr_header, SimTime::ZERO);
        // Complete the initial backfill with one message.
        let token = fx
            .iter()
            .find_map(|e| match e {
                HostEffect::Was { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        let fx = h.on_was_response(
            "messenger",
            token,
            WasResponse::Mailbox(vec![(0, tao::ObjectId(500))]),
            SimTime::ZERO,
        );
        let token = fx
            .iter()
            .find_map(|e| match e {
                HostEffect::Was { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        let fx = h.on_was_response(
            "messenger",
            token,
            WasResponse::Payload(b"m0".to_vec().into()),
            SimTime::ZERO,
        );
        assert!(fx.iter().any(|e| matches!(e, HostEffect::Send { .. })));
        // Ack releases retained state (observable: no panic, stream intact).
        h.on_ack(DeviceId(1), StreamId(1), 0, SimTime::ZERO);
        assert_eq!(h.stream_count(), 1);
    }

    /// Builds a host with instances of several apps, live streams, pending
    /// WAS fetches and timers — a state worth snapshotting.
    fn busy_host() -> BrassHost {
        let mut h = host();
        for d in 1..=6u64 {
            h.on_subscribe(
                DeviceId(d),
                StreamId(1),
                lvc_header(40 + d % 3, d),
                SimTime::ZERO,
            );
        }
        h.on_pylon_event(&comment(41, 100, 0.95), SimTime::ZERO);
        h.on_pylon_event(&comment(42, 101, 0.90), SimTime::ZERO);
        let typing_header = Json::obj([
            ("viewer", Json::from(9u64)),
            (
                "gql",
                Json::from("subscription { typingIndicator(threadId: 5, counterpartyId: 6) }"),
            ),
        ]);
        h.on_subscribe(DeviceId(7), StreamId(2), typing_header, SimTime::ZERO);
        let msgr_header = Json::obj([
            ("viewer", Json::from(8u64)),
            ("gql", Json::from("subscription { mailbox(uid: 8) }")),
        ]);
        h.on_subscribe(DeviceId(8), StreamId(3), msgr_header, SimTime::ZERO);
        h
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let h = busy_host();
        let mut w = simkit::snap::SnapWriter::new();
        h.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = simkit::snap::SnapReader::new(&bytes);
        let restored = BrassHost::restore(&mut r).expect("restore");
        r.finish().expect("no trailing bytes");
        let mut w2 = simkit::snap::SnapWriter::new();
        restored.snap(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "snap(restore(snap(h))) differs");
        assert_eq!(restored.stream_count(), h.stream_count());
        assert_eq!(restored.instance_count(), h.instance_count());
        assert_eq!(restored.subscribed_topics(), h.subscribed_topics());
        assert_eq!(restored.stream_keys(), h.stream_keys());
    }

    #[test]
    fn restored_host_behaves_identically() {
        let h = busy_host();
        let mut w = simkit::snap::SnapWriter::new();
        h.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = simkit::snap::SnapReader::new(&bytes);
        let mut a = BrassHost::restore(&mut r).expect("restore");
        let mut b = {
            let mut r = simkit::snap::SnapReader::new(&bytes);
            BrassHost::restore(&mut r).expect("restore")
        };
        drop(h);
        // Drive both restored copies with the same inputs; every effect
        // stream must match (Debug form covers frames, topics, tokens).
        let now = SimTime::from_secs(2);
        for (fa, fb) in [
            (
                a.on_pylon_event(&comment(41, 102, 0.99), now),
                b.on_pylon_event(&comment(41, 102, 0.99), now),
            ),
            (a.on_timer("lvc", 0, now), b.on_timer("lvc", 0, now)),
            (
                a.on_cancel(DeviceId(2), StreamId(1), now),
                b.on_cancel(DeviceId(2), StreamId(1), now),
            ),
            (
                a.on_device_disconnected(DeviceId(3), now),
                b.on_device_disconnected(DeviceId(3), now),
            ),
        ] {
            assert_eq!(format!("{fa:?}"), format!("{fb:?}"));
        }
    }

    #[test]
    fn truncated_host_snapshot_fails_closed() {
        let h = busy_host();
        let mut w = simkit::snap::SnapWriter::new();
        h.snap(&mut w);
        let bytes = w.into_bytes();
        for cut in [1, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            let mut r = simkit::snap::SnapReader::new(&bytes[..cut]);
            assert!(
                BrassHost::restore(&mut r).is_err() || r.finish().is_err(),
                "truncation at {cut} must not produce a clean host"
            );
        }
    }
}
