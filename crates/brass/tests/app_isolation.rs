//! Multi-tenant isolation: several applications coexisting on one BRASS
//! host, exercising the paper's operational claims (independent instances,
//! per-app state, shared subscription manager, misbehaviour containment).

use brass::app::{BrassApp, Ctx, DeviceId, StreamKey, WasResponse};
use brass::host::{BrassHost, HostConfig, HostEffect};
use burst::frame::{Frame, StreamId};
use burst::json::Json;
use pylon::Topic;
use simkit::time::SimTime;
use tao::ObjectId;
use was::event::{EventKind, EventMeta};
use was::UpdateEvent;

fn host() -> BrassHost {
    let mut h = BrassHost::new(HostConfig::small(1));
    h.register_standard_apps();
    h
}

fn gql_header(viewer: u64, gql: &str) -> Json {
    Json::obj([("viewer", Json::from(viewer)), ("gql", Json::from(gql))])
}

#[test]
fn five_applications_coexist_on_one_host() {
    let mut h = host();
    let subs = [
        "subscription { liveVideoComments(videoId: 1) }",
        "subscription { typingIndicator(threadId: 1, counterpartyId: 2) }",
        "subscription { activeStatus }",
        "subscription { storiesTray }",
        "subscription { mailbox(uid: 9) }",
        "subscription { postLikes(postId: 4) }",
    ];
    for (i, gql) in subs.iter().enumerate() {
        h.on_subscribe(
            DeviceId(9),
            StreamId(i as u64 + 1),
            gql_header(9, gql),
            SimTime::ZERO,
        );
    }
    assert_eq!(h.instance_count(), 6, "one instance per application");
    assert_eq!(h.stream_count(), 6);
    assert!(h.instance_count() <= h.capacity());
}

#[test]
fn events_only_reach_subscribed_applications() {
    let mut h = host();
    h.on_subscribe(
        DeviceId(1),
        StreamId(1),
        gql_header(1, "subscription { liveVideoComments(videoId: 7) }"),
        SimTime::ZERO,
    );
    h.on_subscribe(
        DeviceId(2),
        StreamId(1),
        gql_header(2, "subscription { postLikes(postId: 7) }"),
        SimTime::ZERO,
    );
    // An LVC event on /LVC/7: only the LVC instance sees it.
    let ev = UpdateEvent {
        id: 1,
        topic: Topic::live_video_comments(7),
        object: ObjectId(100),
        kind: EventKind::CommentPosted,
        meta: EventMeta {
            uid: 1,
            quality: 0.9,
            lang: Some("en".into()),
            created_ms: 0,
            seq: None,
            typing: None,
        },
    };
    h.on_pylon_event(&ev, SimTime::ZERO);
    assert_eq!(h.app_counters("lvc").unwrap().events_in, 1);
    assert_eq!(h.app_counters("likes").unwrap().events_in, 0);
}

/// A deliberately misbehaving application: panics are NOT what we model
/// (Rust would abort); instead it floods effects. The host must pass them
/// through without corrupting other instances' state.
struct NoisyApp {
    streams: usize,
}

impl BrassApp for NoisyApp {
    fn name(&self) -> &'static str {
        "noisy"
    }
    fn on_subscribe(&mut self, ctx: &mut Ctx<'_>, stream: StreamKey, _header: &Json) {
        self.streams += 1;
        // Floods 100 payloads immediately.
        for i in 0..100u64 {
            ctx.send(stream, format!("noise-{i}").into_bytes());
        }
    }
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: &UpdateEvent) {}
    fn on_was_response(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _token: brass::app::FetchToken,
        _response: WasResponse,
    ) {
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    fn on_stream_closed(&mut self, _ctx: &mut Ctx<'_>, _stream: StreamKey) {}
}

#[test]
fn a_noisy_tenant_does_not_corrupt_neighbours() {
    let mut h = host();
    h.register_app("noisy", || Box::new(NoisyApp { streams: 0 }));
    // A healthy LVC stream first.
    h.on_subscribe(
        DeviceId(1),
        StreamId(1),
        gql_header(1, "subscription { liveVideoComments(videoId: 7) }"),
        SimTime::ZERO,
    );
    // The noisy app spools up via a pre-resolved header.
    let noisy_header = Json::obj([
        ("viewer", Json::from(2u64)),
        ("app", Json::from("noisy")),
        ("topic", Json::from("/Noise/1")),
    ]);
    let fx = h.on_subscribe(DeviceId(2), StreamId(1), noisy_header, SimTime::ZERO);
    let noise_frames = fx
        .iter()
        .filter(|e| {
            matches!(
                e,
                HostEffect::Send {
                    device: DeviceId(2),
                    frame: Frame::Response { .. }
                }
            )
        })
        .count();
    assert!(noise_frames >= 100, "the flood went to its own device only");
    // The LVC instance still works normally.
    let ev = UpdateEvent {
        id: 1,
        topic: Topic::live_video_comments(7),
        object: ObjectId(100),
        kind: EventKind::CommentPosted,
        meta: EventMeta {
            uid: 1,
            quality: 0.9,
            lang: Some("en".into()),
            created_ms: 0,
            seq: None,
            typing: None,
        },
    };
    h.on_pylon_event(&ev, SimTime::ZERO);
    assert_eq!(h.app_counters("lvc").unwrap().events_in, 1);
    let fx = h.on_timer("lvc", 0, SimTime::from_secs(2));
    assert!(
        fx.iter().any(|e| matches!(e, HostEffect::Was { .. })),
        "LVC still fetches and serves"
    );
}

#[test]
fn per_app_counters_are_independent() {
    let mut h = host();
    h.on_subscribe(
        DeviceId(1),
        StreamId(1),
        gql_header(1, "subscription { postLikes(postId: 7) }"),
        SimTime::ZERO,
    );
    for i in 0..10u64 {
        let ev = UpdateEvent {
            id: i,
            topic: Topic::new("/Likes/7").unwrap(),
            object: ObjectId(7),
            kind: EventKind::PostLiked,
            meta: EventMeta {
                uid: i,
                ..Default::default()
            },
        };
        h.on_pylon_event(&ev, SimTime::ZERO);
    }
    let likes = h.app_counters("likes").unwrap();
    assert_eq!(likes.events_in, 10);
    assert_eq!(likes.decisions, 10);
    assert_eq!(likes.deliveries, 1, "rate-limited counter pushes");
    // Totals aggregate across instances.
    let total = h.total_app_counters();
    assert_eq!(total.events_in, 10);
}
