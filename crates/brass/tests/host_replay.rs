//! Host-level retention and retransmission: the Messenger retransmit loop
//! driven through [`BrassHost`], including ack-based release.

use brass::app::{DeviceId, WasResponse};
use brass::host::{BrassHost, HostConfig, HostEffect};
use burst::frame::{Delta, Frame, StreamId};
use burst::json::Json;
use pylon::Topic;
use simkit::time::{SimDuration, SimTime};
use tao::ObjectId;
use was::event::{EventKind, EventMeta};
use was::UpdateEvent;

fn msgr_header(mailbox: u64, viewer: u64) -> Json {
    Json::obj([
        ("viewer", Json::from(viewer)),
        (
            "gql",
            Json::from(format!("subscription {{ mailbox(uid: {mailbox}) }}")),
        ),
    ])
}

fn msg_event(mailbox: u64, seq: u64, object: u64) -> UpdateEvent {
    UpdateEvent {
        id: object,
        topic: Topic::messenger_mailbox(mailbox),
        object: ObjectId(object),
        kind: EventKind::MessageAdded,
        meta: EventMeta {
            uid: 1,
            seq: Some(seq),
            ..Default::default()
        },
    }
}

fn was_token(fx: &[HostEffect]) -> Option<(String, brass::app::FetchToken)> {
    fx.iter().find_map(|e| match e {
        HostEffect::Was { app, token, .. } => Some((app.clone(), *token)),
        _ => None,
    })
}

fn update_frames(fx: &[HostEffect]) -> Vec<(u64, Vec<Vec<u8>>)> {
    fx.iter()
        .filter_map(|e| match e {
            HostEffect::Send {
                device,
                frame: Frame::Response { batch, .. },
            } => {
                let updates: Vec<Vec<u8>> = batch
                    .iter()
                    .filter_map(|d| match d {
                        Delta::Update { payload, .. } => Some(payload.to_vec()),
                        _ => None,
                    })
                    .collect();
                if updates.is_empty() {
                    None
                } else {
                    Some((device.0, updates))
                }
            }
            _ => None,
        })
        .collect()
}

fn timers(fx: &[HostEffect]) -> Vec<(SimTime, String, u64)> {
    fx.iter()
        .filter_map(|e| match e {
            HostEffect::Timer { at, app, token } => Some((*at, app.clone(), *token)),
            _ => None,
        })
        .collect()
}

/// Subscribes bob's mailbox and resolves the initial backfill as empty.
fn open_mailbox(host: &mut BrassHost) -> Vec<HostEffect> {
    let mut fx = host.on_subscribe(DeviceId(2), StreamId(1), msgr_header(2, 2), SimTime::ZERO);
    let (app, token) = was_token(&fx).expect("initial backfill");
    fx.extend(host.on_was_response(&app, token, WasResponse::Mailbox(vec![]), SimTime::ZERO));
    fx
}

#[test]
fn unacked_messages_are_retransmitted_until_acked() {
    let mut host = BrassHost::new(HostConfig::small(1));
    host.register_standard_apps();
    let fx = open_mailbox(&mut host);
    let retransmit_timer = timers(&fx)
        .into_iter()
        .find(|(_, app, _)| app == "messenger")
        .expect("retransmit timer armed on subscribe");

    // One message arrives and is sent.
    let fx = host.on_pylon_event(&msg_event(2, 0, 100), SimTime::from_secs(1));
    let (app, token) = was_token(&fx).unwrap();
    let fx = host.on_was_response(
        &app,
        token,
        WasResponse::Payload(b"m0".to_vec().into()),
        SimTime::from_secs(1),
    );
    assert_eq!(update_frames(&fx).len(), 1, "first transmission");

    // No ack: the retransmit timer replays it.
    let fx = host.on_timer("messenger", retransmit_timer.2, retransmit_timer.0);
    let replays = update_frames(&fx);
    assert_eq!(replays.len(), 1, "unacked message replayed");
    assert_eq!(replays[0].1, vec![b"m0".to_vec()]);
    let next_timer = timers(&fx)[0].clone();

    // The device acks; the next timer tick replays nothing.
    host.on_ack(DeviceId(2), StreamId(1), 0, next_timer.0);
    let fx = host.on_timer("messenger", next_timer.2, next_timer.0);
    assert!(update_frames(&fx).is_empty(), "acked messages are released");
    assert!(!timers(&fx).is_empty(), "the loop keeps running");
}

#[test]
fn retransmit_loop_dies_with_the_stream() {
    let mut host = BrassHost::new(HostConfig::small(1));
    host.register_standard_apps();
    let fx = open_mailbox(&mut host);
    let (at, _, token) = timers(&fx)
        .into_iter()
        .find(|(_, app, _)| app == "messenger")
        .unwrap();
    host.on_cancel(DeviceId(2), StreamId(1), at);
    let fx = host.on_timer("messenger", token, at + SimDuration::from_secs(5));
    assert!(fx.is_empty(), "no replay and no re-arm after cancel");
}

#[test]
fn best_effort_streams_retain_nothing() {
    let mut host = BrassHost::new(HostConfig::small(1));
    host.register_standard_apps();
    let lvc_header = Json::obj([
        ("viewer", Json::from(9u64)),
        (
            "gql",
            Json::from("subscription { liveVideoComments(videoId: 5) }"),
        ),
    ]);
    host.on_subscribe(DeviceId(9), StreamId(1), lvc_header, SimTime::ZERO);
    // Push an update through the LVC pipeline.
    let ev = UpdateEvent {
        id: 1,
        topic: Topic::live_video_comments(5),
        object: ObjectId(50),
        kind: EventKind::CommentPosted,
        meta: EventMeta {
            uid: 1,
            quality: 0.9,
            lang: Some("en".into()),
            created_ms: 0,
            seq: None,
            typing: None,
        },
    };
    host.on_pylon_event(&ev, SimTime::ZERO);
    let fx = host.on_timer("lvc", 0, SimTime::from_secs(2));
    let (app, token) = was_token(&fx).unwrap();
    let fx = host.on_was_response(
        &app,
        token,
        WasResponse::Payload(b"c".to_vec().into()),
        SimTime::from_secs(2),
    );
    assert_eq!(update_frames(&fx).len(), 1);
    // An LVC ack is harmless and retains nothing to release (best-effort
    // streams never buffer); this is a no-crash/no-effect check.
    let fx = host.on_ack(DeviceId(9), StreamId(1), 0, SimTime::from_secs(3));
    assert!(update_frames(&fx).is_empty());
}
