//! A deterministic, fast, non-cryptographic hasher (the FxHash algorithm
//! from the Firefox/rustc tradition), vendored so hot-path maps can avoid
//! both SipHash's per-key cost and `RandomState`'s per-process seed.
//!
//! Determinism is the point: the standard library's default hasher is
//! randomly seeded per process, so `HashMap` iteration order varies from
//! run to run. Simulation state must never depend on that (order-dependent
//! effects are drained through sorted views), but switching the hot maps to
//! [`FxHashMap`] removes the hazard class at the container level while also
//! making integer-keyed lookups (topic ids, stream ids, seqs) a few
//! multiplies instead of a SipHash round.
//!
//! Not DoS-resistant — never use for maps keyed by untrusted external
//! input. Every key in this workspace originates inside the simulation.
//!
//! # Examples
//!
//! ```
//! use simkit::fxhash::FxHashMap;
//!
//! let mut m: FxHashMap<u32, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (a 64-bit truncation of π's golden-ratio cousin
/// used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash state: one 64-bit word folded with rotate-xor-multiply.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`]; zero-sized, no per-process
/// seed, so two maps built the same way hash identically in every run.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        // The whole point: no per-process randomness.
        let a = FxBuildHasher::default().hash_one(12345u64);
        let b = FxBuildHasher::default().hash_one(12345u64);
        assert_eq!(a, b);
        assert_eq!(hash_one(&"topic"), hash_one(&"topic"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_one(&1u32), hash_one(&2u32));
        assert_ne!(hash_one(&"/LVC/1"), hash_one(&"/LVC/2"));
        // Byte-tail disambiguation: same prefix, different lengths.
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefgh\x00");
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefgh");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
            s.insert(i * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&617), Some(&1234));
        assert!(s.contains(&999));
        assert!(!s.contains(&1000));
    }
}
