//! Deterministic binary snapshots of simulation state.
//!
//! Every state-bearing type in the workspace can serialize itself into a
//! [`SnapWriter`] and rebuild itself from a [`SnapReader`]. The encoding is
//! deliberately dumb: little-endian fixed-width integers, length-prefixed
//! byte strings, and *nothing* implicit — no varints, no schema evolution,
//! no reflection. A snapshot is only ever read by the same build that wrote
//! it (the version stamp enforces this), so the format optimises for two
//! properties instead:
//!
//! * **Bit-determinism** — the same world state always produces the same
//!   bytes. Unordered containers are written in sorted key order, floats as
//!   raw IEEE bits (so `±INFINITY` sentinels in empty histograms survive),
//!   and interned strings by value so they re-intern on load.
//! * **Fail-closed loading** — a snapshot is either read completely and
//!   consistently or not at all. Every read is bounds-checked, the sealed
//!   container carries a checksum verified *before* parsing begins, and
//!   restore routines validate structural invariants (sorted maps strictly
//!   ascending, subscriber lists ordered) so a corrupt file can never leave
//!   a half-built world behind.
//!
//! The module also provides [`Fp64`], the rolling fingerprint used to hash
//! metrics and hop ledgers tick-by-tick; the bisect harness compares these
//! fingerprints to binary-search two runs down to their first diverging
//! event.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::BuildHasher;

use crate::time::{SimDuration, SimTime};

/// Magic bytes opening every sealed snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"BRSNAP\r\n";

/// Format version stamped after the magic. Bumped on any encoding change;
/// mismatches are rejected before a single body byte is parsed.
pub const SNAP_VERSION: u32 = 1;

/// Why a snapshot failed to load. Loading is fail-closed: any error means
/// no state was produced, never a partial world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The reader ran past the end of the buffer.
    Eof {
        /// Byte offset at which the truncation was detected.
        at: usize,
    },
    /// The file does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The body checksum does not match the header stamp.
    BadChecksum,
    /// Bytes remained after the outermost value was fully decoded.
    Trailing {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A decoded value violated a structural invariant (bad enum tag,
    /// unsorted map keys, out-of-range length, ...).
    Invalid(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapError::Trailing { remaining } => {
                write!(f, "snapshot has {remaining} trailing bytes after decode")
            }
            SnapError::Invalid(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Shorthand result for restore paths.
pub type SnapResult<T> = Result<T, SnapError>;

/// Rolling 64-bit fingerprint (FNV-1a core with an avalanche finish per
/// word). Identical input sequences give identical values, and the state is
/// one `u64`, so ledgers can fingerprint every hop record as it is appended
/// regardless of whether the record itself is retained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fp64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fp64 {
    /// A fresh fingerprint (FNV offset basis).
    pub fn new() -> Self {
        Fp64(FNV_OFFSET)
    }

    /// Folds one 64-bit word into the fingerprint.
    pub fn mix_u64(&mut self, v: u64) {
        // FNV-1a over the 8 bytes, then a xor-shift avalanche so short
        // sequences of small integers still disperse across all 64 bits.
        let mut h = self.0;
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 32;
        self.0 = h;
    }

    /// Folds a byte string (length-delimited) into the fingerprint.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        self.mix_u64(bytes.len() as u64);
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The current fingerprint value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Rebuilds a fingerprint from a previously extracted [`value`].
    ///
    /// [`value`]: Fp64::value
    pub fn from_value(v: u64) -> Self {
        Fp64(v)
    }
}

impl Default for Fp64 {
    fn default() -> Self {
        Fp64::new()
    }
}

/// One-shot FNV-1a over a byte slice; used as the sealed-container checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only byte sink for snapshot encoding.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the raw body bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its raw IEEE-754 bits, so `±INFINITY`, `-0.0`
    /// and NaN payloads round-trip exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over snapshot body bytes.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte has been consumed. Call after decoding the
    /// outermost value; trailing garbage means the file is not what the
    /// header claimed.
    pub fn finish(&self) -> SnapResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapError::Trailing {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::Eof { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is invalid.
    pub fn get_bool(&mut self) -> SnapResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Invalid(format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> SnapResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> SnapResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> SnapResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> SnapResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a `usize` written by [`SnapWriter::put_usize`], rejecting
    /// values that do not fit the platform's pointer width.
    pub fn get_usize(&mut self) -> SnapResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Invalid(format!("usize overflow: {v}")))
    }

    /// Reads a length that is about to size an allocation. The length is
    /// additionally capped by the bytes remaining, so a corrupt prefix can
    /// never trigger a multi-gigabyte `Vec::with_capacity`.
    pub fn get_len(&mut self) -> SnapResult<usize> {
        let n = self.get_usize()?;
        // Every element of every collection occupies at least one encoded
        // byte, so a claimed length beyond `remaining` is corruption.
        if n > self.remaining() {
            return Err(SnapError::Invalid(format!(
                "length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> SnapResult<Vec<u8>> {
        let n = self.get_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> SnapResult<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| SnapError::Invalid("non-UTF-8 string".into()))
    }
}

// ---------------------------------------------------------------------------
// Sealed container
// ---------------------------------------------------------------------------

/// Wraps body bytes in the versioned, checksummed on-disk container:
/// magic, version, body length, FNV-64 checksum, body.
pub fn seal(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 28);
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Verifies the container header and returns the body slice. Magic,
/// version, exact length, and checksum are all checked *before* any body
/// byte is handed to a decoder; failure at any step yields a clean error.
pub fn unseal(bytes: &[u8]) -> SnapResult<&[u8]> {
    if bytes.len() < 28 {
        return Err(SnapError::Eof { at: bytes.len() });
    }
    if bytes[0..8] != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            expected: SNAP_VERSION,
        });
    }
    let body_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let stamp = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let body = &bytes[28..];
    if body_len != body.len() as u64 {
        // Both truncation and trailing garbage land here: the header said
        // exactly how many body bytes to expect.
        return if (body.len() as u64) < body_len {
            Err(SnapError::Eof { at: bytes.len() })
        } else {
            Err(SnapError::Trailing {
                remaining: body.len() - body_len as usize,
            })
        };
    }
    if fnv64(body) != stamp {
        return Err(SnapError::BadChecksum);
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Snap trait and impls
// ---------------------------------------------------------------------------

/// A value that can write itself into a snapshot and rebuild itself from
/// one. Implementations must be bit-deterministic (same state, same bytes)
/// and fail-closed (every decode error surfaces as `Err`, never a default).
pub trait Snap: Sized {
    /// Appends this value's encoding to `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`.
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self>;
}

impl Snap for u8 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_u8()
    }
}

impl Snap for u16 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u16(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_u16()
    }
}

impl Snap for u32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_u32()
    }
}

impl Snap for u64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_u64()
    }
}

impl Snap for i64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_i64(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_i64()
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_usize()
    }
}

impl Snap for f64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_f64()
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bool(*self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_bool()
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        r.get_str()
    }
}

impl Snap for Box<str> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok(r.get_str()?.into_boxed_str())
    }
}

impl Snap for std::sync::Arc<str> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        // Note: this produces a fresh allocation; callers that intern
        // (`Tao`, `BrassHost`) re-intern through their own tables instead
        // of using this impl for the canonical copy.
        Ok(std::sync::Arc::from(r.get_str()?.as_str()))
    }
}

impl Snap for Box<[u8]> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bytes(self);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok(r.get_bytes()?.into_boxed_slice())
    }
}

impl Snap for SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_micros());
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok(SimTime::from_micros(r.get_u64()?))
    }
}

impl Snap for SimDuration {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_micros());
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok(SimDuration::from_micros(r.get_u64()?))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            t => Err(SnapError::Invalid(format!("Option tag {t}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let n = r.get_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<const N: usize> Snap for [u64; N] {
    fn snap(&self, w: &mut SnapWriter) {
        for v in self {
            w.put_u64(*v);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let mut out = [0u64; N];
        for slot in &mut out {
            *slot = r.get_u64()?;
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let n = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            if out.insert(k, v).is_some() {
                return Err(SnapError::Invalid("duplicate BTreeMap key".into()));
            }
        }
        Ok(out)
    }
}

/// Writes a hash map with entries in sorted key order, so the same logical
/// map always snapshots to the same bytes regardless of hasher history.
pub fn snap_map<K, V, S>(map: &HashMap<K, V, S>, w: &mut SnapWriter)
where
    K: Snap + Ord,
    V: Snap,
    S: BuildHasher,
{
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.put_usize(entries.len());
    for (k, v) in entries {
        k.snap(w);
        v.snap(w);
    }
}

/// Restores a hash map written by [`snap_map`], rejecting duplicate keys.
pub fn restore_map<K, V, S>(r: &mut SnapReader<'_>) -> SnapResult<HashMap<K, V, S>>
where
    K: Snap + Ord + std::hash::Hash + Eq,
    V: Snap,
    S: BuildHasher + Default,
{
    let n = r.get_len()?;
    let mut out = HashMap::with_capacity_and_hasher(n, S::default());
    for _ in 0..n {
        let k = K::restore(r)?;
        let v = V::restore(r)?;
        if out.insert(k, v).is_some() {
            return Err(SnapError::Invalid("duplicate map key".into()));
        }
    }
    Ok(out)
}

/// Writes a hash set with elements in sorted order.
pub fn snap_set<T, S>(set: &HashSet<T, S>, w: &mut SnapWriter)
where
    T: Snap + Ord,
    S: BuildHasher,
{
    let mut elems: Vec<&T> = set.iter().collect();
    elems.sort();
    w.put_usize(elems.len());
    for e in elems {
        e.snap(w);
    }
}

/// Restores a hash set written by [`snap_set`], rejecting duplicates.
pub fn restore_set<T, S>(r: &mut SnapReader<'_>) -> SnapResult<HashSet<T, S>>
where
    T: Snap + Ord + std::hash::Hash + Eq,
    S: BuildHasher + Default,
{
    let n = r.get_len()?;
    let mut out = HashSet::with_capacity_and_hasher(n, S::default());
    for _ in 0..n {
        if !out.insert(T::restore(r)?) {
            return Err(SnapError::Invalid("duplicate set element".into()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = SnapWriter::new();
        7u8.snap(&mut w);
        65535u16.snap(&mut w);
        123456u32.snap(&mut w);
        u64::MAX.snap(&mut w);
        (-42i64).snap(&mut w);
        f64::INFINITY.snap(&mut w);
        f64::NEG_INFINITY.snap(&mut w);
        (-0.0f64).snap(&mut w);
        true.snap(&mut w);
        "héllo".to_string().snap(&mut w);
        Some(9u64).snap(&mut w);
        Option::<u64>::None.snap(&mut w);
        vec![1u64, 2, 3].snap(&mut w);
        SimTime::from_micros(77).snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(u8::restore(&mut r).unwrap(), 7);
        assert_eq!(u16::restore(&mut r).unwrap(), 65535);
        assert_eq!(u32::restore(&mut r).unwrap(), 123456);
        assert_eq!(u64::restore(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::restore(&mut r).unwrap(), -42);
        assert_eq!(f64::restore(&mut r).unwrap(), f64::INFINITY);
        assert_eq!(f64::restore(&mut r).unwrap(), f64::NEG_INFINITY);
        assert_eq!(f64::restore(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(bool::restore(&mut r).unwrap());
        assert_eq!(String::restore(&mut r).unwrap(), "héllo");
        assert_eq!(Option::<u64>::restore(&mut r).unwrap(), Some(9));
        assert_eq!(Option::<u64>::restore(&mut r).unwrap(), None);
        assert_eq!(Vec::<u64>::restore(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(SimTime::restore(&mut r).unwrap(), SimTime::from_micros(77));
        r.finish().unwrap();
    }

    #[test]
    fn map_snapshots_are_key_ordered() {
        let mut m1: HashMap<u64, u64> = HashMap::new();
        let mut m2: HashMap<u64, u64> = HashMap::with_capacity(1024);
        for k in [5u64, 1, 9, 3] {
            m1.insert(k, k * 2);
        }
        for k in [3u64, 9, 1, 5] {
            m2.insert(k, k * 2);
        }
        let mut w1 = SnapWriter::new();
        let mut w2 = SnapWriter::new();
        snap_map(&m1, &mut w1);
        snap_map(&m2, &mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let body = b"hello snapshot".to_vec();
        let sealed = seal(body.clone());
        assert_eq!(unseal(&sealed).unwrap(), &body[..]);
    }

    #[test]
    fn unseal_rejects_truncation_at_every_byte() {
        let sealed = seal(b"some body bytes".to_vec());
        for n in 0..sealed.len() {
            assert!(unseal(&sealed[..n]).is_err(), "accepted {n}-byte prefix");
        }
    }

    #[test]
    fn unseal_rejects_single_byte_corruption() {
        let sealed = seal(b"checksummed".to_vec());
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert!(unseal(&bad).is_err(), "accepted corruption at byte {i}");
        }
    }

    #[test]
    fn unseal_rejects_trailing_garbage() {
        let mut sealed = seal(b"body".to_vec());
        sealed.push(0xAA);
        assert_eq!(unseal(&sealed), Err(SnapError::Trailing { remaining: 1 }));
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fp64::new();
        a.mix_u64(1);
        a.mix_u64(2);
        let mut b = Fp64::new();
        b.mix_u64(2);
        b.mix_u64(1);
        assert_ne!(a.value(), b.value());
        let mut c = Fp64::new();
        c.mix_u64(1);
        c.mix_u64(2);
        assert_eq!(a.value(), c.value());
    }

    #[test]
    fn get_len_rejects_absurd_lengths() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(Vec::<u64>::restore(&mut r).is_err());
    }
}
