//! Per-update hop-ledger tracing.
//!
//! Every update admitted to a simulation gets a [`TraceId`]; as the update
//! moves write → Pylon → BRASS → BURST → device, each component appends a
//! timestamped [`HopRecord`] to a central [`TraceLedger`]. The ledger then
//! answers the questions aggregate counters cannot:
//!
//! * the full hop chain of any one update (where did it go, when),
//! * per-hop latency histograms (log-bucketed, p50/p95/p99/max),
//! * a drop attribution table — which hop killed an update, and why,
//! * the N slowest end-to-end deliveries of a run.
//!
//! Records are append-only and fully deterministic: two runs from the same
//! seed produce bit-identical ledgers, which the determinism regression
//! tests rely on.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

use crate::metrics::{Histogram, Summary};
use crate::time::{SimDuration, SimTime};

/// Identifier of one traced update. The simulation assigns these at write
/// commit (one per update event admitted to the pipeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A pipeline stage an update passes through (the paper's Fig. 5 path).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hop {
    /// The write committed at the WAS/TAO and emitted an update event.
    TaoCommit,
    /// The event reached Pylon and fanned out to subscribed hosts.
    PylonPublish,
    /// Pylon handed the event to one BRASS host.
    PylonDeliver,
    /// BRASS processing: filtering, buffering, and the payload fetch.
    BrassProcess,
    /// The BRASS emitted a BURST response frame carrying the payload.
    BrassSend,
    /// The frame cleared the edge (proxy + POP) toward the device.
    BurstDeliver,
    /// The device received and rendered the update.
    DeviceRender,
}

impl Hop {
    /// Short stable name, used in tables and dumps.
    pub fn name(self) -> &'static str {
        match self {
            Hop::TaoCommit => "tao_commit",
            Hop::PylonPublish => "pylon_publish",
            Hop::PylonDeliver => "pylon_deliver",
            Hop::BrassProcess => "brass_process",
            Hop::BrassSend => "brass_send",
            Hop::BurstDeliver => "burst_deliver",
            Hop::DeviceRender => "device_render",
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a hop killed an update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// Content language did not match the viewer's.
    LanguageFilter,
    /// ML quality score below the application's floor.
    QualityFilter,
    /// The update was already stale when the filter saw it.
    Stale,
    /// The WAS privacy check denied the viewer.
    PrivacyBlock,
    /// The per-stream rate limit starved it until it aged out of the
    /// ranked buffer.
    RateLimit,
    /// Evicted from a full ranked buffer by higher-ranked updates.
    BufferOverflow,
    /// The referenced object no longer existed at fetch time.
    NotFound,
    /// Published to a topic with no subscribed host.
    NoSubscribers,
    /// The target device was disconnected when the frame arrived.
    DeviceDisconnected,
    /// The frame was lost on the last mile.
    LastMileLoss,
}

impl DropReason {
    /// Short stable name, used in tables and dumps.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::LanguageFilter => "language_filter",
            DropReason::QualityFilter => "quality_filter",
            DropReason::Stale => "stale",
            DropReason::PrivacyBlock => "privacy_block",
            DropReason::RateLimit => "rate_limit",
            DropReason::BufferOverflow => "buffer_overflow",
            DropReason::NotFound => "not_found",
            DropReason::NoSubscribers => "no_subscribers",
            DropReason::DeviceDisconnected => "device_disconnected",
            DropReason::LastMileLoss => "last_mile_loss",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of one hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HopOutcome {
    /// The update moved on.
    Ok,
    /// The hop killed the update (for at least one viewer).
    Dropped(DropReason),
}

/// One timestamped entry in the ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// The traced update.
    pub trace_id: TraceId,
    /// The pipeline stage.
    pub hop: Hop,
    /// When the update reached the stage.
    pub at: SimTime,
    /// What the stage did with it.
    pub outcome: HopOutcome,
}

impl fmt::Display for HopRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            HopOutcome::Ok => {
                write!(
                    f,
                    "{:>10.3}ms  {:<14} ok",
                    self.at.as_micros() as f64 / 1e3,
                    self.hop
                )
            }
            HopOutcome::Dropped(r) => write!(
                f,
                "{:>10.3}ms  {:<14} DROPPED: {r}",
                self.at.as_micros() as f64 / 1e3,
                self.hop
            ),
        }
    }
}

/// The central append-only hop ledger of a simulation run.
///
/// # Examples
///
/// ```
/// use simkit::time::SimTime;
/// use simkit::trace::{DropReason, Hop, HopOutcome, TraceId, TraceLedger};
///
/// let mut ledger = TraceLedger::new();
/// let t = TraceId(1);
/// ledger.record(t, Hop::TaoCommit, SimTime::from_millis(0), HopOutcome::Ok);
/// ledger.record(t, Hop::PylonPublish, SimTime::from_millis(3),
///               HopOutcome::Dropped(DropReason::NoSubscribers));
/// assert_eq!(ledger.chain(t).len(), 2);
/// assert_eq!(ledger.drop_of(t), Some((Hop::PylonPublish, DropReason::NoSubscribers)));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLedger {
    records: Vec<HopRecord>,
    /// Indices into `records`, per trace, in append order.
    by_trace: HashMap<TraceId, Vec<u32>>,
    /// Latency from the previous hop of the same trace to this hop (ms).
    hop_latency: BTreeMap<Hop, Histogram>,
    /// (hop, reason) → updates killed there.
    drops: BTreeMap<(Hop, DropReason), u64>,
    /// Completed deliveries: (trace, end-to-end latency), in render order.
    delivered: Vec<(TraceId, SimDuration)>,
}

impl TraceLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one hop record, updating the per-hop latency histogram (the
    /// time since the trace's previous record) and, on a
    /// [`Hop::DeviceRender`] success, the delivery list.
    pub fn record(&mut self, trace_id: TraceId, hop: Hop, at: SimTime, outcome: HopOutcome) {
        let idx = self.records.len() as u32;
        let entries = self.by_trace.entry(trace_id).or_default();
        if let Some(&prev) = entries.last() {
            let prev_at = self.records[prev as usize].at;
            self.hop_latency
                .entry(hop)
                .or_default()
                .record(at.saturating_since(prev_at).as_millis_f64());
        }
        if let HopOutcome::Dropped(reason) = outcome {
            *self.drops.entry((hop, reason)).or_insert(0) += 1;
        }
        if hop == Hop::DeviceRender && outcome == HopOutcome::Ok {
            if let Some(&first) = entries.first() {
                let e2e = at.saturating_since(self.records[first as usize].at);
                self.delivered.push((trace_id, e2e));
            }
        }
        entries.push(idx);
        self.records.push(HopRecord {
            trace_id,
            hop,
            at,
            outcome,
        });
    }

    /// All records, in append order.
    pub fn records(&self) -> &[HopRecord] {
        &self.records
    }

    /// Number of distinct traces seen.
    pub fn trace_count(&self) -> usize {
        self.by_trace.len()
    }

    /// The hop chain of one trace, in order.
    pub fn chain(&self, trace_id: TraceId) -> Vec<HopRecord> {
        self.by_trace
            .get(&trace_id)
            .map(|idxs| idxs.iter().map(|&i| self.records[i as usize]).collect())
            .unwrap_or_default()
    }

    /// All trace ids, ascending.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.by_trace.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Whether the trace rendered on at least one device.
    pub fn is_delivered(&self, trace_id: TraceId) -> bool {
        self.chain(trace_id)
            .iter()
            .any(|r| r.hop == Hop::DeviceRender && r.outcome == HopOutcome::Ok)
    }

    /// The first drop recorded for a trace, if any.
    pub fn drop_of(&self, trace_id: TraceId) -> Option<(Hop, DropReason)> {
        self.chain(trace_id).iter().find_map(|r| match r.outcome {
            HopOutcome::Dropped(reason) => Some((r.hop, reason)),
            HopOutcome::Ok => None,
        })
    }

    /// Traces that neither rendered anywhere nor have a drop record — an
    /// update the ledger lost track of (or one still in flight when the run
    /// stopped). The complete-accounting tests assert this is empty.
    pub fn unaccounted(&self) -> Vec<TraceId> {
        self.trace_ids()
            .into_iter()
            .filter(|&t| !self.is_delivered(t) && self.drop_of(t).is_none())
            .collect()
    }

    /// Completed deliveries as `(trace, end-to-end latency)`, render order.
    pub fn deliveries(&self) -> &[(TraceId, SimDuration)] {
        &self.delivered
    }

    /// The `n` slowest deliveries, slowest first (ties: lower trace first).
    pub fn slowest(&self, n: usize) -> Vec<(TraceId, SimDuration)> {
        let mut all = self.delivered.clone();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Per-hop latency summaries (time from the previous hop of the same
    /// trace), in pipeline order.
    pub fn hop_summaries(&self) -> Vec<(Hop, Summary)> {
        self.hop_latency
            .iter()
            .map(|(hop, h)| (*hop, Summary::of(h)))
            .collect()
    }

    /// The raw per-hop latency histogram, if the hop was ever reached.
    pub fn hop_histogram(&self, hop: Hop) -> Option<&Histogram> {
        self.hop_latency.get(&hop)
    }

    /// The drop attribution table: `(hop, reason, count)` rows, in hop then
    /// reason order.
    pub fn drop_table(&self) -> Vec<(Hop, DropReason, u64)> {
        self.drops
            .iter()
            .map(|(&(hop, reason), &n)| (hop, reason, n))
            .collect()
    }

    /// Total drop records across all hops.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Renders one trace's chain as text (for `trace-dump` and debugging).
    pub fn format_chain(&self, trace_id: TraceId) -> String {
        let chain = self.chain(trace_id);
        if chain.is_empty() {
            return format!("{trace_id}: no records");
        }
        let mut out = String::new();
        let first = chain[0].at;
        out.push_str(&format!("{trace_id}:\n"));
        let mut prev = first;
        for r in &chain {
            out.push_str(&format!(
                "  {r}  (+{:.3}ms)\n",
                r.at.saturating_since(prev).as_millis_f64()
            ));
            prev = r.at;
        }
        match (self.is_delivered(trace_id), self.drop_of(trace_id)) {
            (true, _) => {
                let last = chain.last().expect("non-empty").at;
                out.push_str(&format!(
                    "  delivered in {:.3}ms\n",
                    last.saturating_since(first).as_millis_f64()
                ));
            }
            (false, Some((hop, reason))) => {
                out.push_str(&format!("  dropped at {hop}: {reason}\n"));
            }
            (false, None) => out.push_str("  still in flight\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn delivered_chain_latencies_telescope() {
        let mut l = TraceLedger::new();
        let t = TraceId(7);
        l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(t, Hop::PylonPublish, ms(10), HopOutcome::Ok);
        l.record(t, Hop::PylonDeliver, ms(25), HopOutcome::Ok);
        l.record(t, Hop::BrassSend, ms(40), HopOutcome::Ok);
        l.record(t, Hop::BurstDeliver, ms(55), HopOutcome::Ok);
        l.record(t, Hop::DeviceRender, ms(100), HopOutcome::Ok);
        assert!(l.is_delivered(t));
        assert_eq!(l.deliveries(), &[(t, SimDuration::from_millis(100))]);
        // Per-hop latencies sum to the end-to-end latency.
        let chain = l.chain(t);
        let sum: f64 = chain
            .windows(2)
            .map(|w| w[1].at.saturating_since(w[0].at).as_millis_f64())
            .sum();
        assert!((sum - 100.0).abs() < 1e-9);
        // Each hop histogram saw exactly one sample.
        for (hop, expect) in [
            (Hop::PylonPublish, 10.0),
            (Hop::PylonDeliver, 15.0),
            (Hop::BrassSend, 15.0),
            (Hop::BurstDeliver, 15.0),
            (Hop::DeviceRender, 45.0),
        ] {
            let h = l.hop_histogram(hop).unwrap();
            assert_eq!(h.count(), 1);
            assert!((h.mean() - expect).abs() < 1.0, "{hop}: {}", h.mean());
        }
        assert!(
            l.hop_histogram(Hop::TaoCommit).is_none(),
            "first hop has no predecessor"
        );
        assert!(l.unaccounted().is_empty());
    }

    #[test]
    fn drops_attributed_to_hop_and_reason() {
        let mut l = TraceLedger::new();
        let a = TraceId(1);
        l.record(a, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(
            a,
            Hop::PylonPublish,
            ms(5),
            HopOutcome::Dropped(DropReason::NoSubscribers),
        );
        let b = TraceId(2);
        l.record(b, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(b, Hop::PylonPublish, ms(5), HopOutcome::Ok);
        l.record(b, Hop::PylonDeliver, ms(9), HopOutcome::Ok);
        l.record(
            b,
            Hop::BrassProcess,
            ms(9),
            HopOutcome::Dropped(DropReason::LanguageFilter),
        );
        assert_eq!(
            l.drop_of(a),
            Some((Hop::PylonPublish, DropReason::NoSubscribers))
        );
        assert_eq!(
            l.drop_of(b),
            Some((Hop::BrassProcess, DropReason::LanguageFilter))
        );
        assert_eq!(
            l.drop_table(),
            vec![
                (Hop::PylonPublish, DropReason::NoSubscribers, 1),
                (Hop::BrassProcess, DropReason::LanguageFilter, 1),
            ]
        );
        assert_eq!(l.total_drops(), 2);
        assert!(!l.is_delivered(a));
        assert!(l.unaccounted().is_empty());
    }

    #[test]
    fn unaccounted_finds_in_flight_traces() {
        let mut l = TraceLedger::new();
        let t = TraceId(3);
        l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(t, Hop::PylonPublish, ms(4), HopOutcome::Ok);
        assert_eq!(l.unaccounted(), vec![t]);
    }

    #[test]
    fn slowest_orders_descending() {
        let mut l = TraceLedger::new();
        for (id, e2e) in [(1u64, 50u64), (2, 200), (3, 120)] {
            let t = TraceId(id);
            l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
            l.record(t, Hop::DeviceRender, ms(e2e), HopOutcome::Ok);
        }
        let slowest = l.slowest(2);
        assert_eq!(
            slowest,
            vec![
                (TraceId(2), SimDuration::from_millis(200)),
                (TraceId(3), SimDuration::from_millis(120)),
            ]
        );
        assert_eq!(l.slowest(10).len(), 3);
    }

    #[test]
    fn format_chain_renders_outcomes() {
        let mut l = TraceLedger::new();
        let t = TraceId(9);
        l.record(t, Hop::TaoCommit, ms(1), HopOutcome::Ok);
        l.record(
            t,
            Hop::PylonPublish,
            ms(2),
            HopOutcome::Dropped(DropReason::NoSubscribers),
        );
        let text = l.format_chain(t);
        assert!(text.contains("tao_commit"));
        assert!(text.contains("no_subscribers"));
        assert!(text.contains("dropped at pylon_publish"));
        assert_eq!(l.format_chain(TraceId(999)), "t999: no records");
    }

    #[test]
    fn ledgers_compare_equal_iff_same_history() {
        let build = |shift: u64| {
            let mut l = TraceLedger::new();
            let t = TraceId(1);
            l.record(t, Hop::TaoCommit, ms(shift), HopOutcome::Ok);
            l.record(t, Hop::DeviceRender, ms(shift + 10), HopOutcome::Ok);
            l
        };
        assert_eq!(build(0), build(0));
        assert_ne!(build(0), build(1));
    }
}
