//! Per-update hop-ledger tracing.
//!
//! Every update admitted to a simulation gets a [`TraceId`]; as the update
//! moves write → Pylon → BRASS → BURST → device, each component appends a
//! timestamped [`HopRecord`] to a central [`TraceLedger`]. The ledger then
//! answers the questions aggregate counters cannot:
//!
//! * the full hop chain of any one update (where did it go, when),
//! * per-hop latency histograms (log-bucketed, p50/p95/p99/max),
//! * a drop attribution table — which hop killed an update, and why,
//! * the N slowest end-to-end deliveries of a run.
//!
//! Records are append-only and fully deterministic: two runs from the same
//! seed produce bit-identical ledgers, which the determinism regression
//! tests rely on.
//!
//! # Retention
//!
//! A ledger runs in one of two [`Retention`] modes. [`Retention::Full`]
//! (the default, what `trace-dump` wants) keeps every record and a
//! per-trace index, so full chains can be reconstructed — O(records)
//! memory. [`Retention::Bounded`] keeps only a fixed-size ring of the most
//! recent records plus compact per-trace accounting state (delivered /
//! first drop / backfilled, first and last timestamps) and folds latencies
//! into histograms on the fly, so bench-scale chaos runs don't blow peak
//! RSS. Accounting queries ([`TraceLedger::is_delivered`],
//! [`TraceLedger::drop_of`], [`TraceLedger::unaccounted`], the drop table,
//! hop summaries, e2e latency summary) answer identically in both modes;
//! only full-chain reconstruction degrades to the retained ring.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

use crate::metrics::{Histogram, Summary};
use crate::snap::{Fp64, Snap, SnapError, SnapReader, SnapResult, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// Identifier of one traced update. The simulation assigns these at write
/// commit (one per update event admitted to the pipeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A pipeline stage an update passes through (the paper's Fig. 5 path).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hop {
    /// The write committed at the WAS/TAO and emitted an update event.
    TaoCommit,
    /// The event reached Pylon and fanned out to subscribed hosts.
    PylonPublish,
    /// Pylon handed the event to one BRASS host.
    PylonDeliver,
    /// BRASS processing: filtering, buffering, and the payload fetch.
    BrassProcess,
    /// The BRASS emitted a BURST response frame carrying the payload.
    BrassSend,
    /// The frame cleared the edge (proxy + POP) toward the device.
    BurstDeliver,
    /// The device received and rendered the update.
    DeviceRender,
    /// The device recovered a previously lost update by polling the WAS
    /// (gap-detection backfill, §5).
    WasBackfill,
}

impl Hop {
    /// Stable numeric tag, used by snapshots and fingerprints. Never
    /// reorder these; append only.
    fn tag(self) -> u8 {
        match self {
            Hop::TaoCommit => 0,
            Hop::PylonPublish => 1,
            Hop::PylonDeliver => 2,
            Hop::BrassProcess => 3,
            Hop::BrassSend => 4,
            Hop::BurstDeliver => 5,
            Hop::DeviceRender => 6,
            Hop::WasBackfill => 7,
        }
    }

    fn from_tag(t: u8) -> Option<Hop> {
        Some(match t {
            0 => Hop::TaoCommit,
            1 => Hop::PylonPublish,
            2 => Hop::PylonDeliver,
            3 => Hop::BrassProcess,
            4 => Hop::BrassSend,
            5 => Hop::BurstDeliver,
            6 => Hop::DeviceRender,
            7 => Hop::WasBackfill,
            _ => return None,
        })
    }

    /// Short stable name, used in tables and dumps.
    pub fn name(self) -> &'static str {
        match self {
            Hop::TaoCommit => "tao_commit",
            Hop::PylonPublish => "pylon_publish",
            Hop::PylonDeliver => "pylon_deliver",
            Hop::BrassProcess => "brass_process",
            Hop::BrassSend => "brass_send",
            Hop::BurstDeliver => "burst_deliver",
            Hop::DeviceRender => "device_render",
            Hop::WasBackfill => "was_backfill",
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a hop killed an update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// Content language did not match the viewer's.
    LanguageFilter,
    /// ML quality score below the application's floor.
    QualityFilter,
    /// The update was already stale when the filter saw it.
    Stale,
    /// The WAS privacy check denied the viewer.
    PrivacyBlock,
    /// The per-stream rate limit starved it until it aged out of the
    /// ranked buffer.
    RateLimit,
    /// Evicted from a full ranked buffer by higher-ranked updates.
    BufferOverflow,
    /// The referenced object no longer existed at fetch time.
    NotFound,
    /// Published to a topic with no subscribed host.
    NoSubscribers,
    /// The target device was disconnected when the frame arrived.
    DeviceDisconnected,
    /// The frame was lost on the last mile.
    LastMileLoss,
    /// The target BRASS host was down (crashed or mid-upgrade); anything
    /// addressed to it — or buffered inside it — died with it.
    HostDown,
    /// Shed at a BRASS host's bounded ingress mailbox under overload.
    MailboxOverflow,
    /// Shed at the POP egress because the device's BURST flow-control
    /// window was exhausted; the device was told via
    /// `FlowStatus::Degraded`.
    FlowControl,
    /// An application received the update but no live stream wanted it —
    /// the subscriber unsubscribed (or its interest lapsed) between the
    /// topic fan-out and app-level processing.
    NoAudience,
}

impl DropReason {
    /// Stable numeric tag, used by snapshots and fingerprints. Never
    /// reorder these; append only.
    fn tag(self) -> u8 {
        match self {
            DropReason::LanguageFilter => 0,
            DropReason::QualityFilter => 1,
            DropReason::Stale => 2,
            DropReason::PrivacyBlock => 3,
            DropReason::RateLimit => 4,
            DropReason::BufferOverflow => 5,
            DropReason::NotFound => 6,
            DropReason::NoSubscribers => 7,
            DropReason::DeviceDisconnected => 8,
            DropReason::LastMileLoss => 9,
            DropReason::HostDown => 10,
            DropReason::MailboxOverflow => 11,
            DropReason::FlowControl => 12,
            DropReason::NoAudience => 13,
        }
    }

    fn from_tag(t: u8) -> Option<DropReason> {
        Some(match t {
            0 => DropReason::LanguageFilter,
            1 => DropReason::QualityFilter,
            2 => DropReason::Stale,
            3 => DropReason::PrivacyBlock,
            4 => DropReason::RateLimit,
            5 => DropReason::BufferOverflow,
            6 => DropReason::NotFound,
            7 => DropReason::NoSubscribers,
            8 => DropReason::DeviceDisconnected,
            9 => DropReason::LastMileLoss,
            10 => DropReason::HostDown,
            11 => DropReason::MailboxOverflow,
            12 => DropReason::FlowControl,
            13 => DropReason::NoAudience,
            _ => return None,
        })
    }

    /// Short stable name, used in tables and dumps.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::LanguageFilter => "language_filter",
            DropReason::QualityFilter => "quality_filter",
            DropReason::Stale => "stale",
            DropReason::PrivacyBlock => "privacy_block",
            DropReason::RateLimit => "rate_limit",
            DropReason::BufferOverflow => "buffer_overflow",
            DropReason::NotFound => "not_found",
            DropReason::NoSubscribers => "no_subscribers",
            DropReason::DeviceDisconnected => "device_disconnected",
            DropReason::LastMileLoss => "last_mile_loss",
            DropReason::HostDown => "host_down",
            DropReason::MailboxOverflow => "mailbox_overflow",
            DropReason::FlowControl => "flow_control",
            DropReason::NoAudience => "no_audience",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of one hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HopOutcome {
    /// The update moved on.
    Ok,
    /// The hop killed the update (for at least one viewer).
    Dropped(DropReason),
}

/// One timestamped entry in the ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// The traced update.
    pub trace_id: TraceId,
    /// The pipeline stage.
    pub hop: Hop,
    /// When the update reached the stage.
    pub at: SimTime,
    /// What the stage did with it.
    pub outcome: HopOutcome,
}

impl fmt::Display for HopRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            HopOutcome::Ok => {
                write!(
                    f,
                    "{:>10.3}ms  {:<14} ok",
                    self.at.as_micros() as f64 / 1e3,
                    self.hop
                )
            }
            HopOutcome::Dropped(r) => write!(
                f,
                "{:>10.3}ms  {:<14} DROPPED: {r}",
                self.at.as_micros() as f64 / 1e3,
                self.hop
            ),
        }
    }
}

impl Snap for TraceId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok(TraceId(r.get_u64()?))
    }
}

impl Snap for Hop {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.tag());
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let t = r.get_u8()?;
        Hop::from_tag(t).ok_or_else(|| SnapError::Invalid(format!("hop tag {t}")))
    }
}

impl Snap for DropReason {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(self.tag());
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let t = r.get_u8()?;
        DropReason::from_tag(t).ok_or_else(|| SnapError::Invalid(format!("drop-reason tag {t}")))
    }
}

impl HopOutcome {
    /// Compact code for fingerprinting: 0 for [`HopOutcome::Ok`],
    /// `1 + reason` for a drop.
    fn code(self) -> u64 {
        match self {
            HopOutcome::Ok => 0,
            HopOutcome::Dropped(r) => 1 + r.tag() as u64,
        }
    }
}

impl Snap for HopOutcome {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            HopOutcome::Ok => w.put_u8(0),
            HopOutcome::Dropped(r) => {
                w.put_u8(1);
                r.snap(w);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        match r.get_u8()? {
            0 => Ok(HopOutcome::Ok),
            1 => Ok(HopOutcome::Dropped(DropReason::restore(r)?)),
            t => Err(SnapError::Invalid(format!("hop-outcome tag {t}"))),
        }
    }
}

impl Snap for HopRecord {
    fn snap(&self, w: &mut SnapWriter) {
        self.trace_id.snap(w);
        self.hop.snap(w);
        self.at.snap(w);
        self.outcome.snap(w);
    }
    fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok(HopRecord {
            trace_id: TraceId::restore(r)?,
            hop: Hop::restore(r)?,
            at: SimTime::restore(r)?,
            outcome: HopOutcome::restore(r)?,
        })
    }
}

/// How much raw record history a [`TraceLedger`] keeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Retention {
    /// Keep every record and a per-trace index (full chains forever).
    #[default]
    Full,
    /// Keep a ring of at most this many recent records; per-trace state is
    /// folded into compact accounting entries and histograms on the fly.
    Bounded(usize),
}

/// Compact always-on accounting state for one trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TraceState {
    /// When the trace's first record landed (e2e latency origin).
    first_at: SimTime,
    /// When the trace's latest record landed (per-hop latency origin).
    last_at: SimTime,
    /// Rendered on at least one device.
    delivered: bool,
    /// Recovered via a WAS backfill poll after a loss.
    backfilled: bool,
    /// The first drop recorded, if any.
    first_drop: Option<(Hop, DropReason)>,
}

/// The central append-only hop ledger of a simulation run.
///
/// # Examples
///
/// ```
/// use simkit::time::SimTime;
/// use simkit::trace::{DropReason, Hop, HopOutcome, TraceId, TraceLedger};
///
/// let mut ledger = TraceLedger::new();
/// let t = TraceId(1);
/// ledger.record(t, Hop::TaoCommit, SimTime::from_millis(0), HopOutcome::Ok);
/// ledger.record(t, Hop::PylonPublish, SimTime::from_millis(3),
///               HopOutcome::Dropped(DropReason::NoSubscribers));
/// assert_eq!(ledger.chain(t).len(), 2);
/// assert_eq!(ledger.drop_of(t), Some((Hop::PylonPublish, DropReason::NoSubscribers)));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLedger {
    retention: Retention,
    /// Every record in append order ([`Retention::Full`] only).
    records: Vec<HopRecord>,
    /// Indices into `records`, per trace ([`Retention::Full`] only).
    by_trace: HashMap<TraceId, Vec<u32>>,
    /// Ring of the most recent records ([`Retention::Bounded`] only).
    recent: VecDeque<HopRecord>,
    /// Compact per-trace accounting, maintained in both modes.
    states: HashMap<TraceId, TraceState>,
    /// Latency from the previous hop of the same trace to this hop (ms).
    hop_latency: BTreeMap<Hop, Histogram>,
    /// (hop, reason) → updates killed there.
    drops: BTreeMap<(Hop, DropReason), u64>,
    /// Completed deliveries: (trace, end-to-end latency), in render order
    /// ([`Retention::Full`] only — use [`Self::e2e_histogram`] otherwise).
    delivered: Vec<(TraceId, SimDuration)>,
    /// End-to-end latency of every delivery (ms), both modes.
    e2e: Histogram,
    /// Total successful renders (first per trace), both modes.
    delivered_count: u64,
    /// Rolling hash over every record as it is appended. Because it folds
    /// records in at [`Self::record`] time, its value is independent of
    /// retention: a bounded ledger that evicted everything still carries
    /// the same fingerprint as a full one fed the same history.
    fp: Fp64,
}

impl TraceLedger {
    /// Creates an empty full-retention ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty ledger with the given retention mode.
    pub fn with_retention(retention: Retention) -> Self {
        TraceLedger {
            retention,
            ..Self::default()
        }
    }

    /// Creates a bounded ledger retaining at most `recent` raw records.
    pub fn bounded(recent: usize) -> Self {
        Self::with_retention(Retention::Bounded(recent))
    }

    /// This ledger's retention mode.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// Appends one hop record, updating the per-hop latency histogram (the
    /// time since the trace's previous record) and, on a
    /// [`Hop::DeviceRender`] success, the delivery accounting.
    pub fn record(&mut self, trace_id: TraceId, hop: Hop, at: SimTime, outcome: HopOutcome) {
        self.fp.mix_u64(trace_id.0);
        self.fp.mix_u64(at.as_micros());
        self.fp.mix_u64(((hop.tag() as u64) << 8) | outcome.code());
        if let Some(st) = self.states.get(&trace_id) {
            self.hop_latency
                .entry(hop)
                .or_default()
                .record(at.saturating_since(st.last_at).as_millis_f64());
        }
        if let HopOutcome::Dropped(reason) = outcome {
            *self.drops.entry((hop, reason)).or_insert(0) += 1;
        }
        let st = self.states.entry(trace_id).or_insert(TraceState {
            first_at: at,
            last_at: at,
            delivered: false,
            backfilled: false,
            first_drop: None,
        });
        if let HopOutcome::Dropped(reason) = outcome {
            if st.first_drop.is_none() {
                st.first_drop = Some((hop, reason));
            }
        }
        if hop == Hop::DeviceRender && outcome == HopOutcome::Ok {
            let e2e = at.saturating_since(st.first_at);
            self.e2e.record(e2e.as_millis_f64());
            self.delivered_count += 1;
            st.delivered = true;
            if self.retention == Retention::Full {
                self.delivered.push((trace_id, e2e));
            }
        }
        if hop == Hop::WasBackfill && outcome == HopOutcome::Ok {
            st.backfilled = true;
        }
        st.last_at = at;
        let rec = HopRecord {
            trace_id,
            hop,
            at,
            outcome,
        };
        match self.retention {
            Retention::Full => {
                let idx = self.records.len() as u32;
                self.by_trace.entry(trace_id).or_default().push(idx);
                self.records.push(rec);
            }
            Retention::Bounded(cap) => {
                self.recent.push_back(rec);
                while self.recent.len() > cap {
                    self.recent.pop_front();
                }
            }
        }
    }

    /// All records, in append order. Empty in [`Retention::Bounded`] mode —
    /// see [`Self::recent_records`] for the retained ring.
    pub fn records(&self) -> &[HopRecord] {
        &self.records
    }

    /// The retained ring of most recent records ([`Retention::Bounded`]
    /// mode; empty under [`Retention::Full`], where [`Self::records`] has
    /// everything).
    pub fn recent_records(&self) -> impl Iterator<Item = &HopRecord> {
        self.recent.iter()
    }

    /// Number of distinct traces seen.
    pub fn trace_count(&self) -> usize {
        self.states.len()
    }

    /// The hop chain of one trace, in order. Under [`Retention::Bounded`]
    /// this is only the part still inside the retained ring.
    pub fn chain(&self, trace_id: TraceId) -> Vec<HopRecord> {
        match self.retention {
            Retention::Full => self
                .by_trace
                .get(&trace_id)
                .map(|idxs| idxs.iter().map(|&i| self.records[i as usize]).collect())
                .unwrap_or_default(),
            Retention::Bounded(_) => self
                .recent
                .iter()
                .filter(|r| r.trace_id == trace_id)
                .copied()
                .collect(),
        }
    }

    /// All trace ids, ascending.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.states.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Whether the trace rendered on at least one device.
    pub fn is_delivered(&self, trace_id: TraceId) -> bool {
        self.states.get(&trace_id).is_some_and(|s| s.delivered)
    }

    /// Whether the trace was recovered via WAS backfill after a loss.
    pub fn is_backfilled(&self, trace_id: TraceId) -> bool {
        self.states.get(&trace_id).is_some_and(|s| s.backfilled)
    }

    /// The first drop recorded for a trace, if any.
    pub fn drop_of(&self, trace_id: TraceId) -> Option<(Hop, DropReason)> {
        self.states.get(&trace_id).and_then(|s| s.first_drop)
    }

    /// Traces that neither rendered anywhere nor have a drop record nor
    /// were backfilled — an update the ledger lost track of (or one still
    /// in flight when the run stopped). The complete-accounting tests and
    /// the chaos convergence checker assert this is empty.
    pub fn unaccounted(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self
            .states
            .iter()
            .filter(|(_, s)| !s.delivered && !s.backfilled && s.first_drop.is_none())
            .map(|(&t, _)| t)
            .collect();
        ids.sort();
        ids
    }

    /// Completed deliveries as `(trace, end-to-end latency)`, render order
    /// ([`Retention::Full`] only; empty when bounded).
    pub fn deliveries(&self) -> &[(TraceId, SimDuration)] {
        &self.delivered
    }

    /// Total successful renders (first render per trace), both modes.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Traces recovered by WAS backfill, both modes.
    pub fn backfilled_count(&self) -> u64 {
        self.states.values().filter(|s| s.backfilled).count() as u64
    }

    /// The end-to-end delivery latency histogram (ms), both modes.
    pub fn e2e_histogram(&self) -> &Histogram {
        &self.e2e
    }

    /// The `n` slowest deliveries, slowest first (ties: lower trace first).
    /// [`Retention::Full`] only; empty when bounded.
    pub fn slowest(&self, n: usize) -> Vec<(TraceId, SimDuration)> {
        let mut all = self.delivered.clone();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Per-hop latency summaries (time from the previous hop of the same
    /// trace), in pipeline order.
    pub fn hop_summaries(&self) -> Vec<(Hop, Summary)> {
        self.hop_latency
            .iter()
            .map(|(hop, h)| (*hop, Summary::of(h)))
            .collect()
    }

    /// The raw per-hop latency histogram, if the hop was ever reached.
    pub fn hop_histogram(&self, hop: Hop) -> Option<&Histogram> {
        self.hop_latency.get(&hop)
    }

    /// The drop attribution table: `(hop, reason, count)` rows, in hop then
    /// reason order.
    pub fn drop_table(&self) -> Vec<(Hop, DropReason, u64)> {
        self.drops
            .iter()
            .map(|(&(hop, reason), &n)| (hop, reason, n))
            .collect()
    }

    /// Total drop records across all hops.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// The rolling ledger fingerprint: a hash of every record ever
    /// appended, in order, regardless of retention mode. Two ledgers have
    /// equal fingerprints iff they were fed the same record history.
    pub fn fingerprint(&self) -> u64 {
        self.fp.value()
    }

    /// Writes the ledger's complete state, including accounting maps,
    /// latency histograms, and the rolling fingerprint.
    pub fn snap(&self, w: &mut SnapWriter) {
        match self.retention {
            Retention::Full => w.put_u8(0),
            Retention::Bounded(cap) => {
                w.put_u8(1);
                w.put_usize(cap);
            }
        }
        self.records.snap(w);
        // `by_trace` is derived from `records` and rebuilt on restore.
        let mut recent: Vec<&HopRecord> = self.recent.iter().collect();
        w.put_usize(recent.len());
        for rec in recent.drain(..) {
            rec.snap(w);
        }
        let mut states: Vec<(&TraceId, &TraceState)> = self.states.iter().collect();
        states.sort_by_key(|(t, _)| **t);
        w.put_usize(states.len());
        for (t, st) in states {
            t.snap(w);
            st.first_at.snap(w);
            st.last_at.snap(w);
            w.put_bool(st.delivered);
            w.put_bool(st.backfilled);
            st.first_drop.snap(w);
        }
        w.put_usize(self.hop_latency.len());
        for (hop, h) in &self.hop_latency {
            hop.snap(w);
            h.snap(w);
        }
        self.drops.snap(w);
        self.delivered.snap(w);
        self.e2e.snap(w);
        w.put_u64(self.delivered_count);
        w.put_u64(self.fp.value());
    }

    /// Rebuilds a ledger written by [`snap`](Self::snap). The per-trace
    /// record index is reconstructed from the record list; a bounded ring
    /// longer than its cap is rejected.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let retention = match r.get_u8()? {
            0 => Retention::Full,
            1 => Retention::Bounded(r.get_usize()?),
            t => return Err(SnapError::Invalid(format!("retention tag {t}"))),
        };
        let records = Vec::<HopRecord>::restore(r)?;
        let mut by_trace: HashMap<TraceId, Vec<u32>> = HashMap::new();
        for (i, rec) in records.iter().enumerate() {
            by_trace.entry(rec.trace_id).or_default().push(i as u32);
        }
        let recent = VecDeque::<HopRecord>::restore(r)?;
        match retention {
            Retention::Full if !recent.is_empty() => {
                return Err(SnapError::Invalid("full ledger has a recent ring".into()));
            }
            Retention::Bounded(cap) if recent.len() > cap => {
                return Err(SnapError::Invalid(format!(
                    "ring of {} exceeds cap {cap}",
                    recent.len()
                )));
            }
            _ => {}
        }
        let n = r.get_len()?;
        let mut states = HashMap::with_capacity(n);
        for _ in 0..n {
            let t = TraceId::restore(r)?;
            let st = TraceState {
                first_at: SimTime::restore(r)?,
                last_at: SimTime::restore(r)?,
                delivered: r.get_bool()?,
                backfilled: r.get_bool()?,
                first_drop: Option::<(Hop, DropReason)>::restore(r)?,
            };
            if states.insert(t, st).is_some() {
                return Err(SnapError::Invalid("duplicate trace state".into()));
            }
        }
        let n = r.get_len()?;
        let mut hop_latency = BTreeMap::new();
        for _ in 0..n {
            let hop = Hop::restore(r)?;
            let h = Histogram::restore(r)?;
            if hop_latency.insert(hop, h).is_some() {
                return Err(SnapError::Invalid("duplicate hop histogram".into()));
            }
        }
        let drops = BTreeMap::<(Hop, DropReason), u64>::restore(r)?;
        let delivered = Vec::<(TraceId, SimDuration)>::restore(r)?;
        let e2e = Histogram::restore(r)?;
        let delivered_count = r.get_u64()?;
        let fp = Fp64::from_value(r.get_u64()?);
        Ok(TraceLedger {
            retention,
            records,
            by_trace,
            recent,
            states,
            hop_latency,
            drops,
            delivered,
            e2e,
            delivered_count,
            fp,
        })
    }

    /// Renders one trace's chain as text (for `trace-dump` and debugging).
    pub fn format_chain(&self, trace_id: TraceId) -> String {
        let chain = self.chain(trace_id);
        if chain.is_empty() {
            return format!("{trace_id}: no records");
        }
        let mut out = String::new();
        let first = chain[0].at;
        out.push_str(&format!("{trace_id}:\n"));
        let mut prev = first;
        for r in &chain {
            out.push_str(&format!(
                "  {r}  (+{:.3}ms)\n",
                r.at.saturating_since(prev).as_millis_f64()
            ));
            prev = r.at;
        }
        match (self.is_delivered(trace_id), self.drop_of(trace_id)) {
            (true, _) => {
                let last = chain.last().expect("non-empty").at;
                out.push_str(&format!(
                    "  delivered in {:.3}ms\n",
                    last.saturating_since(first).as_millis_f64()
                ));
            }
            (false, Some((hop, reason))) => {
                out.push_str(&format!("  dropped at {hop}: {reason}\n"));
                if self.is_backfilled(trace_id) {
                    out.push_str("  recovered via was_backfill\n");
                }
            }
            (false, None) => out.push_str("  still in flight\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn delivered_chain_latencies_telescope() {
        let mut l = TraceLedger::new();
        let t = TraceId(7);
        l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(t, Hop::PylonPublish, ms(10), HopOutcome::Ok);
        l.record(t, Hop::PylonDeliver, ms(25), HopOutcome::Ok);
        l.record(t, Hop::BrassSend, ms(40), HopOutcome::Ok);
        l.record(t, Hop::BurstDeliver, ms(55), HopOutcome::Ok);
        l.record(t, Hop::DeviceRender, ms(100), HopOutcome::Ok);
        assert!(l.is_delivered(t));
        assert_eq!(l.deliveries(), &[(t, SimDuration::from_millis(100))]);
        assert_eq!(l.delivered_count(), 1);
        assert_eq!(l.e2e_histogram().count(), 1);
        // Per-hop latencies sum to the end-to-end latency.
        let chain = l.chain(t);
        let sum: f64 = chain
            .windows(2)
            .map(|w| w[1].at.saturating_since(w[0].at).as_millis_f64())
            .sum();
        assert!((sum - 100.0).abs() < 1e-9);
        // Each hop histogram saw exactly one sample.
        for (hop, expect) in [
            (Hop::PylonPublish, 10.0),
            (Hop::PylonDeliver, 15.0),
            (Hop::BrassSend, 15.0),
            (Hop::BurstDeliver, 15.0),
            (Hop::DeviceRender, 45.0),
        ] {
            let h = l.hop_histogram(hop).unwrap();
            assert_eq!(h.count(), 1);
            assert!((h.mean() - expect).abs() < 1.0, "{hop}: {}", h.mean());
        }
        assert!(
            l.hop_histogram(Hop::TaoCommit).is_none(),
            "first hop has no predecessor"
        );
        assert!(l.unaccounted().is_empty());
    }

    #[test]
    fn drops_attributed_to_hop_and_reason() {
        let mut l = TraceLedger::new();
        let a = TraceId(1);
        l.record(a, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(
            a,
            Hop::PylonPublish,
            ms(5),
            HopOutcome::Dropped(DropReason::NoSubscribers),
        );
        let b = TraceId(2);
        l.record(b, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(b, Hop::PylonPublish, ms(5), HopOutcome::Ok);
        l.record(b, Hop::PylonDeliver, ms(9), HopOutcome::Ok);
        l.record(
            b,
            Hop::BrassProcess,
            ms(9),
            HopOutcome::Dropped(DropReason::LanguageFilter),
        );
        assert_eq!(
            l.drop_of(a),
            Some((Hop::PylonPublish, DropReason::NoSubscribers))
        );
        assert_eq!(
            l.drop_of(b),
            Some((Hop::BrassProcess, DropReason::LanguageFilter))
        );
        assert_eq!(
            l.drop_table(),
            vec![
                (Hop::PylonPublish, DropReason::NoSubscribers, 1),
                (Hop::BrassProcess, DropReason::LanguageFilter, 1),
            ]
        );
        assert_eq!(l.total_drops(), 2);
        assert!(!l.is_delivered(a));
        assert!(l.unaccounted().is_empty());
    }

    #[test]
    fn unaccounted_finds_in_flight_traces() {
        let mut l = TraceLedger::new();
        let t = TraceId(3);
        l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(t, Hop::PylonPublish, ms(4), HopOutcome::Ok);
        assert_eq!(l.unaccounted(), vec![t]);
    }

    #[test]
    fn backfill_marks_trace_recovered() {
        let mut l = TraceLedger::new();
        let t = TraceId(4);
        l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(
            t,
            Hop::BurstDeliver,
            ms(8),
            HopOutcome::Dropped(DropReason::LastMileLoss),
        );
        assert!(!l.is_backfilled(t));
        l.record(t, Hop::WasBackfill, ms(30), HopOutcome::Ok);
        assert!(l.is_backfilled(t));
        assert_eq!(l.backfilled_count(), 1);
        assert!(l.unaccounted().is_empty());
        let text = l.format_chain(t);
        assert!(text.contains("recovered via was_backfill"));
    }

    #[test]
    fn slowest_orders_descending() {
        let mut l = TraceLedger::new();
        for (id, e2e) in [(1u64, 50u64), (2, 200), (3, 120)] {
            let t = TraceId(id);
            l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
            l.record(t, Hop::DeviceRender, ms(e2e), HopOutcome::Ok);
        }
        let slowest = l.slowest(2);
        assert_eq!(
            slowest,
            vec![
                (TraceId(2), SimDuration::from_millis(200)),
                (TraceId(3), SimDuration::from_millis(120)),
            ]
        );
        assert_eq!(l.slowest(10).len(), 3);
    }

    #[test]
    fn format_chain_renders_outcomes() {
        let mut l = TraceLedger::new();
        let t = TraceId(9);
        l.record(t, Hop::TaoCommit, ms(1), HopOutcome::Ok);
        l.record(
            t,
            Hop::PylonPublish,
            ms(2),
            HopOutcome::Dropped(DropReason::NoSubscribers),
        );
        let text = l.format_chain(t);
        assert!(text.contains("tao_commit"));
        assert!(text.contains("no_subscribers"));
        assert!(text.contains("dropped at pylon_publish"));
        assert_eq!(l.format_chain(TraceId(999)), "t999: no records");
    }

    #[test]
    fn ledgers_compare_equal_iff_same_history() {
        let build = |shift: u64| {
            let mut l = TraceLedger::new();
            let t = TraceId(1);
            l.record(t, Hop::TaoCommit, ms(shift), HopOutcome::Ok);
            l.record(t, Hop::DeviceRender, ms(shift + 10), HopOutcome::Ok);
            l
        };
        assert_eq!(build(0), build(0));
        assert_ne!(build(0), build(1));
    }

    /// Bounded and full ledgers fed the same history agree on every
    /// accounting query; only raw-record retention differs.
    #[test]
    fn bounded_ledger_accounts_like_full() {
        let mut full = TraceLedger::new();
        let mut bounded = TraceLedger::bounded(4);
        for l in [&mut full, &mut bounded] {
            for id in 0..10u64 {
                let t = TraceId(id);
                l.record(t, Hop::TaoCommit, ms(id), HopOutcome::Ok);
                l.record(t, Hop::PylonPublish, ms(id + 2), HopOutcome::Ok);
                if id % 3 == 0 {
                    l.record(
                        t,
                        Hop::BurstDeliver,
                        ms(id + 5),
                        HopOutcome::Dropped(DropReason::LastMileLoss),
                    );
                    l.record(t, Hop::WasBackfill, ms(id + 40), HopOutcome::Ok);
                } else {
                    l.record(t, Hop::DeviceRender, ms(id + 7), HopOutcome::Ok);
                }
            }
        }
        assert_eq!(full.trace_count(), bounded.trace_count());
        assert_eq!(full.trace_ids(), bounded.trace_ids());
        assert_eq!(full.delivered_count(), bounded.delivered_count());
        assert_eq!(full.backfilled_count(), bounded.backfilled_count());
        assert_eq!(full.drop_table(), bounded.drop_table());
        assert_eq!(full.hop_summaries(), bounded.hop_summaries());
        assert_eq!(full.e2e_histogram(), bounded.e2e_histogram());
        assert_eq!(full.unaccounted(), bounded.unaccounted());
        for id in 0..10u64 {
            let t = TraceId(id);
            assert_eq!(full.is_delivered(t), bounded.is_delivered(t));
            assert_eq!(full.drop_of(t), bounded.drop_of(t));
            assert_eq!(full.is_backfilled(t), bounded.is_backfilled(t));
        }
        // Raw history: full keeps everything, bounded keeps the ring.
        assert_eq!(full.records().len(), 34);
        assert!(bounded.records().is_empty());
        assert_eq!(bounded.recent_records().count(), 4);
        let last = bounded.recent_records().last().unwrap();
        assert_eq!(last.trace_id, TraceId(9));
    }

    /// Satellite: the rolling fingerprint must not depend on retention —
    /// a bounded ring that wrapped many times still hashes every record it
    /// ever saw, identically to a full ledger.
    #[test]
    fn fingerprint_identical_bounded_vs_full_across_ring_wrap() {
        let mut full = TraceLedger::new();
        let mut bounded = TraceLedger::bounded(3); // wraps dozens of times
        for l in [&mut full, &mut bounded] {
            for id in 0..100u64 {
                let t = TraceId(id);
                l.record(t, Hop::TaoCommit, ms(id), HopOutcome::Ok);
                l.record(t, Hop::PylonPublish, ms(id + 1), HopOutcome::Ok);
                if id % 4 == 0 {
                    l.record(
                        t,
                        Hop::BrassProcess,
                        ms(id + 2),
                        HopOutcome::Dropped(DropReason::QualityFilter),
                    );
                } else {
                    l.record(t, Hop::DeviceRender, ms(id + 3), HopOutcome::Ok);
                }
            }
        }
        assert_eq!(bounded.recent_records().count(), 3);
        assert_eq!(full.fingerprint(), bounded.fingerprint());
        // And the fingerprint is history-sensitive, not just a count.
        let mut other = TraceLedger::new();
        for id in 0..100u64 {
            let t = TraceId(id);
            other.record(t, Hop::TaoCommit, ms(id), HopOutcome::Ok);
            other.record(t, Hop::PylonPublish, ms(id + 1), HopOutcome::Ok);
            other.record(t, Hop::DeviceRender, ms(id + 3), HopOutcome::Ok);
        }
        assert_ne!(full.fingerprint(), other.fingerprint());
    }

    /// Snapshot round-trip in both retention modes: the restored ledger
    /// compares equal, answers queries identically, and keeps producing
    /// the same fingerprint stream as the original when both are fed
    /// identical further records.
    #[test]
    fn snapshot_roundtrip_both_retentions() {
        for retention in [Retention::Full, Retention::Bounded(5)] {
            let mut l = TraceLedger::with_retention(retention);
            for id in 0..20u64 {
                let t = TraceId(id);
                l.record(t, Hop::TaoCommit, ms(id), HopOutcome::Ok);
                if id % 3 == 0 {
                    l.record(
                        t,
                        Hop::BurstDeliver,
                        ms(id + 5),
                        HopOutcome::Dropped(DropReason::LastMileLoss),
                    );
                } else {
                    l.record(t, Hop::DeviceRender, ms(id + 7), HopOutcome::Ok);
                }
            }
            let mut w = crate::snap::SnapWriter::new();
            l.snap(&mut w);
            let bytes = w.into_bytes();
            let mut r = crate::snap::SnapReader::new(&bytes);
            let mut restored = TraceLedger::restore(&mut r).expect("restore");
            r.finish().expect("no trailing bytes");
            assert_eq!(restored, l);
            assert_eq!(restored.fingerprint(), l.fingerprint());
            l.record(TraceId(999), Hop::TaoCommit, ms(500), HopOutcome::Ok);
            restored.record(TraceId(999), Hop::TaoCommit, ms(500), HopOutcome::Ok);
            assert_eq!(restored.fingerprint(), l.fingerprint());
            // Truncation never yields a partial ledger.
            for n in 0..bytes.len() {
                let mut r = crate::snap::SnapReader::new(&bytes[..n]);
                assert!(TraceLedger::restore(&mut r)
                    .and_then(|_| r.finish())
                    .is_err());
            }
        }
    }

    #[test]
    fn bounded_chain_is_partial_but_recent() {
        let mut l = TraceLedger::bounded(2);
        let t = TraceId(5);
        l.record(t, Hop::TaoCommit, ms(0), HopOutcome::Ok);
        l.record(t, Hop::PylonPublish, ms(1), HopOutcome::Ok);
        l.record(t, Hop::DeviceRender, ms(2), HopOutcome::Ok);
        let chain = l.chain(t);
        assert_eq!(chain.len(), 2, "ring holds only the last two records");
        assert_eq!(chain[1].hop, Hop::DeviceRender);
        assert!(l.is_delivered(t), "accounting survives ring eviction");
    }
}
