//! Measurement primitives: counters, histograms, time series.
//!
//! These mirror the quantities the paper reports: averages, P75/P90/P95/P99
//! percentiles (Table 3, Fig. 6), cumulative distributions (Fig. 9), and
//! fixed-interval diurnal series (Fig. 8, Fig. 10).

use std::fmt;

use crate::snap::{Fp64, SnapError, SnapReader, SnapResult, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Writes the counter into a snapshot.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }

    /// Reads a counter back from a snapshot.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        Ok(Counter(r.get_u64()?))
    }

    /// Folds the counter into a rolling fingerprint.
    pub fn mix_into(&self, fp: &mut Fp64) {
        fp.mix_u64(self.0);
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A log-linear bucketed histogram of non-negative values.
///
/// Values are grouped into buckets whose width doubles every
/// `sub_buckets` buckets, giving a bounded relative error at every scale —
/// the same idea as HDR histograms, sized for latencies from microseconds to
/// hours. Recording is O(1) and the structure never allocates after
/// construction.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const SUB_BUCKET_BITS: u32 = 5; // 32 sub-buckets per octave: <= ~3% rel. error.
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
// Values 0..32 are exact; octaves 5..=62 are bucketed, 32 buckets each.
const NUM_BUCKETS: usize =
    SUB_BUCKETS as usize + (63 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS as usize;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        let v = value.max(0.0).min(u64::MAX as f64 / 2.0) as u64;
        if v < SUB_BUCKETS {
            return v as usize;
        }
        // v is in octave `octave` (i.e. [2^octave, 2^(octave+1))); the top
        // SUB_BUCKET_BITS+1 bits select the sub-bucket within the octave.
        let octave = 63 - v.leading_zeros();
        let shift = octave - SUB_BUCKET_BITS;
        let sub = (v >> shift) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
        let idx = SUB_BUCKETS as usize
            + (octave - SUB_BUCKET_BITS) as usize * SUB_BUCKETS as usize
            + sub as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> f64 {
        let idx = index as u64;
        if idx < SUB_BUCKETS {
            return idx as f64;
        }
        let rel = idx - SUB_BUCKETS;
        let shift = (rel / SUB_BUCKETS) as u32;
        let sub = rel % SUB_BUCKETS;
        // Midpoint of the bucket range [lo, lo + width).
        let lo = (SUB_BUCKETS + sub) << shift;
        let width = 1u64 << shift;
        (lo + width / 2) as f64
    }

    /// Records one value (negative values are clamped to zero).
    pub fn record(&mut self, value: f64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value.max(0.0);
        self.min = self.min.min(value.max(0.0));
        self.max = self.max.max(value.max(0.0));
    }

    /// Records a duration in milliseconds.
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of recorded values, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Minimum recorded value, or 0 for an empty histogram.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum recorded value, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Value at quantile `q` in `[0, 1]` (bucket-midpoint approximation).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fraction of recorded values at or below `value`.
    pub fn cdf_at(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = Self::bucket_index(value);
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / self.total as f64
    }

    /// Extracts `(value, cumulative_fraction)` points for plotting a CDF.
    pub fn cdf_points(&self, resolution: usize) -> Vec<(f64, f64)> {
        let resolution = resolution.max(2);
        (0..=resolution)
            .map(|i| {
                let q = i as f64 / resolution as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Counts of values falling in each `[edges[i], edges[i+1])` bin, with a
    /// final overflow bin; used for the Fig. 6-style bar histograms.
    pub fn binned(&self, edges: &[f64]) -> Vec<u64> {
        let mut bins = vec![0u64; edges.len()];
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let v = Self::bucket_value(i);
            let bin = match edges.iter().position(|&e| v < e) {
                Some(0) => 0,
                Some(b) => b - 1,
                None => edges.len() - 1,
            };
            bins[bin] += c;
        }
        bins
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Writes the histogram into a snapshot. Only occupied buckets are
    /// written (`(index, count)` pairs); `sum`/`min`/`max` go as raw IEEE
    /// bits so the empty-histogram `±INFINITY` sentinels survive.
    pub fn snap(&self, w: &mut SnapWriter) {
        let occupied = self.counts.iter().filter(|&&c| c != 0).count();
        w.put_usize(occupied);
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                w.put_u32(i as u32);
                w.put_u64(c);
            }
        }
        w.put_u64(self.total);
        w.put_f64(self.sum);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    /// Reads a histogram back, validating bucket indices are in range and
    /// strictly ascending, and that bucket counts sum to `total`.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let n = r.get_len()?;
        let mut h = Histogram::new();
        let mut last: Option<u32> = None;
        let mut seen = 0u64;
        for _ in 0..n {
            let i = r.get_u32()?;
            let c = r.get_u64()?;
            if i as usize >= NUM_BUCKETS {
                return Err(SnapError::Invalid(format!("histogram bucket {i}")));
            }
            if last.is_some_and(|l| l >= i) || c == 0 {
                return Err(SnapError::Invalid("histogram buckets malformed".into()));
            }
            last = Some(i);
            h.counts[i as usize] = c;
            seen = seen
                .checked_add(c)
                .ok_or_else(|| SnapError::Invalid("histogram count overflow".into()))?;
        }
        h.total = r.get_u64()?;
        if h.total != seen {
            return Err(SnapError::Invalid("histogram total mismatch".into()));
        }
        h.sum = r.get_f64()?;
        h.min = r.get_f64()?;
        h.max = r.get_f64()?;
        Ok(h)
    }

    /// Folds the histogram into a rolling fingerprint (bucket occupancy,
    /// total, and the exact accumulator bits).
    pub fn mix_into(&self, fp: &mut Fp64) {
        fp.mix_u64(self.total);
        fp.mix_u64(self.sum.to_bits());
        fp.mix_u64(self.min.to_bits());
        fp.mix_u64(self.max.to_bits());
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                fp.mix_u64(((i as u64) << 40) ^ c);
            }
        }
    }
}

/// A fixed-interval time series of accumulated values.
///
/// Each bucket covers `interval` of simulated time; values recorded within a
/// bucket are summed. The paper's diurnal figures (Fig. 8, Fig. 10) use
/// 15-minute buckets shown as per-minute averages; [`TimeSeries::rates`]
/// produces exactly that.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    interval: SimDuration,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series covering `horizon` with the given bucket `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(horizon: SimDuration, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        let n = horizon.as_micros().div_ceil(interval.as_micros()).max(1);
        TimeSeries {
            interval,
            buckets: vec![0.0; n as usize],
        }
    }

    /// Adds `value` to the bucket covering instant `at`.
    ///
    /// Instants beyond the horizon fall into the final bucket.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_micros() / self.interval.as_micros()) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += value;
    }

    /// Increments the bucket covering `at` by one.
    pub fn inc(&mut self, at: SimTime) {
        self.record(at, 1.0);
    }

    /// The raw per-bucket sums.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// The bucket interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Per-bucket values converted to a per-`unit` rate (e.g. per minute).
    pub fn rates(&self, unit: SimDuration) -> Vec<f64> {
        let scale = unit.as_secs_f64() / self.interval.as_secs_f64();
        self.buckets.iter().map(|&v| v * scale).collect()
    }

    /// Merges another series into this one, bucket by bucket.
    ///
    /// # Panics
    ///
    /// Panics if the two series differ in interval or bucket count — a
    /// sharded simulation must build every shard's series from the same
    /// horizon/interval config for the merge to be meaningful.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.interval, other.interval,
            "merged series must share a bucket interval"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merged series must share a horizon"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Raises the bucket covering `at` to at least `value` (per-bucket
    /// maximum instead of the default sum) — the right reduction for
    /// sampled gauge series like queue depths, where adding samples would
    /// conflate sampling frequency with level.
    pub fn record_max(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_micros() / self.interval.as_micros()) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        if value > self.buckets[idx] {
            self.buckets[idx] = value;
        }
    }

    /// Merges another series into this one taking the per-bucket maximum
    /// (for series built with [`TimeSeries::record_max`]). Max is
    /// commutative and associative, so shard merge order cannot change the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the two series differ in interval or bucket count.
    pub fn merge_max(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.interval, other.interval,
            "merged series must share a bucket interval"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merged series must share a horizon"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Writes the series into a snapshot.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.interval.as_micros());
        w.put_usize(self.buckets.len());
        for &b in &self.buckets {
            w.put_f64(b);
        }
    }

    /// Reads a series back from a snapshot.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let interval = SimDuration::from_micros(r.get_u64()?);
        if interval.is_zero() {
            return Err(SnapError::Invalid("zero time-series interval".into()));
        }
        let n = r.get_len()?;
        if n == 0 {
            return Err(SnapError::Invalid("empty time series".into()));
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.get_f64()?);
        }
        Ok(TimeSeries { interval, buckets })
    }

    /// Folds the series into a rolling fingerprint.
    pub fn mix_into(&self, fp: &mut Fp64) {
        fp.mix_u64(self.interval.as_micros());
        for &b in &self.buckets {
            fp.mix_u64(b.to_bits());
        }
    }

    /// Labels each bucket with its start time, for table output.
    pub fn labeled(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.buckets.iter().enumerate().map(move |(i, &v)| {
            (
                SimTime::ZERO + SimDuration::from_micros(self.interval.as_micros() * i as u64),
                v,
            )
        })
    }
}

/// Occupancy accounting for one bounded queueing stage (a Pylon fan-out
/// backlog, a BRASS host mailbox, a BURST flow-control window, a POP
/// egress link).
///
/// Tracks the classic mempulse-style triple — current depth, peak depth,
/// and total items rejected at the queue — plus enqueue/dequeue totals and
/// a per-bucket-max [`TimeSeries`] of sampled depth, so overload benches
/// can plot backlog against offered load and invariant tests can assert
/// bounded growth.
///
/// One gauge instance may aggregate several queues of the same stage
/// (e.g. every BRASS mailbox a shard owns): `current`/`peak` then read as
/// "the deepest single queue at this stage", which is the quantity the
/// graceful-shed invariant bounds. Shard merge keeps that reading:
/// `current` and `peak` merge by maximum, volume counters by sum — all
/// commutative and associative, so the fold is order-independent.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueGauge {
    current: u64,
    peak: u64,
    enqueued: u64,
    dequeued: u64,
    dropped: u64,
    depth: TimeSeries,
}

impl QueueGauge {
    /// Creates a gauge whose depth series covers `horizon` at `interval`.
    pub fn new(horizon: SimDuration, interval: SimDuration) -> Self {
        QueueGauge {
            current: 0,
            peak: 0,
            enqueued: 0,
            dequeued: 0,
            dropped: 0,
            depth: TimeSeries::new(horizon, interval),
        }
    }

    /// Observes the depth of one queue at this stage (absolute, not a
    /// delta): updates current/peak and the sampled depth series.
    pub fn observe_depth(&mut self, at: SimTime, depth: u64) {
        self.current = depth;
        if depth > self.peak {
            self.peak = depth;
        }
        self.depth.record_max(at, depth as f64);
    }

    /// Records `n` items admitted into the queue.
    pub fn enqueued_n(&mut self, n: u64) {
        self.enqueued += n;
    }

    /// Records `n` items leaving the queue (serviced).
    pub fn dequeued_n(&mut self, n: u64) {
        self.dequeued += n;
    }

    /// Records `n` items rejected at the queue (shed, not admitted).
    pub fn dropped_n(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Most recently observed depth.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Deepest single-queue depth ever observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Total items admitted.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total items serviced.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Total items rejected at the queue.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The sampled depth series (per-bucket maximum).
    pub fn depth_series(&self) -> &TimeSeries {
        &self.depth
    }

    /// Merges another shard's gauge: volume counters add, depth readings
    /// take the maximum (see the type-level docs for why).
    pub fn merge(&mut self, other: &QueueGauge) {
        self.current = self.current.max(other.current);
        self.peak = self.peak.max(other.peak);
        self.enqueued += other.enqueued;
        self.dequeued += other.dequeued;
        self.dropped += other.dropped;
        self.depth.merge_max(&other.depth);
    }

    /// Writes the gauge into a snapshot.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.current);
        w.put_u64(self.peak);
        w.put_u64(self.enqueued);
        w.put_u64(self.dequeued);
        w.put_u64(self.dropped);
        self.depth.snap(w);
    }

    /// Reads a gauge back from a snapshot.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let current = r.get_u64()?;
        let peak = r.get_u64()?;
        if current > peak {
            return Err(SnapError::Invalid("gauge current exceeds peak".into()));
        }
        Ok(QueueGauge {
            current,
            peak,
            enqueued: r.get_u64()?,
            dequeued: r.get_u64()?,
            dropped: r.get_u64()?,
            depth: TimeSeries::restore(r)?,
        })
    }

    /// Folds the gauge into a rolling fingerprint.
    pub fn mix_into(&self, fp: &mut Fp64) {
        fp.mix_u64(self.current);
        fp.mix_u64(self.peak);
        fp.mix_u64(self.enqueued);
        fp.mix_u64(self.dequeued);
        fp.mix_u64(self.dropped);
        self.depth.mix_into(fp);
    }
}

/// Summary statistics extracted from a [`Histogram`], printable as a table
/// row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises a histogram.
    pub fn of(h: &Histogram) -> Summary {
        Summary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p75: h.quantile(0.75),
            p90: h.quantile(0.90),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={:.1} p75={:.1} p90={:.1} p95={:.1} p99={:.1} max={:.1}",
            self.count, self.mean, self.p50, self.p75, self.p90, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 32);
        assert!((h.mean() - 15.5).abs() < 1e-9);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 31.0);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v as f64);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q{q}: got {got} expect {expect}");
        }
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.cdf_at(10.0), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_negative_values_clamp() {
        let mut h = Histogram::new();
        h.record(-5.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_cdf_monotone() {
        let mut h = Histogram::new();
        let mut rng = crate::rng::DetRng::new(1);
        for _ in 0..10_000 {
            h.record(rng.f64() * 1_000.0);
        }
        let mut last = 0.0;
        for v in [1.0, 10.0, 100.0, 500.0, 999.0, 2_000.0] {
            let c = h.cdf_at(v);
            assert!(c >= last);
            last = c;
        }
        assert!((h.cdf_at(2_000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_binned() {
        let mut h = Histogram::new();
        for v in [0.5, 1.5, 2.5, 3.5, 10.0] {
            h.record(v);
        }
        let bins = h.binned(&[0.0, 2.0, 4.0]);
        assert_eq!(bins, vec![2, 2, 1]);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn histogram_large_values_bounded_relative_error() {
        let mut h = Histogram::new();
        let v = 3_600_000.0; // one hour in ms
        h.record(v);
        let q = h.quantile(1.0);
        assert!((q - v).abs() / v < 0.05, "q {q}");
    }

    #[test]
    fn timeseries_bucketing() {
        let mut ts = TimeSeries::new(SimDuration::from_mins(60), SimDuration::from_mins(15));
        ts.inc(SimTime::from_secs(10));
        ts.inc(SimTime::from_secs(16 * 60));
        ts.inc(SimTime::from_secs(16 * 60));
        assert_eq!(ts.buckets(), &[1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn timeseries_rates_per_minute() {
        let mut ts = TimeSeries::new(SimDuration::from_mins(30), SimDuration::from_mins(15));
        for _ in 0..30 {
            ts.inc(SimTime::from_secs(60));
        }
        let r = ts.rates(SimDuration::from_mins(1));
        assert!((r[0] - 2.0).abs() < 1e-9, "rate {}", r[0]);
    }

    #[test]
    fn timeseries_merge_adds_elementwise() {
        let horizon = SimDuration::from_mins(60);
        let interval = SimDuration::from_mins(15);
        let mut a = TimeSeries::new(horizon, interval);
        let mut b = TimeSeries::new(horizon, interval);
        a.inc(SimTime::from_secs(10));
        b.record(SimTime::from_secs(10), 2.0);
        b.inc(SimTime::from_secs(16 * 60));
        a.merge(&b);
        assert_eq!(a.buckets(), &[3.0, 1.0, 0.0, 0.0]);
        // b is untouched.
        assert_eq!(b.buckets(), &[2.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bucket interval")]
    fn timeseries_merge_rejects_mismatched_interval() {
        let mut a = TimeSeries::new(SimDuration::from_mins(60), SimDuration::from_mins(15));
        let b = TimeSeries::new(SimDuration::from_mins(60), SimDuration::from_mins(10));
        a.merge(&b);
    }

    #[test]
    fn timeseries_overflow_goes_to_last_bucket() {
        let mut ts = TimeSeries::new(SimDuration::from_mins(30), SimDuration::from_mins(15));
        ts.inc(SimTime::from_secs(10_000_000));
        assert_eq!(ts.buckets()[1], 1.0);
    }

    #[test]
    fn timeseries_record_max_keeps_bucket_peak() {
        let mut ts = TimeSeries::new(SimDuration::from_mins(30), SimDuration::from_mins(15));
        ts.record_max(SimTime::from_secs(10), 3.0);
        ts.record_max(SimTime::from_secs(20), 1.0);
        ts.record_max(SimTime::from_secs(16 * 60), 7.0);
        assert_eq!(ts.buckets(), &[3.0, 7.0]);
    }

    #[test]
    fn timeseries_merge_max_elementwise() {
        let horizon = SimDuration::from_mins(30);
        let interval = SimDuration::from_mins(15);
        let mut a = TimeSeries::new(horizon, interval);
        let mut b = TimeSeries::new(horizon, interval);
        a.record_max(SimTime::from_secs(10), 5.0);
        b.record_max(SimTime::from_secs(10), 2.0);
        b.record_max(SimTime::from_secs(16 * 60), 9.0);
        a.merge_max(&b);
        assert_eq!(a.buckets(), &[5.0, 9.0]);
    }

    #[test]
    fn queue_gauge_tracks_depth_and_volume() {
        let mut q = QueueGauge::new(SimDuration::from_mins(30), SimDuration::from_mins(15));
        q.enqueued_n(3);
        q.observe_depth(SimTime::from_secs(1), 3);
        q.dequeued_n(2);
        q.observe_depth(SimTime::from_secs(2), 1);
        q.dropped_n(4);
        assert_eq!(q.current(), 1);
        assert_eq!(q.peak(), 3);
        assert_eq!(q.enqueued(), 3);
        assert_eq!(q.dequeued(), 2);
        assert_eq!(q.dropped(), 4);
        assert_eq!(q.depth_series().buckets()[0], 3.0);
    }

    #[test]
    fn queue_gauge_merge_is_order_independent() {
        let horizon = SimDuration::from_mins(30);
        let interval = SimDuration::from_mins(15);
        let mut a = QueueGauge::new(horizon, interval);
        let mut b = QueueGauge::new(horizon, interval);
        a.enqueued_n(10);
        a.observe_depth(SimTime::from_secs(1), 6);
        b.enqueued_n(4);
        b.dropped_n(2);
        b.observe_depth(SimTime::from_secs(1), 9);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.peak(), 9);
        assert_eq!(ab.enqueued(), 14);
        assert_eq!(ab.dropped(), 2);
    }

    #[test]
    fn summary_display() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v as f64);
        }
        let s = Summary::of(&h);
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p75 && s.p75 <= s.p90 && s.p90 <= s.p99);
        assert!(format!("{s}").contains("n=100"));
    }
}
