//! Cross-shard mailboxes for conservative parallel simulation.
//!
//! A sharded simulation runs each shard's event loop independently up to a
//! conservative window horizon, collecting events destined for *other*
//! shards into per-shard outboxes. At the window barrier every outbox is
//! merged into one globally ordered batch and routed to the destination
//! shards, which insert the messages into their queues *before* popping
//! anything from the next window.
//!
//! The merge contract is the whole ballgame: the order in which two
//! same-window messages are inserted at a destination must be a pure
//! function of `(time, src_shard, seq)` — never of thread scheduling —
//! because insertion order assigns queue sequence numbers, and sequence
//! numbers break timestamp ties. [`merge`] implements exactly that order.
//!
//! Causality is enforced by [`clamp_to_window`]: a message generated inside
//! window `[start, end]` may carry a nominal timestamp that lands inside
//! the same window (its destination shard has already simulated past it).
//! Clamping to `end + 1µs` keeps the message in the destination's future.
//! The window width is therefore purely a throughput knob: any message
//! whose sampled hop latency exceeds the window width is never clamped,
//! and the lookahead is chosen so that clamping is rare (see
//! `bladerunner::latency::min_cross_shard_hop`).

use crate::time::{SimDuration, SimTime};

/// A cross-shard message: an event bound for another shard's queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<E> {
    /// When the event should fire at the destination (already clamped).
    pub at: SimTime,
    /// The shard whose event loop produced the message.
    pub src_shard: usize,
    /// Position in the source shard's outbox for this window: the
    /// deterministic within-shard tiebreaker.
    pub seq: u64,
    /// The event itself.
    pub event: E,
}

/// Clamps a cross-shard timestamp out of the window that produced it.
///
/// Returns `at` unchanged when it is already past the window, otherwise
/// `window_end + 1µs` — the first instant the destination shard has not
/// yet simulated.
pub fn clamp_to_window(at: SimTime, window_end: SimTime) -> SimTime {
    let floor = window_end + SimDuration::from_micros(1);
    if at < floor {
        floor
    } else {
        at
    }
}

/// Merges per-shard outboxes into one batch ordered by
/// `(time, src_shard, seq)`.
///
/// The input is one outbox per source shard (index = shard id); each
/// outbox is expected to already be in `seq` order (the order the shard
/// produced the messages). The output order depends only on the message
/// keys, so any interleaving of shard execution — serial, two workers,
/// sixteen workers — yields the same batch.
pub fn merge<E>(outboxes: Vec<Vec<Envelope<E>>>) -> Vec<Envelope<E>> {
    let mut all: Vec<Envelope<E>> = outboxes.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.at, e.src_shard, e.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(at_us: u64, src: usize, seq: u64, tag: &'static str) -> Envelope<&'static str> {
        Envelope {
            at: SimTime::from_micros(at_us),
            src_shard: src,
            seq,
            event: tag,
        }
    }

    #[test]
    fn same_timestamp_merges_by_src_shard_then_seq() {
        // Three shards emit messages for the same instant; shard order and
        // then outbox order must decide, regardless of input arrangement.
        let outboxes = vec![
            vec![env(100, 0, 0, "s0a"), env(100, 0, 1, "s0b")],
            vec![env(100, 1, 0, "s1a")],
            vec![env(100, 2, 0, "s2a"), env(100, 2, 1, "s2b")],
        ];
        let merged = merge(outboxes);
        let tags: Vec<_> = merged.iter().map(|e| e.event).collect();
        assert_eq!(tags, vec!["s0a", "s0b", "s1a", "s2a", "s2b"]);
    }

    #[test]
    fn merge_is_independent_of_outbox_arrival_order() {
        // The same messages presented with shards swapped (as if a
        // different worker finished first) merge identically because the
        // key is (time, src_shard, seq), not arrival order.
        let a = vec![
            vec![env(7, 0, 0, "x"), env(5, 0, 1, "y")],
            vec![env(5, 1, 0, "z")],
        ];
        let b = vec![
            vec![env(5, 1, 0, "z")],
            vec![env(7, 0, 0, "x"), env(5, 0, 1, "y")],
        ];
        let ta: Vec<_> = merge(a).into_iter().map(|e| e.event).collect();
        let tb: Vec<_> = merge(b).into_iter().map(|e| e.event).collect();
        assert_eq!(ta, tb);
        assert_eq!(ta, vec!["y", "z", "x"]);
    }

    #[test]
    fn time_dominates_shard_and_seq() {
        let outboxes = vec![vec![env(200, 0, 0, "late")], vec![env(100, 1, 5, "early")]];
        let tags: Vec<_> = merge(outboxes).into_iter().map(|e| e.event).collect();
        assert_eq!(tags, vec!["early", "late"]);
    }

    #[test]
    fn clamp_moves_in_window_times_past_the_barrier() {
        let end = SimTime::from_micros(1_000);
        // In-window (or at-window) timestamps clamp to end + 1µs.
        assert_eq!(
            clamp_to_window(SimTime::from_micros(500), end),
            SimTime::from_micros(1_001)
        );
        assert_eq!(
            clamp_to_window(SimTime::from_micros(1_000), end),
            SimTime::from_micros(1_001)
        );
        // Future timestamps pass through untouched.
        assert_eq!(
            clamp_to_window(SimTime::from_micros(1_001), end),
            SimTime::from_micros(1_001)
        );
        assert_eq!(
            clamp_to_window(SimTime::from_micros(9_999), end),
            SimTime::from_micros(9_999)
        );
    }
}
