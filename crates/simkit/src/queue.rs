//! The discrete-event queue.
//!
//! [`EventQueue`] is a time-ordered priority queue with deterministic FIFO
//! tie-breaking: two events scheduled for the same instant pop in the order
//! they were scheduled. Determinism here is what makes whole-system runs
//! reproducible bit-for-bit from a seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use simkit::queue::EventQueue;
/// use simkit::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "later");
/// q.schedule(SimTime::from_millis(10), "even later"); // same instant: FIFO
/// q.schedule(SimTime::from_millis(1), "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert_eq!(q.pop().unwrap().1, "even later");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Seqs scheduled but not yet fired or cancelled. Tracking the live set
    /// (rather than a tombstone set of cancelled seqs) makes `cancel` of an
    /// already-fired id a no-op returning `false` instead of corrupting
    /// `len()`.
    pending: std::collections::HashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at instant `at`.
    ///
    /// Events scheduled in the past are clamped to the current instant, so a
    /// handler may always schedule "immediately" with `queue.now()`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled;
    /// cancelling an id that already fired (or was never issued) is a no-op
    /// returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Pops the earliest pending event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled before firing
            }
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Pops the earliest pending event only if it fires at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        loop {
            let head = self.heap.peek()?;
            if head.at > until {
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled before firing
            }
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Cancelled entries may sit at the head; this is a conservative
        // bound, exact once compaction occurs on pop.
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.schedule(SimTime::from_secs(2), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), t2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.pop();
        // Scheduling in the past silently clamps to now.
        q.schedule(SimTime::from_secs(1), "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel returns false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_len_stays_consistent() {
        // Regression: cancelling an id whose event already popped used to
        // insert a stale seq into the tombstone set, wrongly returning `true`
        // and making `len()` underflow-panic on the next call.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a), "cancel of a fired event must be a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_event_never_fires_via_pop_until() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(1), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(SimTime::from_secs(2)).unwrap().1, "b");
        assert!(q.pop_until(SimTime::from_secs(2)).is_none());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 5);
        assert_eq!(q.pop_until(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_until(SimTime::from_secs(2)).is_none());
        assert_eq!(q.pop_until(SimTime::from_secs(5)).unwrap().1, 5);
    }

    #[test]
    fn stress_many_events_sorted() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::DetRng::new(99);
        for i in 0..50_000u64 {
            let at = SimTime::ZERO + SimDuration::from_micros(rng.below(1_000_000));
            q.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, 50_000);
    }
}
