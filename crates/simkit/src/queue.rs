//! The discrete-event queue.
//!
//! [`EventQueue`] is a time-ordered priority queue with deterministic FIFO
//! tie-breaking: two events scheduled for the same instant pop in the order
//! they were scheduled. Determinism here is what makes whole-system runs
//! reproducible bit-for-bit from a seed.
//!
//! # Implementation: hierarchical timing wheel
//!
//! Scheduling and popping near-future events is the simulator's innermost
//! loop, so the queue is a hierarchical timing wheel rather than a binary
//! heap: [`LEVELS`] levels of [`SLOTS`] slots each, with level `l` covering
//! `64^(l+1)` microseconds at a granularity of `64^l` µs (level 0 slots are
//! exactly one microsecond wide). A per-level 64-bit occupancy bitmap turns
//! "find the next non-empty slot" into a mask and `trailing_zeros`, so
//! `schedule` and `pop` are O(1) for events within the wheel horizon
//! (`64^LEVELS` µs ≈ 19 simulated hours ahead) and events beyond it fall
//! back to an overflow binary heap, promoted into the wheel when the
//! cursor catches up.
//!
//! FIFO correctness falls out of three invariants: slot vectors are
//! append-only and cascaded in order (so same-timestamp events keep their
//! scheduling order), a level-0 slot is one microsecond wide (so everything
//! in it shares a timestamp), and cancellation is lazy (a live-seq set is
//! consulted at pop, never reordering storage). One subtlety: skipping a
//! *cancelled* event moves the wheel cursor past its slot without advancing
//! simulated time, and a handler may then legally schedule into that gap —
//! such entries go to a small `backfill` heap, which always drains before
//! the wheel because its entries are strictly earlier than every wheel
//! entry.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::fxhash::FxHashSet;
use crate::snap::{Snap, SnapError, SnapReader, SnapResult, SnapWriter};
use crate::time::SimTime;

/// Slots per wheel level (64, so occupancy fits one `u64` bitmap).
const SLOTS: usize = 64;
/// Bits of the time value consumed per level.
const SLOT_BITS: usize = 6;
/// Wheel levels; the horizon is `2^(SLOT_BITS * LEVELS)` µs ≈ 19.1 h.
const LEVELS: usize = 6;
/// Events at or beyond `cursor + 2^HORIZON_BITS` µs overflow to a heap.
const HORIZON_BITS: usize = SLOT_BITS * LEVELS;

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use simkit::queue::EventQueue;
/// use simkit::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "later");
/// q.schedule(SimTime::from_millis(10), "even later"); // same instant: FIFO
/// q.schedule(SimTime::from_millis(1), "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert_eq!(q.pop().unwrap().1, "even later");
/// ```
pub struct EventQueue<E> {
    /// Slot rings for all levels, flattened level-major
    /// (`slots[l * SLOTS + j]`). Slot vectors stay seq-ordered per
    /// timestamp: appends happen in scheduling order and cascades preserve
    /// relative order.
    slots: Vec<VecDeque<Entry<E>>>,
    /// Per-level bitmaps: bit `j` set iff `slots[l * SLOTS + j]` is
    /// non-empty.
    occupancy: [u64; LEVELS],
    /// Wheel position in µs. Every entry stored in the wheel fires at or
    /// after this; it advances monotonically as slots drain.
    cursor: u64,
    /// Entries scheduled into `(now, cursor)` after the wheel structurally
    /// passed their timestamp (possible when cancelled events were
    /// skipped). Strictly earlier than every wheel entry, so this drains
    /// first.
    backfill: BinaryHeap<Entry<E>>,
    /// Entries beyond the wheel horizon; strictly later than every wheel
    /// entry, promoted when the wheel drains up to them.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Seqs scheduled but not yet fired or cancelled. Tracking the live set
    /// (rather than a tombstone set of cancelled seqs) makes `cancel` of an
    /// already-fired id a no-op returning `false` instead of corrupting
    /// `len()`.
    pending: FxHashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occupancy: [0; LEVELS],
            cursor: 0,
            backfill: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            next_seq: 0,
            pending: FxHashSet::default(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at instant `at`.
    ///
    /// Events scheduled in the past are clamped to the current instant, so a
    /// handler may always schedule "immediately" with `queue.now()`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.insert(Entry { at, seq, event });
        EventId(seq)
    }

    /// Routes an entry to the wheel, the backfill heap (behind the cursor),
    /// or the overflow heap (beyond the horizon).
    fn insert(&mut self, entry: Entry<E>) {
        let at_us = entry.at.as_micros();
        if at_us < self.cursor {
            self.backfill.push(entry);
            return;
        }
        let xor = at_us ^ self.cursor;
        if xor >> HORIZON_BITS != 0 {
            self.overflow.push(entry);
            return;
        }
        let level = if xor == 0 {
            0
        } else {
            (63 - xor.leading_zeros() as usize) / SLOT_BITS
        };
        let slot = (at_us >> (SLOT_BITS * level)) as usize & (SLOTS - 1);
        self.occupancy[level] |= 1u64 << slot;
        self.slots[level * SLOTS + slot].push_back(entry);
    }

    /// Timestamp (µs) of the earliest wheel entry, cancelled or not,
    /// without mutating anything.
    ///
    /// Levels are strictly time-ordered (level `l` entries all precede
    /// level `l+1` entries, because each level is confined to the cursor's
    /// current parent slot), so the first occupied slot of the lowest
    /// occupied level holds the minimum. Level-0 slots are 1 µs wide so the
    /// slot index *is* the timestamp; higher-level slots need a scan.
    fn wheel_earliest(&self) -> Option<u64> {
        for level in 0..LEVELS {
            let current = (self.cursor >> (SLOT_BITS * level)) as u32 & (SLOTS as u32 - 1);
            let masked = self.occupancy[level] & (!0u64 << current);
            if masked == 0 {
                continue;
            }
            let j = masked.trailing_zeros() as u64;
            if level == 0 {
                return Some((self.cursor & !(SLOTS as u64 - 1)) + j);
            }
            let slot = &self.slots[level * SLOTS + j as usize];
            return slot.iter().map(|e| e.at.as_micros()).min();
        }
        None
    }

    /// Advances the cursor to the earliest wheel entry, cascading
    /// higher-level slots down until it sits in level 0, and returns its
    /// level-0 slot index. Must only be called when the wheel is non-empty.
    fn settle_head(&mut self) -> usize {
        loop {
            let current = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let masked = self.occupancy[0] & (!0u64 << current);
            if masked != 0 {
                let j = masked.trailing_zeros() as usize;
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) + j as u64;
                return j;
            }
            let mut progressed = false;
            for level in 1..LEVELS {
                let current = (self.cursor >> (SLOT_BITS * level)) as u32 & (SLOTS as u32 - 1);
                let masked = self.occupancy[level] & (!0u64 << current);
                if masked == 0 {
                    continue;
                }
                let j = masked.trailing_zeros() as usize;
                // Jump to the start of that slot and redistribute its
                // entries relative to the new cursor: each lands at a
                // strictly lower level, preserving order (the vector is
                // seq-ordered per timestamp and drained front to back).
                let width = SLOT_BITS * (level + 1);
                let slot_start =
                    (self.cursor & !((1u64 << width) - 1)) + ((j as u64) << (SLOT_BITS * level));
                debug_assert!(slot_start > self.cursor);
                self.cursor = slot_start;
                self.occupancy[level] &= !(1u64 << j);
                let entries = std::mem::take(&mut self.slots[level * SLOTS + j]);
                for entry in entries {
                    self.insert(entry);
                }
                progressed = true;
                break;
            }
            debug_assert!(progressed, "settle_head called on an empty wheel");
            if !progressed {
                unreachable!("settle_head called on an empty wheel");
            }
        }
    }

    /// Jumps the cursor to the overflow head and promotes every overflow
    /// entry that now fits the wheel horizon. Only called when the wheel
    /// and backfill are empty, so the jump cannot leapfrog anything.
    ///
    /// Horizon-boundary audit: [`Self::insert`] overflows on
    /// `(at ^ cursor) >> HORIZON_BITS != 0`, i.e. whenever `at` falls in a
    /// different `2^HORIZON_BITS`-µs block than the cursor — which is
    /// *not* the same as `at >= cursor + 2^HORIZON_BITS`. An event only
    /// 1µs away can overflow (cursor `2^36 − 1`, at `2^36`), and an event
    /// nearly `2^36` µs away can stay in the wheel (cursor `2^36`, at
    /// `2^37 − 1`). Both are correct: every overflow entry has strictly
    /// greater high bits than the cursor had at insert time, so it sorts
    /// after every wheel entry of that block and the cursor jump here can
    /// never move backwards past a stored event. The
    /// `dense_events_straddling_horizon_boundary_*` tests pin exactly the
    /// `cursor + 2^HORIZON_BITS` seam against the heap reference.
    fn promote_overflow(&mut self) {
        let Some(head) = self.overflow.peek() else {
            return;
        };
        debug_assert!(head.at.as_micros() >= self.cursor);
        self.cursor = head.at.as_micros();
        while let Some(head) = self.overflow.peek() {
            if (head.at.as_micros() ^ self.cursor) >> HORIZON_BITS != 0 {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry exists");
            self.insert(entry);
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled;
    /// cancelling an id that already fired (or was never issued) is a no-op
    /// returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Pops the earliest pending event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_bounded(u64::MAX)
    }

    /// Pops the earliest pending event only if it fires at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        self.pop_bounded(until.as_micros())
    }

    /// Shared pop core: drains backfill, then the wheel, then promotes
    /// overflow, skipping cancelled entries, never firing past `limit_us`.
    /// Like the head of a heap, the earliest *stored* entry bounds the
    /// earliest *live* entry, so a cancelled head past the limit still
    /// (conservatively and correctly) returns `None`.
    fn pop_bounded(&mut self, limit_us: u64) -> Option<(SimTime, E)> {
        loop {
            // Backfill entries precede every wheel entry (at < cursor).
            if let Some(head) = self.backfill.peek() {
                if head.at.as_micros() > limit_us {
                    return None;
                }
                let entry = self.backfill.pop().expect("peeked entry exists");
                if !self.pending.remove(&entry.seq) {
                    continue; // cancelled before firing
                }
                self.now = entry.at;
                return Some((entry.at, entry.event));
            }
            // Wheel entries precede every overflow entry (at within horizon).
            if let Some(at_us) = self.wheel_earliest() {
                if at_us > limit_us {
                    return None;
                }
                let j = self.settle_head();
                let slot = &mut self.slots[j];
                let entry = slot.pop_front().expect("settled slot is non-empty");
                debug_assert_eq!(entry.at.as_micros(), at_us);
                if slot.is_empty() {
                    self.occupancy[0] &= !(1u64 << j);
                }
                if !self.pending.remove(&entry.seq) {
                    continue; // cancelled before firing
                }
                self.now = entry.at;
                return Some((entry.at, entry.event));
            }
            let head_at = self.overflow.peek()?.at;
            if head_at.as_micros() > limit_us {
                return None;
            }
            self.promote_overflow();
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Cancelled entries may sit at the head; this is a conservative
        // bound, exact once compaction occurs on pop.
        if let Some(head) = self.backfill.peek() {
            return Some(head.at);
        }
        if let Some(at_us) = self.wheel_earliest() {
            return Some(SimTime::from_micros(at_us));
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// The wheel placement `insert` would choose for `at_us` under `cursor`,
    /// or `None` if the entry belongs in backfill/overflow instead.
    fn placement(cursor: u64, at_us: u64) -> Option<(usize, usize)> {
        if at_us < cursor {
            return None;
        }
        let xor = at_us ^ cursor;
        if xor >> HORIZON_BITS != 0 {
            return None;
        }
        let level = if xor == 0 {
            0
        } else {
            (63 - xor.leading_zeros() as usize) / SLOT_BITS
        };
        let slot = (at_us >> (SLOT_BITS * level)) as usize & (SLOTS - 1);
        Some((level, slot))
    }
}

impl<E: Snap> EventQueue<E> {
    /// Writes the queue's complete structure: clock, cursor, live-seq set,
    /// both heaps (as `(time, seq)`-sorted vectors), and every wheel slot
    /// verbatim — including entries whose seq was cancelled (tombstones),
    /// because their storage position feeds `peek_time`'s conservative
    /// bound and thus window partitioning.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.now.as_micros());
        w.put_u64(self.cursor);
        w.put_u64(self.next_seq);
        let mut pending: Vec<u64> = self.pending.iter().copied().collect();
        pending.sort_unstable();
        pending.snap(w);
        for heap in [&self.backfill, &self.overflow] {
            let mut entries: Vec<&Entry<E>> = heap.iter().collect();
            entries.sort_by_key(|e| (e.at, e.seq));
            w.put_usize(entries.len());
            for e in entries {
                e.at.snap(w);
                w.put_u64(e.seq);
                e.event.snap(w);
            }
        }
        for slot in &self.slots {
            w.put_usize(slot.len());
            for e in slot {
                e.at.snap(w);
                w.put_u64(e.seq);
                e.event.snap(w);
            }
        }
    }

    /// Rebuilds a queue written by [`snap`](Self::snap), validating the
    /// structural invariants the wheel relies on: heap vectors strictly
    /// ascending in `(time, seq)`, every wheel entry stored exactly where
    /// `insert` would place it under the restored cursor, seqs unique and
    /// below `next_seq`, and the live-seq set a subset of stored entries.
    /// Any violation is a clean error, never a partial queue.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let now = SimTime::restore(r)?;
        let cursor = r.get_u64()?;
        let next_seq = r.get_u64()?;
        let pending_vec = Vec::<u64>::restore(r)?;
        let mut pending = FxHashSet::default();
        for s in &pending_vec {
            if !pending.insert(*s) {
                return Err(SnapError::Invalid("duplicate pending seq".into()));
            }
        }

        let mut seen = FxHashSet::default();
        let read_entry = |r: &mut SnapReader<'_>, seen: &mut FxHashSet<u64>| {
            let at = SimTime::restore(r)?;
            let seq = r.get_u64()?;
            let event = E::restore(r)?;
            if seq >= next_seq {
                return Err(SnapError::Invalid(format!("seq {seq} >= next_seq")));
            }
            if !seen.insert(seq) {
                return Err(SnapError::Invalid(format!("duplicate stored seq {seq}")));
            }
            Ok(Entry { at, seq, event })
        };

        let mut backfill = BinaryHeap::new();
        let mut overflow = BinaryHeap::new();
        for (which, heap) in [&mut backfill, &mut overflow].into_iter().enumerate() {
            let n = r.get_len()?;
            let mut last: Option<(SimTime, u64)> = None;
            for _ in 0..n {
                let e = read_entry(r, &mut seen)?;
                if last.is_some_and(|l| l >= (e.at, e.seq)) {
                    return Err(SnapError::Invalid("heap entries not ascending".into()));
                }
                last = Some((e.at, e.seq));
                let at_us = e.at.as_micros();
                let ok = if which == 0 {
                    at_us < cursor
                } else {
                    at_us >= cursor && (at_us ^ cursor) >> HORIZON_BITS != 0
                };
                if !ok {
                    return Err(SnapError::Invalid(format!(
                        "heap entry at {at_us}µs inconsistent with cursor {cursor}"
                    )));
                }
                heap.push(e);
            }
        }

        let mut slots: Vec<VecDeque<Entry<E>>> =
            (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect();
        let mut occupancy = [0u64; LEVELS];
        for (i, slot_q) in slots.iter_mut().enumerate() {
            let n = r.get_len()?;
            let (level, slot) = (i / SLOTS, i % SLOTS);
            for _ in 0..n {
                let e = read_entry(r, &mut seen)?;
                if Self::placement(cursor, e.at.as_micros()) != Some((level, slot)) {
                    return Err(SnapError::Invalid(format!(
                        "wheel entry at {}µs misplaced in level {level} slot {slot}",
                        e.at.as_micros()
                    )));
                }
                slot_q.push_back(e);
            }
            if !slot_q.is_empty() {
                occupancy[level] |= 1u64 << slot;
            }
        }

        for s in &pending_vec {
            if !seen.contains(s) {
                return Err(SnapError::Invalid(format!(
                    "pending seq {s} has no stored entry"
                )));
            }
        }

        Ok(EventQueue {
            slots,
            occupancy,
            cursor,
            backfill,
            overflow,
            next_seq,
            pending,
            now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.schedule(SimTime::from_secs(2), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), t2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.pop();
        // Scheduling in the past silently clamps to now.
        q.schedule(SimTime::from_secs(1), "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel returns false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_len_stays_consistent() {
        // Regression: cancelling an id whose event already popped used to
        // insert a stale seq into the tombstone set, wrongly returning `true`
        // and making `len()` underflow-panic on the next call.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a), "cancel of a fired event must be a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_event_never_fires_via_pop_until() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(1), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(SimTime::from_secs(2)).unwrap().1, "b");
        assert!(q.pop_until(SimTime::from_secs(2)).is_none());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 5);
        assert_eq!(q.pop_until(SimTime::from_secs(2)).unwrap().1, 1);
        assert!(q.pop_until(SimTime::from_secs(2)).is_none());
        assert_eq!(q.pop_until(SimTime::from_secs(5)).unwrap().1, 5);
    }

    #[test]
    fn stress_many_events_sorted() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::DetRng::new(99);
        for i in 0..50_000u64 {
            let at = SimTime::ZERO + SimDuration::from_micros(rng.below(1_000_000));
            q.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, 50_000);
    }

    #[test]
    fn far_future_overflows_and_promotes_between_levels() {
        // An event beyond the 64^6 µs ≈ 19 h wheel horizon lands in the
        // overflow heap, then promotes into the wheel (cascading down
        // through the levels) once everything nearer has drained — and
        // pops in exact (time, seq) order throughout.
        let mut q = EventQueue::new();
        let horizon_us = 1u64 << HORIZON_BITS;
        let far = SimTime::from_micros(horizon_us + 12_345);
        let farther = SimTime::from_micros(3 * horizon_us + 99);
        q.schedule(far, "far");
        q.schedule(farther, "farther");
        assert_eq!(q.overflow.len(), 2, "beyond-horizon events overflow");
        q.schedule(SimTime::from_micros(5), "near");
        assert_eq!(q.overflow.len(), 2);

        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(5), "near"));
        // Popping the far event forces a promotion out of overflow and a
        // cascade down every wheel level to a 1 µs level-0 slot.
        assert_eq!(q.pop().unwrap(), (far, "far"));
        assert_eq!(q.overflow.len(), 1, "still-too-far event stays in overflow");
        assert_eq!(q.pop().unwrap(), (farther, "farther"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_fifo_across_wheel_and_promotion() {
        // FIFO ties must hold even when same-timestamp events take
        // different routes into the wheel (direct insert at different
        // levels vs. overflow promotion).
        let mut q = EventQueue::new();
        let t = SimTime::from_micros((1 << HORIZON_BITS) + 77);
        q.schedule(t, 0); // overflow
        q.schedule(SimTime::from_micros(1), 100); // near
        q.schedule(t, 1); // overflow, after 0
        assert_eq!(q.pop().unwrap().1, 100);
        q.schedule(t, 2); // still overflow relative to cursor=1
        for expect in 0..3 {
            let (at, v) = q.pop().unwrap();
            assert_eq!(at, t);
            assert_eq!(v, expect, "same-instant events pop in schedule order");
        }
    }

    #[test]
    fn schedule_into_cursor_gap_after_cancelled_skip() {
        // Skipping a cancelled event moves the wheel cursor to its slot;
        // a handler may then schedule an event earlier than that slot
        // (but after `now`). It must still pop, and in time order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "t10");
        let c = q.schedule(SimTime::from_micros(5_000), "cancelled");
        q.schedule(SimTime::from_micros(9_000), "t9000");
        assert_eq!(q.pop().unwrap().1, "t10");
        assert!(q.cancel(c));
        // No live event ≤ 6000: this skips the cancelled 5000 µs entry,
        // structurally advancing the wheel past it.
        assert!(q.pop_until(SimTime::from_micros(6_000)).is_none());
        // Schedule into the gap the cursor already passed.
        q.schedule(SimTime::from_micros(2_000), "gap");
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(2_000), "gap"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(9_000), "t9000"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn stress_mixed_horizons_and_cancels_sorted() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::DetRng::new(1234);
        let mut ids = Vec::new();
        for i in 0..20_000u64 {
            // Mix near-future, mid-wheel, and beyond-horizon times.
            let at = match rng.below(10) {
                0..=5 => rng.below(1 << 18),
                6..=8 => rng.below(1 << 34),
                _ => (1 << HORIZON_BITS) + rng.below(1 << 38),
            };
            ids.push(q.schedule(SimTime::from_micros(at), i));
        }
        for (k, id) in ids.iter().enumerate() {
            if k % 3 == 0 {
                q.cancel(*id);
            }
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            assert!(t >= last);
            assert!(i % 3 != 0, "cancelled events never fire");
            last = t;
            count += 1;
        }
        assert_eq!(count, 20_000 - ids.len().div_ceil(3));
        assert!(q.is_empty());
    }

    /// Differential reference: a plain binary heap with FIFO tie-breaking,
    /// mirroring the queue's contract without any wheel/overflow structure.
    fn heap_reference(events: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut sorted: Vec<(u64, u64, u64)> = events
            .iter()
            .enumerate()
            .map(|(seq, &(at, v))| (at, seq as u64, v))
            .collect();
        sorted.sort_unstable();
        sorted.into_iter().map(|(at, _, v)| (at, v)).collect()
    }

    /// Satellite audit test: dense events straddling exactly
    /// `cursor + 2^HORIZON_BITS` while the cursor sits just below the
    /// block seam, so the overflow condition `(at ^ cursor) >> HORIZON_BITS`
    /// flips for events only a microsecond apart. Pop order must match the
    /// heap reference bit for bit.
    #[test]
    fn dense_events_straddling_horizon_boundary_pop_in_order() {
        let seam = 1u64 << HORIZON_BITS;
        // Park the cursor just below the seam: pop a pilot event there.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(seam - 100), 999_999u64);
        assert_eq!(q.pop().unwrap().0.as_micros(), seam - 100);
        // Dense cluster across the seam: seam + [-3, +3] (one µs apart,
        // flipping the XOR-block test), plus the exact distance-2^36
        // points from the parked cursor and from the seam itself.
        let mut events = Vec::new();
        let mut tag = 0u64;
        for delta in 0..7u64 {
            events.push((seam - 3 + delta, tag));
            tag += 1;
        }
        for at in [seam - 100 + seam, seam + seam, seam + seam + 1] {
            events.push((at, tag));
            tag += 1;
        }
        for &(at, v) in &events {
            q.schedule(SimTime::from_micros(at), v);
        }
        let expect = heap_reference(&events);
        let mut got = Vec::new();
        while let Some((t, v)) = q.pop() {
            got.push((t.as_micros(), v));
        }
        assert_eq!(got, expect);
    }

    /// Snapshots a queue mid-flight, restores it, and checks both copies
    /// pop identically to the end — the core resume guarantee.
    fn assert_snapshot_transparent(q: &mut EventQueue<u64>) {
        let mut w = SnapWriter::new();
        q.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut restored = EventQueue::<u64>::restore(&mut r).expect("restore");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.peek_time(), q.peek_time());
        loop {
            let a = q.pop();
            let b = restored.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_pop_order_with_overflow_and_tombstones() {
        let mut q = EventQueue::new();
        let mut rng = crate::rng::DetRng::new(0x5AFE);
        let mut ids = Vec::new();
        for i in 0..5_000u64 {
            let at = match rng.below(10) {
                0..=6 => rng.below(1 << 20),
                7..=8 => rng.below(1 << 34),
                _ => (1 << HORIZON_BITS) + rng.below(1 << 38),
            };
            ids.push(q.schedule(SimTime::from_micros(at), i));
        }
        // Cancel a quarter so tombstones sit in the wheel and heaps.
        for (k, id) in ids.iter().enumerate() {
            if k % 4 == 0 {
                q.cancel(*id);
            }
        }
        // Drain partway so cursor, backfill, and promotion state are all
        // non-trivial at snapshot time.
        for _ in 0..1_500 {
            q.pop();
        }
        q.schedule(SimTime::from_micros(q.now().as_micros() + 3), 999_999);
        assert_snapshot_transparent(&mut q);
    }

    #[test]
    fn snapshot_roundtrip_empty_and_pathological_cursors() {
        // Empty queue.
        let mut q: EventQueue<u64> = EventQueue::new();
        assert_snapshot_transparent(&mut q);
        // Cursor parked just below the horizon seam with straddling events.
        let seam = 1u64 << HORIZON_BITS;
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(seam - 2), 0u64);
        q.pop();
        for (i, at) in [seam - 1, seam, seam + 1, 3 * seam].into_iter().enumerate() {
            q.schedule(SimTime::from_micros(at), i as u64 + 1);
        }
        assert_snapshot_transparent(&mut q);
    }

    #[test]
    fn snapshot_restore_rejects_corruption() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.schedule(SimTime::from_micros(i * 7), i);
        }
        let c = q.schedule(SimTime::from_micros(999), 999);
        q.cancel(c);
        let mut w = SnapWriter::new();
        q.snap(&mut w);
        let bytes = w.into_bytes();
        // Truncation at every byte must error, never panic or half-build.
        for n in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..n]);
            let res = EventQueue::<u64>::restore(&mut r).and_then(|_| r.finish());
            assert!(res.is_err(), "accepted {n}-byte prefix");
        }
    }

    /// Randomised differential across the horizon seam: events scattered
    /// densely on both sides of `cursor + 2^HORIZON_BITS` (including exact
    /// seam hits), with interleaved pops that drag the cursor across the
    /// boundary and cancellations thinning the wheel so promotion runs
    /// from many different cursor positions.
    #[test]
    fn dense_events_straddling_horizon_boundary_differential() {
        let seam = 1u64 << HORIZON_BITS;
        for seed in 0..8u64 {
            let mut rng = crate::rng::DetRng::new(0xB0D5 + seed);
            // Base cursor position below the seam varies per round so the
            // XOR block boundary is exercised from aligned and unaligned
            // cursors alike.
            let base = seam - 1 - rng.below(1 << 12);
            let mut q = EventQueue::new();
            q.schedule(SimTime::from_micros(base), 0u64);
            assert_eq!(q.pop().unwrap().0.as_micros(), base);

            let mut events: Vec<(u64, u64)> = Vec::new();
            for i in 1..=2_000u64 {
                // Cluster radius ±2^13 around the seam, plus exact seam and
                // exact `base + 2^HORIZON_BITS` hits sprinkled in.
                let at = match rng.below(20) {
                    0 => seam,
                    1 => base + seam,
                    2 => base + seam + 1,
                    3 => base.wrapping_add(seam).wrapping_sub(1),
                    _ => seam - (1 << 13) + rng.below(1 << 14),
                };
                events.push((at.max(base), i));
            }
            let mut ids = Vec::new();
            for &(at, v) in &events {
                ids.push((q.schedule(SimTime::from_micros(at), v), v));
            }
            // Cancel a third; drop them from the reference too.
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (k, (&(at, v), &(id, _))) in events.iter().zip(ids.iter()).enumerate() {
                if k % 3 == 1 {
                    assert!(q.cancel(id));
                } else {
                    live.push((at, v));
                }
            }
            let expect: Vec<(u64, u64)> = heap_reference(&events)
                .into_iter()
                .filter(|&(at, v)| live.contains(&(at, v)))
                .collect();
            // Pop half through a limit below the seam first (bounded pops
            // straddle the promotion), then drain.
            let mut got = Vec::new();
            while let Some((t, v)) = q.pop_until(SimTime::from_micros(seam - 1)) {
                got.push((t.as_micros(), v));
            }
            while let Some((t, v)) = q.pop() {
                got.push((t.as_micros(), v));
            }
            assert_eq!(got, expect, "seed {seed} diverged from heap reference");
        }
    }
}
