//! Simulated time.
//!
//! The simulation clock is a monotonically increasing count of microseconds
//! since the start of the run. Two newtypes keep instants and durations from
//! being confused: [`SimTime`] (an instant) and [`SimDuration`] (a span).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Returns the instant as whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as whole seconds since simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the instant as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond and saturating negative inputs to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration(0);
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// microsecond and saturating negative inputs to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Returns the span as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the span as whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Time elapsed between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", fmt_micros(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as HH:MM:SS wall-clock style, which the diurnal figures use.
        let secs = self.as_secs();
        write!(
            f,
            "{:02}:{:02}:{:02}",
            secs / 3600,
            (secs / 60) % 60,
            secs % 60
        )
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_micros(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_micros(self.0))
    }
}

fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{}us", us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3_600);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d.as_millis(), 500);
        assert_eq!((SimDuration::from_secs(4) / 2).as_secs(), 2);
        assert_eq!((SimDuration::from_secs(3) * 2).as_secs(), 6);
    }

    #[test]
    fn fractional_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_micros(), 1_250_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_fractions_saturate_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(b.saturating_since(a).as_secs(), 2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(3_661)), "01:01:01");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn mul_duration_by_float() {
        let d = SimDuration::from_secs(2) * 1.5;
        assert_eq!(d.as_millis(), 3_000);
    }
}
