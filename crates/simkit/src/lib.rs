//! Discrete-event simulation kernel for the Bladerunner reproduction.
//!
//! `simkit` provides the substrate every other crate in this workspace is
//! built on:
//!
//! * [`time`] — a simulated clock ([`SimTime`], [`SimDuration`]) with
//!   microsecond resolution.
//! * [`rng`] — a small, fully deterministic random number generator
//!   ([`rng::DetRng`]) so that every experiment in the repository is exactly
//!   reproducible from a seed.
//! * [`dist`] — probability distributions (exponential, Poisson, Zipf,
//!   log-normal, Pareto, …) implemented from scratch and used by the
//!   workload generators and latency models.
//! * [`queue`] — the event queue ([`queue::EventQueue`]) that drives
//!   simulations: a time-ordered priority queue with deterministic
//!   tie-breaking.
//! * [`metrics`] — counters, log-bucketed histograms, and fixed-interval
//!   time series with percentile/CDF extraction, mirroring the quantities
//!   the paper reports.
//! * [`trace`] — the per-update hop ledger ([`trace::TraceLedger`]): every
//!   update admitted to a simulation is followed write → Pylon → BRASS →
//!   BURST → device, with per-hop latency histograms and drop attribution.
//! * [`shard`] — cross-shard mailboxes for conservative parallel
//!   simulation: window-clamped envelopes merged in `(time, src_shard,
//!   seq)` order so results never depend on thread scheduling.
//! * [`alloc`] — an opt-in counting global allocator so benches can report
//!   live heap bytes (bytes-per-device) alongside coarse RSS.
//! * [`snap`] — deterministic binary snapshots: a fail-closed, versioned,
//!   checksummed encoding ([`snap::Snap`], [`snap::seal`]) plus the rolling
//!   fingerprint ([`snap::Fp64`]) used to bisect diverging runs.
//!
//! All components in the workspace are written *sans-io*: they are pure
//! state machines that consume inputs and emit outputs, and the simulation
//! kernel here supplies the arrow of time.
//!
//! # Examples
//!
//! ```
//! use simkit::queue::EventQueue;
//! use simkit::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t.as_millis(), 1);
//! ```

pub mod alloc;
pub mod collections;
pub mod dist;
pub mod fxhash;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod snap;
pub mod time;
pub mod trace;

pub use dist::{Distribution, Exponential, LogNormal, Pareto, Poisson, Zipf};
pub use metrics::{Counter, Histogram, TimeSeries};
pub use queue::EventQueue;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use trace::{DropReason, Hop, HopOutcome, HopRecord, TraceId, TraceLedger};
