//! Probability distributions, implemented from scratch.
//!
//! The workload generators (Zipf video popularity, power-law friend counts,
//! bursty comment arrivals) and the latency models (log-normal hop latencies
//! calibrated to the paper's Table 3) are all driven by the samplers here.
//! Everything draws from [`DetRng`] so runs are reproducible.

use crate::rng::DetRng;

/// A sampleable distribution over `f64`.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut DetRng) -> f64;

    /// Draws `n` samples into a vector.
    fn sample_n(&self, rng: &mut DetRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for Poisson-process inter-arrival times.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        Exponential { lambda }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        -rng.f64_open().ln() / self.lambda
    }
}

/// Poisson distribution with mean `lambda`; samples are returned as `f64`
/// holding non-negative integers.
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        Poisson { lambda }
    }

    /// Draws one sample as an integer count.
    pub fn sample_count(&self, rng: &mut DetRng) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's product method for small means.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.f64_open();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction for large means.
            let n = normal(rng) * self.lambda.sqrt() + self.lambda;
            n.max(0.0).round() as u64
        }
    }
}

impl Distribution for Poisson {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.sample_count(rng) as f64
    }
}

/// Standard normal sample via the Box–Muller transform.
fn normal(rng: &mut DetRng) -> f64 {
    let u1 = rng.f64_open();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or the parameters are not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
        Normal { mean, std_dev }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.mean + self.std_dev * normal(rng)
    }
}

/// Log-normal distribution parameterised by the mean and standard deviation
/// of the underlying normal (`mu`, `sigma`).
///
/// This is the workhorse for hop latencies: heavy-ish right tail, strictly
/// positive, easy to calibrate to a median and a p90.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters `mu`, `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or the parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Calibrates a log-normal from its median and p90.
    ///
    /// This mirrors how the paper reports latencies (average plus P90/P99),
    /// letting us back latency models straight out of Table 3.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < median <= p90`.
    pub fn from_median_p90(median: f64, p90: f64) -> Self {
        assert!(median > 0.0 && p90 >= median, "need 0 < median <= p90");
        let mu = median.ln();
        // Phi^-1(0.9) ~= 1.2815515655446004.
        let sigma = (p90.ln() - mu) / 1.281_551_565_544_600_4;
        LogNormal::new(mu, sigma)
    }

    /// The distribution median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        (self.mu + self.sigma * normal(rng)).exp()
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Used for friend-count and stream-lifetime tails.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and positive.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0 && x_min.is_finite() && alpha.is_finite());
        Pareto { x_min, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.x_min / rng.f64_open().powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Models the paper's Table 1 shape: a handful of social-graph areas receive
/// the overwhelming majority of updates. Sampling uses the rejection method
/// of Jason Crease / W. Hörmann, which is O(1) per draw and needs no O(n)
/// table, so `n` can be in the billions.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for the rejection sampler.
    t: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s > 0`,
    /// `s != 1` handled via the generalized harmonic integral approximation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(s > 0.0 && s.is_finite(), "s must be positive");
        let t = if (s - 1.0).abs() < 1e-9 {
            1.0 + (n as f64).ln()
        } else {
            ((n as f64).powf(1.0 - s) - s) / (1.0 - s)
        };
        Zipf { n, s, t }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut DetRng) -> u64 {
        // Inverse-CDF of the enveloping density, then rejection against the
        // true Zipf pmf.
        loop {
            let p = rng.f64_open() * self.t;
            let x = if p <= 1.0 {
                p
            } else if (self.s - 1.0).abs() < 1e-9 {
                (p - 1.0).exp()
            } else {
                (1.0 + p * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
            };
            let k = x.floor().max(1.0).min(self.n as f64) as u64;
            // Acceptance ratio: pmf(k) / envelope(x).
            let env = if k == 1 {
                1.0
            } else {
                (k as f64).powf(-self.s)
            };
            let ratio = (k as f64).powf(-self.s) / env.max(f64::MIN_POSITIVE);
            let accept = if k == 1 {
                true
            } else {
                // Envelope at x in [k, k+1) is (k)^-s via floor; exact for
                // integral envelope, accept proportionally.
                ratio >= rng.f64()
            };
            if accept {
                return k;
            }
        }
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// A discrete distribution over `0..weights.len()` with the given weights.
///
/// Used wherever the paper gives an explicit categorical breakdown (e.g.
/// Table 2's stream-lifetime buckets).
#[derive(Clone, Debug)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                assert!(*w >= 0.0, "weights must be non-negative");
                acc += w / total;
                acc
            })
            .collect();
        Categorical { cumulative }
    }

    /// Draws one category index.
    pub fn sample_index(&self, rng: &mut DetRng) -> usize {
        let u = rng.f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// An empirical distribution defined by linear interpolation between CDF
/// points `(value, cumulative_probability)`.
///
/// This is how we feed the paper's published curves (e.g. the Fig. 6 polling
/// latency histogram) back into the simulator as input models.
#[derive(Clone, Debug)]
pub struct Empirical {
    points: Vec<(f64, f64)>,
}

impl Empirical {
    /// Creates an empirical distribution from CDF points.
    ///
    /// Points must be sorted by value, with cumulative probabilities
    /// non-decreasing in `[0, 1]` and ending at 1.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied or the invariants above
    /// are violated.
    pub fn from_cdf(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be sorted");
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
        }
        let last = points.last().expect("non-empty");
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "CDF must end at 1.0, got {}",
            last.1
        );
        Empirical {
            points: points.to_vec(),
        }
    }

    /// Evaluates the inverse CDF (quantile function) at `u` in `[0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 - p0 < 1e-12 {
                    return v1;
                }
                let f = (u - p0) / (p1 - p0);
                return v0 + f * (v1 - v0);
            }
        }
        self.points.last().expect("non-empty").0
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.quantile(rng.f64())
    }
}

/// A Markov-modulated Poisson process with two states (quiet and burst).
///
/// §2 of the paper: "some video streams have very few comments for prolonged
/// periods of time, but then incur a burst of many comments". This process
/// alternates between a quiet rate and a burst rate with exponentially
/// distributed dwell times, producing exactly that pattern.
#[derive(Clone, Copy, Debug)]
pub struct Mmpp2 {
    /// Event rate in the quiet state (events per second).
    pub quiet_rate: f64,
    /// Event rate in the burst state (events per second).
    pub burst_rate: f64,
    /// Mean dwell time in the quiet state (seconds).
    pub quiet_dwell: f64,
    /// Mean dwell time in the burst state (seconds).
    pub burst_dwell: f64,
}

/// Mutable sampling state for an [`Mmpp2`] process.
#[derive(Clone, Copy, Debug)]
pub struct Mmpp2State {
    in_burst: bool,
    state_ends_at: f64,
    now: f64,
}

impl Mmpp2 {
    /// Creates the initial sampling state starting in the quiet phase.
    pub fn start(&self, rng: &mut DetRng) -> Mmpp2State {
        Mmpp2State {
            in_burst: false,
            state_ends_at: Exponential::with_mean(self.quiet_dwell).sample(rng),
            now: 0.0,
        }
    }

    /// Returns the time (in seconds, absolute) of the next event.
    pub fn next_event(&self, state: &mut Mmpp2State, rng: &mut DetRng) -> f64 {
        loop {
            let rate = if state.in_burst {
                self.burst_rate
            } else {
                self.quiet_rate
            };
            let gap = Exponential::new(rate).sample(rng);
            if state.now + gap <= state.state_ends_at {
                state.now += gap;
                return state.now;
            }
            // Phase change before the next event: advance to the boundary and
            // flip state.
            state.now = state.state_ends_at;
            state.in_burst = !state.in_burst;
            let dwell = if state.in_burst {
                self.burst_dwell
            } else {
                self.quiet_dwell
            };
            state.state_ends_at = state.now + Exponential::with_mean(dwell).sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xB1AD_E001)
    }

    fn mean_of(d: &impl Distribution, n: usize) -> f64 {
        let mut r = rng();
        d.sample_n(&mut r, n).iter().sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(2.5);
        let m = mean_of(&d, 200_000);
        assert!((m - 2.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(1.0);
        let mut r = rng();
        assert!((0..10_000).all(|_| d.sample(&mut r) > 0.0));
    }

    #[test]
    fn poisson_small_mean() {
        let d = Poisson::new(3.0);
        let m = mean_of(&d, 100_000);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let d = Poisson::new(400.0);
        let m = mean_of(&d, 50_000);
        assert!((m - 400.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let mut r = rng();
        let xs = d.sample_n(&mut r, 200_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_calibration() {
        let d = LogNormal::from_median_p90(100.0, 160.0);
        assert!((d.median() - 100.0).abs() < 1e-9);
        let mut r = rng();
        let mut xs = d.sample_n(&mut r, 100_000);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        let p90 = xs[(xs.len() as f64 * 0.9) as usize];
        assert!((med - 100.0).abs() < 2.0, "median {med}");
        assert!((p90 - 160.0).abs() < 4.0, "p90 {p90}");
    }

    #[test]
    fn pareto_tail() {
        let d = Pareto::new(1.0, 2.0);
        let mut r = rng();
        let xs = d.sample_n(&mut r, 100_000);
        assert!(xs.iter().all(|&x| x >= 1.0));
        // P(X > 10) = 10^-2 = 1%.
        let tail = xs.iter().filter(|&&x| x > 10.0).count() as f64 / xs.len() as f64;
        assert!((tail - 0.01).abs() < 0.003, "tail {tail}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(1_000_000, 1.1);
        let mut r = rng();
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample_rank(&mut r) == 1).count();
        // Rank 1 should be by far the most common outcome.
        let twos = {
            let mut r = rng();
            (0..n).filter(|_| d.sample_rank(&mut r) == 2).count()
        };
        assert!(ones > twos, "ones={ones} twos={twos}");
        assert!(ones > n / 20, "rank 1 count {ones}");
    }

    #[test]
    fn zipf_in_bounds() {
        let d = Zipf::new(50, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let k = d.sample_rank(&mut r);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn categorical_matches_weights() {
        let d = Categorical::new(&[0.45, 0.26, 0.25, 0.04]);
        let mut r = rng();
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[d.sample_index(&mut r)] += 1;
        }
        let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        for (f, w) in fracs.iter().zip([0.45, 0.26, 0.25, 0.04]) {
            assert!((f - w).abs() < 0.01, "frac {f} vs weight {w}");
        }
    }

    #[test]
    #[should_panic(expected = "sum to a positive")]
    fn categorical_rejects_zero_weights() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn empirical_quantiles_interpolate() {
        let d = Empirical::from_cdf(&[(0.0, 0.0), (10.0, 0.5), (20.0, 1.0)]);
        assert!((d.quantile(0.25) - 5.0).abs() < 1e-9);
        assert!((d.quantile(0.75) - 15.0).abs() < 1e-9);
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), 20.0);
    }

    #[test]
    fn empirical_sampling_matches_cdf() {
        let d = Empirical::from_cdf(&[(0.0, 0.0), (1.0, 0.8), (10.0, 1.0)]);
        let mut r = rng();
        let xs = d.sample_n(&mut r, 100_000);
        let below_one = xs.iter().filter(|&&x| x <= 1.0).count() as f64 / xs.len() as f64;
        assert!((below_one - 0.8).abs() < 0.01, "frac {below_one}");
    }

    #[test]
    fn mmpp_burstiness() {
        // A strongly bursty process should have a much higher event count
        // during bursts than quiet phases, visible as variance in windowed
        // counts far above Poisson.
        let p = Mmpp2 {
            quiet_rate: 1.0,
            burst_rate: 200.0,
            quiet_dwell: 50.0,
            burst_dwell: 5.0,
        };
        let mut r = rng();
        let mut st = p.start(&mut r);
        let horizon = 2_000.0;
        let mut windows = vec![0u32; horizon as usize / 10];
        loop {
            let t = p.next_event(&mut st, &mut r);
            if t >= horizon {
                break;
            }
            windows[(t / 10.0) as usize] += 1;
        }
        let mean = windows.iter().map(|&c| c as f64).sum::<f64>() / windows.len() as f64;
        let var = windows
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / windows.len() as f64;
        // Poisson would give var ~= mean; MMPP burstiness inflates variance.
        assert!(var > 3.0 * mean, "var {var} mean {mean}");
    }

    #[test]
    fn mmpp_events_monotone() {
        let p = Mmpp2 {
            quiet_rate: 2.0,
            burst_rate: 40.0,
            quiet_dwell: 10.0,
            burst_dwell: 2.0,
        };
        let mut r = rng();
        let mut st = p.start(&mut r);
        let mut last = 0.0;
        for _ in 0..10_000 {
            let t = p.next_event(&mut st, &mut r);
            assert!(t >= last);
            last = t;
        }
    }
}
