//! Compact ordered collections for large resident state.
//!
//! [`SortedVecMap`] is a map stored as one contiguous `Vec<(K, V)>` kept
//! sorted by key. Against a hash map it trades O(log n) lookups and O(n)
//! arbitrary inserts for three properties that matter when an instance
//! holds a million entries for the life of a run:
//!
//! * **Exact footprint** — `len * size_of::<(K, V)>()` plus bounded vec
//!   growth slack. A hash table sized for the same population sits at
//!   50–87% load, which at seven figures is hundreds of megabytes of
//!   empty buckets.
//! * **Ascending-append fast path** — populations created in id order
//!   (the common case for fleet construction) insert in O(1) amortised.
//! * **Deterministic iteration** — always key order, independent of
//!   insertion history, so fleet scans can never become a hidden source
//!   of run-to-run divergence.

/// A map from `K` to `V` backed by a single sorted vector.
///
/// # Examples
///
/// ```
/// use simkit::collections::SortedVecMap;
///
/// let mut m = SortedVecMap::new();
/// m.insert(2u64, "b");
/// m.insert(1, "a");
/// assert_eq!(m.get(&1), Some(&"a"));
/// assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SortedVecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord, V> SortedVecMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SortedVecMap {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    /// Ascending-key appends (the fleet-construction pattern) are O(1)
    /// amortised; out-of-order inserts shift the tail.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.entries.last().is_none_or(|(k, _)| *k < key) {
            self.entries.push((key, value));
            return None;
        }
        match self.position(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// A reference to the value at `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.position(key) {
            Ok(i) => Some(&self.entries[i].1),
            Err(_) => None,
        }
    }

    /// A mutable reference to the value at `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.position(key).is_ok()
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Mutable values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Drops excess capacity left over from growth doubling.
    pub fn shrink_to_fit(&mut self) {
        self.entries.shrink_to_fit();
    }
}

impl<K, V> SortedVecMap<K, V>
where
    K: Ord + crate::snap::Snap,
    V: crate::snap::Snap,
{
    /// Writes the map into a snapshot, entries in ascending key order
    /// (which is also storage order — one of the type's invariants).
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.put_usize(self.entries.len());
        for (k, v) in &self.entries {
            k.snap(w);
            v.snap(w);
        }
    }

    /// Reads a map back, rejecting any snapshot whose keys are not
    /// strictly ascending: accepting one would silently change iteration
    /// order (and thus simulation behaviour) relative to the writer.
    pub fn restore(r: &mut crate::snap::SnapReader<'_>) -> crate::snap::SnapResult<Self> {
        let n = r.get_len()?;
        let mut entries: Vec<(K, V)> = Vec::with_capacity(n);
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            if entries.last().is_some_and(|(last, _)| *last >= k) {
                return Err(crate::snap::SnapError::Invalid(
                    "SortedVecMap keys not strictly ascending".into(),
                ));
            }
            entries.push((k, v));
        }
        Ok(SortedVecMap { entries })
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a SortedVecMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K: Ord, V> std::ops::Index<&K> for SortedVecMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        self.get(key).expect("key not present in SortedVecMap")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SortedVecMap::new();
        assert_eq!(m.insert(5u64, "e"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.insert(3, "c2"), Some("c"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&3), Some(&"c2"));
        assert!(m.contains_key(&1));
        assert!(!m.contains_key(&2));
        assert_eq!(m.remove(&1), Some("a"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_key_ordered_regardless_of_insert_order() {
        let mut m = SortedVecMap::new();
        for k in [9u64, 2, 7, 4, 1] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 2, 4, 7, 9]);
        let pairs: Vec<(u64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(pairs[0], (1, 10));
        for (&k, &v) in &m {
            assert_eq!(v, k * 10);
        }
    }

    #[test]
    fn ascending_append_and_index() {
        let mut m = SortedVecMap::new();
        for k in 0u64..1000 {
            m.insert(k, k);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&999], 999);
        assert_eq!(m.values().sum::<u64>(), 499_500);
        let doubled: Vec<u64> = {
            for v in m.values_mut() {
                *v *= 2;
            }
            m.values().take(3).copied().collect()
        };
        assert_eq!(doubled, vec![0, 2, 4]);
    }
}
