//! A counting global allocator for precise bytes accounting.
//!
//! Coarse RSS (what the OS reports) mixes the allocator's retained pages,
//! fragmentation, and code/stack into one number; for a "bytes per device"
//! metric we want *live heap bytes* as the program sees them. [`CountingAlloc`]
//! wraps the system allocator and keeps a live-bytes counter plus a
//! high-water mark, with relaxed atomics so the overhead is one add per
//! alloc/dealloc.
//!
//! The type is always compiled; installing it is the binary's choice:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: simkit::alloc::CountingAlloc = simkit::alloc::CountingAlloc;
//! ```
//!
//! The bench binaries install it behind the `count-alloc` feature so the
//! default build keeps the stock allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Wraps [`System`] and counts live heap bytes. See the module docs.
pub struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        // The max update can race between threads; the mark may then read a
        // hair low, which is fine for a high-water statistic.
        if live > PEAK.load(Ordering::Relaxed) {
            PEAK.store(live, Ordering::Relaxed);
        }
    }

    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        new_ptr
    }
}

/// Heap bytes currently allocated (zero unless a [`CountingAlloc`] is
/// installed as the global allocator).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live count, so a caller can
/// measure the peak of one phase in isolation.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}
