//! Deterministic random number generation.
//!
//! Every experiment in this repository must be reproducible from a seed, so
//! we use a small, self-contained generator rather than an OS-seeded one.
//! [`DetRng`] is a `xoshiro256++` generator (Blackman & Vigna) seeded through
//! SplitMix64, with convenience methods for the value shapes the simulator
//! needs. It also supports cheap [`fork`](DetRng::fork)ing so independent
//! components can carry independent streams derived from one master seed.

/// A deterministic pseudo-random number generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forking lets one master seed drive many components (workload, latency
    /// model, failure injection, …) without their draws interleaving, so
    /// adding draws in one component does not perturb another.
    pub fn fork(&self, stream: u64) -> DetRng {
        // Mix the fork label through SplitMix64 so that consecutive labels
        // yield decorrelated seeds.
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let _ = splitmix64(&mut sm);
        DetRng::new(splitmix64(&mut sm))
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]`, safe to pass to `ln()`.
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's nearly-divisionless bounded sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// The raw generator state, for snapshotting mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`state`], resuming
    /// the stream exactly where it left off.
    ///
    /// [`state`]: DetRng::state
    pub fn from_state(s: [u64; 4]) -> Self {
        DetRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let root = DetRng::new(7);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        let mut f1b = root.fork(0);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        let same = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = DetRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_uniform_and_in_bounds() {
        let mut r = DetRng::new(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "count {c}");
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..1_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = DetRng::new(13);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn state_capture_resumes_stream_exactly() {
        let mut a = DetRng::new(21);
        for _ in 0..1000 {
            a.next_u64();
        }
        let mut b = DetRng::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(17);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
