//! Differential test: the hierarchical timing-wheel [`EventQueue`] must be
//! observably identical to the original binary-heap implementation for
//! arbitrary interleavings of `schedule` / `cancel` / `pop` / `pop_until`
//! — same pop order (the (time, seq) FIFO tie-break contract), same
//! cancel results (including cancel-after-fire returning `false`), same
//! `len`/`peek_time` at every step.

use std::collections::HashSet;

use proptest::prelude::*;
use simkit::queue::EventQueue;
use simkit::time::SimTime;

/// Reference model with the exact observable semantics of the pre-wheel
/// heap queue: entries stay stored until popped, cancellation only flips
/// membership in the live set, pops skip (and discard) cancelled entries,
/// and `pop_until`/`peek_time` bound on the earliest *stored* entry
/// (cancelled or not) — the documented conservative behaviour.
struct RefQueue {
    entries: Vec<(u64, u64, u64)>, // (at µs, seq, payload)
    next_seq: u64,
    pending: HashSet<u64>,
    now: u64,
}

impl RefQueue {
    fn new() -> Self {
        RefQueue {
            entries: Vec::new(),
            next_seq: 0,
            pending: HashSet::new(),
            now: 0,
        }
    }

    fn schedule(&mut self, at: u64, payload: u64) -> u64 {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.entries.push((at, seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.pending.remove(&seq)
    }

    fn head_index(&self) -> Option<usize> {
        (0..self.entries.len()).min_by_key(|&i| (self.entries[i].0, self.entries[i].1))
    }

    fn pop_bounded(&mut self, limit: u64) -> Option<(u64, u64)> {
        loop {
            let i = self.head_index()?;
            let (at, seq, payload) = self.entries[i];
            if at > limit {
                return None;
            }
            self.entries.swap_remove(i);
            if !self.pending.remove(&seq) {
                continue;
            }
            self.now = at;
            return Some((at, payload));
        }
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn peek_time(&self) -> Option<u64> {
        self.head_index().map(|i| self.entries[i].0)
    }
}

/// One step of the interleaving, decoded from fuzz words.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule(u64),
    Cancel(usize),
    Pop,
    PopUntil(u64),
}

fn decode(kind: u8, raw: u64) -> Op {
    // Spread times over three scales so runs exercise in-slot ties, wheel
    // cascades across levels, and beyond-horizon overflow promotion.
    let at = match raw % 3 {
        0 => raw % (1 << 10),
        1 => raw % (1 << 22),
        _ => raw % (1 << 40),
    };
    match kind % 10 {
        0..=4 => Op::Schedule(at),
        5 | 6 => Op::Cancel(raw as usize),
        7 | 8 => Op::Pop,
        _ => Op::PopUntil(at),
    }
}

proptest! {
    #[test]
    fn wheel_matches_heap_reference(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200)
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut reference = RefQueue::new();
        let mut wheel_ids = Vec::new();
        let mut ref_ids = Vec::new();

        for (i, &(kind, raw)) in ops.iter().enumerate() {
            match decode(kind, raw) {
                Op::Schedule(at) => {
                    wheel_ids.push(wheel.schedule(SimTime::from_micros(at), i as u64));
                    ref_ids.push(reference.schedule(at, i as u64));
                }
                Op::Cancel(pick) => {
                    if wheel_ids.is_empty() {
                        continue;
                    }
                    let k = pick % wheel_ids.len();
                    // Covers live cancel, double cancel, and cancel after
                    // fire — results must agree in every case.
                    prop_assert_eq!(
                        wheel.cancel(wheel_ids[k]),
                        reference.cancel(ref_ids[k]),
                        "cancel divergence at op {}", i
                    );
                }
                Op::Pop => {
                    let got = wheel.pop();
                    let want = reference.pop_bounded(u64::MAX);
                    prop_assert_eq!(
                        got.map(|(t, v)| (t.as_micros(), v)),
                        want,
                        "pop divergence at op {}", i
                    );
                }
                Op::PopUntil(until) => {
                    let got = wheel.pop_until(SimTime::from_micros(until));
                    let want = reference.pop_bounded(until);
                    prop_assert_eq!(
                        got.map(|(t, v)| (t.as_micros(), v)),
                        want,
                        "pop_until divergence at op {}", i
                    );
                }
            }
            prop_assert_eq!(wheel.len(), reference.len(), "len divergence at op {}", i);
            prop_assert_eq!(
                wheel.peek_time().map(SimTime::as_micros),
                reference.peek_time(),
                "peek_time divergence at op {}", i
            );
            prop_assert_eq!(wheel.now().as_micros(), reference.now, "now divergence at op {}", i);
        }

        // Drain both queues dry: the full remaining pop order must match.
        loop {
            let got = wheel.pop();
            let want = reference.pop_bounded(u64::MAX);
            prop_assert_eq!(got.map(|(t, v)| (t.as_micros(), v)), want, "drain divergence");
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
