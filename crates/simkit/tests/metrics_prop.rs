//! Property tests for the measurement primitives: the log-linear histogram
//! against an exact sorted reference, and time-series conservation.

use proptest::prelude::*;

use simkit::metrics::Histogram;
use simkit::time::{SimDuration, SimTime};
use simkit::TimeSeries;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Histogram quantiles stay within the bucketing's relative-error bound
    /// of the exact order statistics.
    #[test]
    fn quantiles_bounded_relative_error(
        mut values in proptest::collection::vec(0.0f64..1_000_000.0, 10..500),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let idx = ((q * values.len() as f64).ceil() as usize)
                .clamp(1, values.len()) - 1;
            let exact = values[idx];
            let approx = h.quantile(q);
            // 32 sub-buckets per octave -> ~3.2% relative error, plus the
            // integer-bucket floor for small values.
            let tolerance = (exact * 0.04).max(1.0);
            prop_assert!(
                (approx - exact).abs() <= tolerance,
                "q{q}: approx {approx} vs exact {exact} (n={})",
                values.len()
            );
        }
    }

    /// Count, min, max and mean are exact regardless of bucketing.
    #[test]
    fn moments_are_exact(values in proptest::collection::vec(0.0f64..1e9, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
    }

    /// The CDF is a proper distribution function: monotone, reaching 1.
    #[test]
    fn cdf_is_monotone_to_one(values in proptest::collection::vec(0.0f64..10_000.0, 1..100)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let x = i as f64 * 550.0;
            let c = h.cdf_at(x);
            prop_assert!(c >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&c));
            last = c;
        }
        prop_assert!((h.cdf_at(20_000.0) - 1.0).abs() < 1e-12);
    }

    /// Merging histograms is equivalent to recording into one.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(0.0f64..100_000.0, 0..100),
        b in proptest::collection::vec(0.0f64..100_000.0, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        for q in [0.25, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    /// Every recorded value lands in exactly one time-series bucket: the
    /// bucket sums conserve the total.
    #[test]
    fn timeseries_conserves_mass(
        points in proptest::collection::vec((0u64..7_200, 0.0f64..10.0), 0..200),
    ) {
        let mut ts = TimeSeries::new(SimDuration::from_hours(1), SimDuration::from_mins(15));
        let mut total = 0.0;
        for &(secs, v) in &points {
            ts.record(SimTime::from_secs(secs), v);
            total += v;
        }
        let sum: f64 = ts.buckets().iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
    }
}
