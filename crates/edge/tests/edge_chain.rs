//! Edge-chain integration: Device ↔ POP ↔ ReverseProxy driven together,
//! without the full-system simulator, exercising frame routing, failure
//! signalling and repair across the real effect interfaces.

use burst::frame::{Delta, Frame};
use burst::json::Json;
use edge::device::{Device, DeviceOutput};
use edge::pop::{Pop, PopEffect};
use edge::proxy::{ProxyEffect, ReverseProxy, RouteStrategy};

fn header(topic: &str) -> Json {
    Json::obj([
        ("viewer", Json::from(7u64)),
        ("app", Json::from("lvc")),
        ("topic", Json::from(topic)),
    ])
}

/// Drives a device frame down the chain, returning what reached the BRASS.
fn device_to_brass(
    pop: &mut Pop,
    proxy: &mut ReverseProxy,
    device: u64,
    frame: Frame,
    now: u64,
) -> Vec<(u32, Frame)> {
    let mut to_brass = Vec::new();
    for fx in pop.on_device_frame(device, frame, now) {
        if let PopEffect::ToProxy { device, frame, .. } = fx {
            for pfx in proxy.on_downstream_frame(device, frame, now) {
                if let ProxyEffect::ToBrass { host, frame, .. } = pfx {
                    to_brass.push((host, frame));
                }
            }
        }
    }
    to_brass
}

/// Drives a BRASS response up the chain to the device.
fn brass_to_device(
    pop: &mut Pop,
    proxy: &mut ReverseProxy,
    device: &mut Device,
    dev_id: u64,
    frame: Frame,
    now: u64,
) -> Vec<DeviceOutput> {
    let mut outputs = Vec::new();
    for pfx in proxy.on_upstream_frame(dev_id, frame, now) {
        if let ProxyEffect::ToDevice { device: d, frame } = pfx {
            for fx in pop.on_proxy_frame(d, frame, now) {
                if let PopEffect::ToDevice { frame, .. } = fx {
                    outputs.extend(device.on_frame(&frame));
                }
            }
        }
    }
    outputs
}

#[test]
fn full_chain_subscribe_deliver() {
    let mut device = Device::new(7);
    let mut pop = Pop::new(1, vec![10]);
    let mut proxy = ReverseProxy::new(10, RouteStrategy::ByTopic, vec![100, 101]);

    let (sid, sub) = device.open_stream(header("/LVC/5"), vec![]);
    let reached = device_to_brass(&mut pop, &mut proxy, 7, sub, 0);
    assert_eq!(reached.len(), 1, "subscribe reached exactly one BRASS");
    let (host, _) = reached[0];

    // The BRASS responds with an update.
    let response = Frame::Response {
        sid,
        batch: vec![Delta::update(0, b"payload".to_vec())],
    };
    let outputs = brass_to_device(&mut pop, &mut proxy, &mut device, 7, response, 1);
    assert!(
        matches!(&outputs[0], DeviceOutput::Render { payload, .. } if &payload[..] == b"payload")
    );
    assert_eq!(device.delivered(), 1);
    // Both intermediaries track the stream.
    assert_eq!(pop.stream_count(), 1);
    assert_eq!(proxy.stream_count(), 1);
    let _ = host;
}

#[test]
fn brass_failure_ripples_degraded_and_recovered_to_device() {
    let mut device = Device::new(7);
    let mut pop = Pop::new(1, vec![10]);
    let mut proxy = ReverseProxy::new(10, RouteStrategy::ByLoad, vec![100, 101]);
    let (_sid, sub) = device.open_stream(header("/LVC/5"), vec![]);
    let reached = device_to_brass(&mut pop, &mut proxy, 7, sub, 0);
    let (host, _) = reached[0];

    // The serving BRASS dies; the proxy signals and repairs.
    let mut device_outputs = Vec::new();
    let mut resubscribed_to = None;
    for fx in proxy.on_brass_host_failed(host, 1) {
        match fx {
            ProxyEffect::ToDevice { frame, .. } => {
                for pfx in pop.on_proxy_frame(7, frame, 1) {
                    if let PopEffect::ToDevice { frame, .. } = pfx {
                        device_outputs.extend(device.on_frame(&frame));
                    }
                }
            }
            ProxyEffect::ToBrass { host, .. } => resubscribed_to = Some(host),
            _ => {}
        }
    }
    assert!(device_outputs.contains(&DeviceOutput::ConnectivityChanged { degraded: true }));
    assert!(device_outputs.contains(&DeviceOutput::ConnectivityChanged { degraded: false }));
    let new_host = resubscribed_to.expect("repair resubscribed somewhere");
    assert_ne!(new_host, host, "repaired onto a different host");
}

#[test]
fn device_reconnect_flows_through_fresh_pop() {
    let mut device = Device::new(7);
    let mut pop_a = Pop::new(1, vec![10]);
    let mut pop_b = Pop::new(2, vec![10]);
    let mut proxy = ReverseProxy::new(10, RouteStrategy::ByLoad, vec![100]);

    let (sid, sub) = device.open_stream(header("/LVC/5"), vec![]);
    device_to_brass(&mut pop_a, &mut proxy, 7, sub, 0);
    // Sticky rewrite arrives before the POP dies.
    brass_to_device(
        &mut pop_a,
        &mut proxy,
        &mut device,
        7,
        Frame::Response {
            sid,
            batch: vec![Delta::RewriteRequest {
                patch: Json::obj([("brass_host", Json::from(100u64))]),
            }],
        },
        1,
    );

    // POP A dies: the device reconnects through POP B with its rewritten
    // header; no state from POP A is needed.
    let frames = device.on_connection_lost();
    assert_eq!(frames.len(), 1);
    let reached = device_to_brass(
        &mut pop_b,
        &mut proxy,
        7,
        frames.into_iter().next().unwrap(),
        2,
    );
    assert_eq!(reached.len(), 1);
    match &reached[0].1 {
        Frame::Subscribe { header, .. } => {
            assert_eq!(header.get("brass_host").and_then(Json::as_u64), Some(100));
        }
        other => panic!("expected subscribe, got {other:?}"),
    }
    assert!(
        matches!(reached[0].0, 100),
        "sticky routing held across POPs"
    );
}

#[test]
fn cancel_cleans_all_hops() {
    let mut device = Device::new(7);
    let mut pop = Pop::new(1, vec![10]);
    let mut proxy = ReverseProxy::new(10, RouteStrategy::ByLoad, vec![100]);
    let (sid, sub) = device.open_stream(header("/LVC/5"), vec![]);
    device_to_brass(&mut pop, &mut proxy, 7, sub, 0);
    let cancel = device.cancel_stream(sid).unwrap();
    let reached = device_to_brass(&mut pop, &mut proxy, 7, cancel, 1);
    assert!(matches!(reached[0].1, Frame::Cancel { .. }));
    assert_eq!(pop.stream_count(), 0);
    assert_eq!(proxy.stream_count(), 0);
    assert_eq!(device.open_streams(), 0);
}

#[test]
fn heartbeat_ping_pong_roundtrip_through_pop() {
    let mut device = Device::new(7);
    let mut pop = Pop::new(1, vec![10]);
    // Register the device with the POP via a subscribe.
    let (_, sub) = device.open_stream(header("/LVC/5"), vec![]);
    pop.on_device_frame(7, sub, 0);
    // A heartbeat tick pings the device.
    let fx = pop.on_heartbeat_tick(5_000_000);
    let ping = fx
        .iter()
        .find_map(|e| match e {
            PopEffect::ToDevice { frame, .. } => Some(frame.clone()),
            _ => None,
        })
        .expect("ping emitted");
    // The device answers; the pong terminates at the POP.
    let outputs = device.on_frame(&ping);
    let DeviceOutput::Send(pong) = &outputs[0] else {
        panic!("expected a pong send");
    };
    let fx = pop.on_device_frame(7, pong.clone(), 5_100_000);
    assert!(fx.is_empty(), "pongs are absorbed by the POP");
    // Liveness held: many more ticks, no disconnect (device keeps answering).
    for i in 2..=8u64 {
        let fx = pop.on_heartbeat_tick(i * 5_000_000);
        for e in &fx {
            if let PopEffect::ToDevice {
                frame: Frame::Ping { .. },
                ..
            } = e
            {
                let outs = device.on_frame(match e {
                    PopEffect::ToDevice { frame, .. } => frame,
                    _ => unreachable!(),
                });
                if let DeviceOutput::Send(p) = &outs[0] {
                    pop.on_device_frame(7, p.clone(), i * 5_000_000 + 1);
                }
            }
        }
        assert!(
            !fx.iter().any(|e| matches!(e, PopEffect::DeviceGone { .. })),
            "responsive device never declared gone"
        );
    }
}
