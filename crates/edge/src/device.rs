//! The end-user device model.
//!
//! A device owns one BURST connection (through a POP) carrying many
//! request-streams — "an application will have multiple (10+) active
//! request-streams simultaneously" (§3). Each stream is a
//! [`ClientStream`]; the device reacts to delivered batches, shows
//! connectivity state on flow-status deltas, and recovers from failures by
//! resubscribing every affected stream with its *current* header — which,
//! thanks to server rewrites, lands on the same BRASS (sticky routing) at
//! the right resume point.

use burst::frame::{Frame, Payload, StreamId, TerminateReason};
use burst::json::Json;
use burst::stream::{ClientAction, ClientStream, StreamState};

/// What a device does in response to protocol input.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceOutput {
    /// Send a frame upstream (to the POP).
    Send(Frame),
    /// An update payload reached the app: re-render the UI.
    Render {
        /// The stream it arrived on.
        sid: StreamId,
        /// The payload (shared with every other stream it fanned out to).
        payload: Payload,
    },
    /// A sequence gap means updates were lost; reliable apps poll the WAS.
    BackfillPoll {
        /// The affected stream.
        sid: StreamId,
    },
    /// Show/hide the connectivity indicator.
    ConnectivityChanged {
        /// `true` when degraded.
        degraded: bool,
    },
    /// A stream ended; `retry` says whether the device should resubscribe.
    StreamEnded {
        /// The stream.
        sid: StreamId,
        /// Whether the server asked for a retry (redirects, shutdowns).
        retry: bool,
    },
}

/// An end-user device (mobile app or browser tab).
///
/// Streams live in a vec kept sorted by stream id (ids are assigned
/// sequentially, so appends preserve order): at "10+ active
/// request-streams" (§3) a sorted vec beats a hash map on both resident
/// bytes and iteration determinism — there is no hasher state to leak into
/// ordering, and no bucket array amortisation.
#[derive(Clone)]
pub struct Device {
    id: u64,
    streams: Vec<ClientStream>,
    next_sid: u64,
    delivered: u64,
    renders: u64,
}

impl Device {
    /// Creates a device.
    pub fn new(id: u64) -> Self {
        Device {
            id,
            streams: Vec::new(),
            next_sid: 1,
            delivered: 0,
            renders: 0,
        }
    }

    /// This device's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    fn index_of(&self, sid: StreamId) -> Option<usize> {
        self.streams.binary_search_by_key(&sid, |s| s.sid()).ok()
    }

    /// Number of open (non-terminated) streams.
    pub fn open_streams(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| !matches!(s.state(), StreamState::Terminated(_)))
            .count()
    }

    /// Total updates delivered across all streams.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Looks at a stream's state (testing / assertions).
    pub fn stream(&self, sid: StreamId) -> Option<&ClientStream> {
        self.index_of(sid).map(|i| &self.streams[i])
    }

    /// Ids of open (non-terminated) streams, oldest first.
    pub fn open_sids(&self) -> Vec<StreamId> {
        self.streams
            .iter()
            .filter(|s| !matches!(s.state(), StreamState::Terminated(_)))
            .map(|s| s.sid())
            .collect()
    }

    /// Opens a new request-stream; returns its id and the subscribe frame.
    pub fn open_stream(&mut self, header: Json, body: Vec<u8>) -> (StreamId, Frame) {
        let sid = StreamId(self.next_sid);
        self.next_sid += 1;
        let stream = ClientStream::new(sid, header, body);
        let frame = stream.subscribe_request();
        self.streams.push(stream);
        (sid, frame)
    }

    /// Cancels a stream; returns the cancel frame.
    pub fn cancel_stream(&mut self, sid: StreamId) -> Option<Frame> {
        let i = self.index_of(sid)?;
        self.streams.remove(i);
        Some(Frame::Cancel { sid })
    }

    /// Handles a frame arriving from the POP.
    pub fn on_frame(&mut self, frame: &Frame) -> Vec<DeviceOutput> {
        let mut out = Vec::new();
        // Heartbeats are answered reflexively (§4 footnote 11).
        if let Frame::Ping { token } = frame {
            out.push(DeviceOutput::Send(Frame::Pong { token: *token }));
            return out;
        }
        let Frame::Response { sid, batch } = frame else {
            return out;
        };
        let Some(index) = self.index_of(*sid) else {
            return out;
        };
        let stream = &mut self.streams[index];
        for action in stream.on_batch(batch) {
            match action {
                ClientAction::Deliver(payload) => {
                    self.delivered += 1;
                    self.renders += 1;
                    out.push(DeviceOutput::Render { sid: *sid, payload });
                }
                ClientAction::GapDetected { .. } => {
                    out.push(DeviceOutput::BackfillPoll { sid: *sid });
                }
                ClientAction::NotifyDegraded => {
                    out.push(DeviceOutput::ConnectivityChanged { degraded: true });
                }
                ClientAction::NotifyRecovered => {
                    out.push(DeviceOutput::ConnectivityChanged { degraded: false });
                }
                ClientAction::HeaderRewritten => {}
                ClientAction::Terminated(reason) => {
                    let retry = matches!(
                        reason,
                        TerminateReason::Redirect | TerminateReason::ServerShutdown
                    );
                    out.push(DeviceOutput::StreamEnded { sid: *sid, retry });
                }
            }
        }
        // Drop terminated streams that will not retry.
        if let StreamState::Terminated(reason) = self.streams[index].state() {
            if !matches!(
                reason,
                TerminateReason::Redirect | TerminateReason::ServerShutdown
            ) {
                self.streams.remove(index);
            }
        }
        out
    }

    /// Resubscribes a stream the server asked to retry (after a redirect or
    /// shutdown terminate). Returns the new subscribe frame.
    pub fn retry_stream(&mut self, sid: StreamId) -> Option<Frame> {
        let i = self.index_of(sid)?;
        Some(self.streams[i].resubscribe_request())
    }

    /// Handles loss of the POP connection: every stream degrades, and the
    /// device produces resubscribe frames to send once reconnected. The
    /// resubscribes use the current (rewritten) headers — sticky routing
    /// and resumption need no extra device logic.
    pub fn on_connection_lost(&mut self) -> Vec<Frame> {
        let mut frames = Vec::new();
        for stream in &mut self.streams {
            if matches!(stream.state(), StreamState::Terminated(_)) {
                continue;
            }
            stream.on_connection_lost();
            frames.push(stream.resubscribe_request());
        }
        frames
    }

    /// Builds an ack frame for a stream (reliable applications).
    pub fn ack(&self, sid: StreamId) -> Option<Frame> {
        self.index_of(sid).map(|i| self.streams[i].ack_request())
    }

    /// Freezes the whole device into its compact hibernation form: scalar
    /// counters plus each stream's [`ClientStream::freeze_into`] encoding.
    /// [`Device::rehydrate`] reconstructs an identical device; the blob is
    /// also the snapshot serialization of a device.
    pub fn hibernate(&self) -> Box<[u8]> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.next_sid.to_le_bytes());
        out.extend_from_slice(&self.delivered.to_le_bytes());
        out.extend_from_slice(&self.renders.to_le_bytes());
        out.extend_from_slice(&(self.streams.len() as u32).to_le_bytes());
        for stream in &self.streams {
            stream.freeze_into(&mut out);
        }
        out.into_boxed_slice()
    }

    /// Rebuilds a device from its hibernation blob.
    pub fn rehydrate(id: u64, blob: &[u8]) -> Device {
        let mut pos = 0;
        let next_sid = read_u64(blob, &mut pos);
        let delivered = read_u64(blob, &mut pos);
        let renders = read_u64(blob, &mut pos);
        let n = read_u32(blob, &mut pos) as usize;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            streams.push(ClientStream::thaw(blob, &mut pos));
        }
        debug_assert_eq!(pos, blob.len(), "hibernation blob fully consumed");
        Device {
            id,
            streams,
            next_sid,
            delivered,
            renders,
        }
    }

    /// Open (non-terminated) stream ids of a hibernated device, read
    /// straight from the blob — no rehydration, no header unpacking.
    pub fn frozen_open_sids(blob: &[u8]) -> Vec<StreamId> {
        let mut pos = 24; // skip next_sid, delivered, renders
        let n = read_u32(blob, &mut pos) as usize;
        let mut sids = Vec::new();
        for _ in 0..n {
            let (sid, open) = ClientStream::peek_frozen(blob, &mut pos);
            if open {
                sids.push(sid);
            }
        }
        sids
    }

    /// Number of open streams in a hibernation blob (see
    /// [`Device::frozen_open_sids`]).
    pub fn frozen_open_streams(blob: &[u8]) -> usize {
        Self::frozen_open_sids(blob).len()
    }
}

fn read_u32(buf: &[u8], pos: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("u32"));
    *pos += 4;
    v
}

fn read_u64(buf: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("u64"));
    *pos += 8;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst::frame::Delta;

    fn header(topic: &str) -> Json {
        Json::obj([
            ("viewer", Json::from(9u64)),
            ("app", Json::from("lvc")),
            ("topic", Json::from(topic)),
        ])
    }

    #[test]
    fn open_stream_produces_subscribe() {
        let mut d = Device::new(1);
        let (sid, frame) = d.open_stream(header("/LVC/1"), vec![]);
        match frame {
            Frame::Subscribe { sid: s, .. } => assert_eq!(s, sid),
            other => panic!("expected subscribe, got {other:?}"),
        }
        assert_eq!(d.open_streams(), 1);
    }

    #[test]
    fn updates_render_in_order() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![
                Delta::update(0, b"a".to_vec()),
                Delta::update(1, b"b".to_vec()),
            ],
        });
        assert_eq!(
            out,
            vec![
                DeviceOutput::Render {
                    sid,
                    payload: b"a".to_vec().into()
                },
                DeviceOutput::Render {
                    sid,
                    payload: b"b".to_vec().into()
                },
            ]
        );
        assert_eq!(d.delivered(), 2);
    }

    #[test]
    fn gap_triggers_backfill_poll() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::update(0, vec![])],
        });
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::update(5, vec![])],
        });
        assert!(out.contains(&DeviceOutput::BackfillPoll { sid }));
    }

    #[test]
    fn connection_loss_resubscribes_with_rewritten_headers() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let (sid2, _) = d.open_stream(header("/LVC/2"), vec![]);
        // BRASS patches sticky-routing info into stream 1's header.
        d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::RewriteRequest {
                patch: Json::obj([("brass_host", Json::from(7u64))]),
            }],
        });
        let frames = d.on_connection_lost();
        assert_eq!(frames.len(), 2);
        match &frames[0] {
            Frame::Subscribe { sid: s, header, .. } => {
                assert_eq!(*s, sid);
                assert_eq!(header.get("brass_host").and_then(Json::as_u64), Some(7));
            }
            other => panic!("expected subscribe, got {other:?}"),
        }
        match &frames[1] {
            Frame::Subscribe { sid: s, header, .. } => {
                assert_eq!(*s, sid2);
                assert!(header.get("brass_host").is_none());
            }
            other => panic!("expected subscribe, got {other:?}"),
        }
    }

    #[test]
    fn flow_status_toggles_connectivity_indicator() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::FlowStatus(burst::frame::FlowStatus::Degraded)],
        });
        assert_eq!(
            out,
            vec![DeviceOutput::ConnectivityChanged { degraded: true }]
        );
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::FlowStatus(burst::frame::FlowStatus::Recovered)],
        });
        assert_eq!(
            out,
            vec![DeviceOutput::ConnectivityChanged { degraded: false }]
        );
    }

    #[test]
    fn redirect_terminate_keeps_stream_for_retry() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::Terminate(TerminateReason::Redirect)],
        });
        assert_eq!(out, vec![DeviceOutput::StreamEnded { sid, retry: true }]);
        let retry = d.retry_stream(sid);
        assert!(matches!(retry, Some(Frame::Subscribe { .. })));
    }

    #[test]
    fn error_terminate_drops_stream() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::Terminate(TerminateReason::Denied)],
        });
        assert_eq!(out, vec![DeviceOutput::StreamEnded { sid, retry: false }]);
        assert_eq!(d.open_streams(), 0);
        assert!(d.retry_stream(sid).is_none());
    }

    #[test]
    fn cancel_removes_stream() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        assert_eq!(d.cancel_stream(sid), Some(Frame::Cancel { sid }));
        assert_eq!(d.open_streams(), 0);
        assert_eq!(d.cancel_stream(sid), None);
    }

    #[test]
    fn pings_are_answered_with_pongs() {
        let mut d = Device::new(1);
        let out = d.on_frame(&Frame::Ping { token: 42 });
        assert_eq!(out, vec![DeviceOutput::Send(Frame::Pong { token: 42 })]);
    }

    #[test]
    fn frames_for_unknown_streams_ignored() {
        let mut d = Device::new(1);
        let out = d.on_frame(&Frame::Response {
            sid: StreamId(99),
            batch: vec![Delta::update(0, vec![])],
        });
        assert!(out.is_empty());
    }

    #[test]
    fn hibernate_rehydrate_roundtrip() {
        let mut d = Device::new(17);
        let (sid1, _) = d.open_stream(header("/LVC/1"), vec![5, 6]);
        let (sid2, _) = d.open_stream(header("/Msgr/9"), vec![]);
        d.on_frame(&Frame::Response {
            sid: sid1,
            batch: vec![
                Delta::update(0, b"x".to_vec()),
                Delta::RewriteRequest {
                    patch: Json::obj([("brass_host", Json::from(3u64))]),
                },
            ],
        });
        d.on_frame(&Frame::Response {
            sid: sid2,
            batch: vec![Delta::Terminate(TerminateReason::Redirect)],
        });
        let blob = d.hibernate();
        assert_eq!(Device::frozen_open_sids(&blob), vec![sid1]);
        assert_eq!(Device::frozen_open_streams(&blob), 1);
        let r = Device::rehydrate(17, &blob);
        assert_eq!(r.id(), d.id());
        assert_eq!(r.delivered(), d.delivered());
        assert_eq!(r.open_sids(), d.open_sids());
        assert_eq!(r.stream(sid1), d.stream(sid1));
        assert_eq!(r.stream(sid2), d.stream(sid2));
        // A rehydrated device keeps allocating fresh stream ids.
        let (sid3, _) = Device::rehydrate(17, &blob).open_stream(header("/LVC/2"), vec![]);
        assert_eq!(sid3, StreamId(3));
    }

    #[test]
    fn ack_frame_reports_progress() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/Msgr/9"), vec![]);
        d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::update(0, vec![]), Delta::update(1, vec![])],
        });
        assert_eq!(d.ack(sid), Some(Frame::Ack { sid, seq: 1 }));
    }
}
