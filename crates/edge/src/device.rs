//! The end-user device model.
//!
//! A device owns one BURST connection (through a POP) carrying many
//! request-streams — "an application will have multiple (10+) active
//! request-streams simultaneously" (§3). Each stream is a
//! [`ClientStream`]; the device reacts to delivered batches, shows
//! connectivity state on flow-status deltas, and recovers from failures by
//! resubscribing every affected stream with its *current* header — which,
//! thanks to server rewrites, lands on the same BRASS (sticky routing) at
//! the right resume point.

use burst::frame::{Frame, Payload, StreamId, TerminateReason};
use burst::json::Json;
use burst::stream::{ClientAction, ClientStream, StreamState};

/// What a device does in response to protocol input.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceOutput {
    /// Send a frame upstream (to the POP).
    Send(Frame),
    /// An update payload reached the app: re-render the UI.
    Render {
        /// The stream it arrived on.
        sid: StreamId,
        /// The payload (shared with every other stream it fanned out to).
        payload: Payload,
    },
    /// A sequence gap means updates were lost; reliable apps poll the WAS.
    BackfillPoll {
        /// The affected stream.
        sid: StreamId,
    },
    /// Show/hide the connectivity indicator.
    ConnectivityChanged {
        /// `true` when degraded.
        degraded: bool,
    },
    /// A stream ended; `retry` says whether the device should resubscribe.
    StreamEnded {
        /// The stream.
        sid: StreamId,
        /// Whether the server asked for a retry (redirects, shutdowns).
        retry: bool,
    },
}

/// An end-user device (mobile app or browser tab).
pub struct Device {
    id: u64,
    streams: std::collections::HashMap<StreamId, ClientStream>,
    next_sid: u64,
    delivered: u64,
    renders: u64,
}

impl Device {
    /// Creates a device.
    pub fn new(id: u64) -> Self {
        Device {
            id,
            streams: std::collections::HashMap::new(),
            next_sid: 1,
            delivered: 0,
            renders: 0,
        }
    }

    /// This device's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of open (non-terminated) streams.
    pub fn open_streams(&self) -> usize {
        self.streams
            .values()
            .filter(|s| !matches!(s.state(), StreamState::Terminated(_)))
            .count()
    }

    /// Total updates delivered across all streams.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Looks at a stream's state (testing / assertions).
    pub fn stream(&self, sid: StreamId) -> Option<&ClientStream> {
        self.streams.get(&sid)
    }

    /// Ids of open (non-terminated) streams, oldest first.
    pub fn open_sids(&self) -> Vec<StreamId> {
        let mut sids: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|(_, s)| !matches!(s.state(), StreamState::Terminated(_)))
            .map(|(&sid, _)| sid)
            .collect();
        sids.sort_unstable();
        sids
    }

    /// Opens a new request-stream; returns its id and the subscribe frame.
    pub fn open_stream(&mut self, header: Json, body: Vec<u8>) -> (StreamId, Frame) {
        let sid = StreamId(self.next_sid);
        self.next_sid += 1;
        let stream = ClientStream::new(sid, header, body);
        let frame = stream.subscribe_request();
        self.streams.insert(sid, stream);
        (sid, frame)
    }

    /// Cancels a stream; returns the cancel frame.
    pub fn cancel_stream(&mut self, sid: StreamId) -> Option<Frame> {
        self.streams.remove(&sid)?;
        Some(Frame::Cancel { sid })
    }

    /// Handles a frame arriving from the POP.
    pub fn on_frame(&mut self, frame: &Frame) -> Vec<DeviceOutput> {
        let mut out = Vec::new();
        // Heartbeats are answered reflexively (§4 footnote 11).
        if let Frame::Ping { token } = frame {
            out.push(DeviceOutput::Send(Frame::Pong { token: *token }));
            return out;
        }
        let Frame::Response { sid, batch } = frame else {
            return out;
        };
        let Some(stream) = self.streams.get_mut(sid) else {
            return out;
        };
        for action in stream.on_batch(batch) {
            match action {
                ClientAction::Deliver(payload) => {
                    self.delivered += 1;
                    self.renders += 1;
                    out.push(DeviceOutput::Render { sid: *sid, payload });
                }
                ClientAction::GapDetected { .. } => {
                    out.push(DeviceOutput::BackfillPoll { sid: *sid });
                }
                ClientAction::NotifyDegraded => {
                    out.push(DeviceOutput::ConnectivityChanged { degraded: true });
                }
                ClientAction::NotifyRecovered => {
                    out.push(DeviceOutput::ConnectivityChanged { degraded: false });
                }
                ClientAction::HeaderRewritten => {}
                ClientAction::Terminated(reason) => {
                    let retry = matches!(
                        reason,
                        TerminateReason::Redirect | TerminateReason::ServerShutdown
                    );
                    out.push(DeviceOutput::StreamEnded { sid: *sid, retry });
                }
            }
        }
        // Drop terminated streams that will not retry.
        if let Some(s) = self.streams.get(sid) {
            if let StreamState::Terminated(reason) = s.state() {
                if !matches!(
                    reason,
                    TerminateReason::Redirect | TerminateReason::ServerShutdown
                ) {
                    self.streams.remove(sid);
                }
            }
        }
        out
    }

    /// Resubscribes a stream the server asked to retry (after a redirect or
    /// shutdown terminate). Returns the new subscribe frame.
    pub fn retry_stream(&mut self, sid: StreamId) -> Option<Frame> {
        let stream = self.streams.get_mut(&sid)?;
        Some(stream.resubscribe_request())
    }

    /// Handles loss of the POP connection: every stream degrades, and the
    /// device produces resubscribe frames to send once reconnected. The
    /// resubscribes use the current (rewritten) headers — sticky routing
    /// and resumption need no extra device logic.
    pub fn on_connection_lost(&mut self) -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut sids: Vec<StreamId> = self.streams.keys().copied().collect();
        sids.sort_unstable();
        for sid in sids {
            let stream = self.streams.get_mut(&sid).expect("key just listed");
            if matches!(stream.state(), StreamState::Terminated(_)) {
                continue;
            }
            stream.on_connection_lost();
            frames.push(stream.resubscribe_request());
        }
        frames
    }

    /// Builds an ack frame for a stream (reliable applications).
    pub fn ack(&self, sid: StreamId) -> Option<Frame> {
        self.streams.get(&sid).map(|s| s.ack_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst::frame::Delta;

    fn header(topic: &str) -> Json {
        Json::obj([
            ("viewer", Json::from(9u64)),
            ("app", Json::from("lvc")),
            ("topic", Json::from(topic)),
        ])
    }

    #[test]
    fn open_stream_produces_subscribe() {
        let mut d = Device::new(1);
        let (sid, frame) = d.open_stream(header("/LVC/1"), vec![]);
        match frame {
            Frame::Subscribe { sid: s, .. } => assert_eq!(s, sid),
            other => panic!("expected subscribe, got {other:?}"),
        }
        assert_eq!(d.open_streams(), 1);
    }

    #[test]
    fn updates_render_in_order() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![
                Delta::update(0, b"a".to_vec()),
                Delta::update(1, b"b".to_vec()),
            ],
        });
        assert_eq!(
            out,
            vec![
                DeviceOutput::Render {
                    sid,
                    payload: b"a".to_vec().into()
                },
                DeviceOutput::Render {
                    sid,
                    payload: b"b".to_vec().into()
                },
            ]
        );
        assert_eq!(d.delivered(), 2);
    }

    #[test]
    fn gap_triggers_backfill_poll() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::update(0, vec![])],
        });
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::update(5, vec![])],
        });
        assert!(out.contains(&DeviceOutput::BackfillPoll { sid }));
    }

    #[test]
    fn connection_loss_resubscribes_with_rewritten_headers() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let (sid2, _) = d.open_stream(header("/LVC/2"), vec![]);
        // BRASS patches sticky-routing info into stream 1's header.
        d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::RewriteRequest {
                patch: Json::obj([("brass_host", Json::from(7u64))]),
            }],
        });
        let frames = d.on_connection_lost();
        assert_eq!(frames.len(), 2);
        match &frames[0] {
            Frame::Subscribe { sid: s, header, .. } => {
                assert_eq!(*s, sid);
                assert_eq!(header.get("brass_host").and_then(Json::as_u64), Some(7));
            }
            other => panic!("expected subscribe, got {other:?}"),
        }
        match &frames[1] {
            Frame::Subscribe { sid: s, header, .. } => {
                assert_eq!(*s, sid2);
                assert!(header.get("brass_host").is_none());
            }
            other => panic!("expected subscribe, got {other:?}"),
        }
    }

    #[test]
    fn flow_status_toggles_connectivity_indicator() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::FlowStatus(burst::frame::FlowStatus::Degraded)],
        });
        assert_eq!(
            out,
            vec![DeviceOutput::ConnectivityChanged { degraded: true }]
        );
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::FlowStatus(burst::frame::FlowStatus::Recovered)],
        });
        assert_eq!(
            out,
            vec![DeviceOutput::ConnectivityChanged { degraded: false }]
        );
    }

    #[test]
    fn redirect_terminate_keeps_stream_for_retry() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::Terminate(TerminateReason::Redirect)],
        });
        assert_eq!(out, vec![DeviceOutput::StreamEnded { sid, retry: true }]);
        let retry = d.retry_stream(sid);
        assert!(matches!(retry, Some(Frame::Subscribe { .. })));
    }

    #[test]
    fn error_terminate_drops_stream() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        let out = d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::Terminate(TerminateReason::Denied)],
        });
        assert_eq!(out, vec![DeviceOutput::StreamEnded { sid, retry: false }]);
        assert_eq!(d.open_streams(), 0);
        assert!(d.retry_stream(sid).is_none());
    }

    #[test]
    fn cancel_removes_stream() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/LVC/1"), vec![]);
        assert_eq!(d.cancel_stream(sid), Some(Frame::Cancel { sid }));
        assert_eq!(d.open_streams(), 0);
        assert_eq!(d.cancel_stream(sid), None);
    }

    #[test]
    fn pings_are_answered_with_pongs() {
        let mut d = Device::new(1);
        let out = d.on_frame(&Frame::Ping { token: 42 });
        assert_eq!(out, vec![DeviceOutput::Send(Frame::Pong { token: 42 })]);
    }

    #[test]
    fn frames_for_unknown_streams_ignored() {
        let mut d = Device::new(1);
        let out = d.on_frame(&Frame::Response {
            sid: StreamId(99),
            batch: vec![Delta::update(0, vec![])],
        });
        assert!(out.is_empty());
    }

    #[test]
    fn ack_frame_reports_progress() {
        let mut d = Device::new(1);
        let (sid, _) = d.open_stream(header("/Msgr/9"), vec![]);
        d.on_frame(&Frame::Response {
            sid,
            batch: vec![Delta::update(0, vec![]), Delta::update(1, vec![])],
        });
        assert_eq!(d.ack(sid), Some(Frame::Ack { sid, seq: 1 }));
    }
}
