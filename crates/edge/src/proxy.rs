//! The reverse proxy at the datacenter edge.
//!
//! "Proxies determine which BRASS host to route device subscription
//! requests to. This routing is based on load, topic, or a combination of
//! both" (§3.2) — with sticky routing taking precedence when a header
//! carries a `brass_host` field patched in by a previous BRASS (§3.5).
//!
//! Proxies are first-class protocol participants: they keep a copy of each
//! stream's (rewritten) header and body so that when a BRASS host fails or
//! drains, the proxy — as "the component downstream from a failure that is
//! closest to the failure" (axiom 2) — re-establishes every affected stream
//! itself, while signalling the degradation and recovery to the devices
//! (axiom 1).

use std::collections::HashMap;

use burst::frame::{Delta, FlowStatus, Frame, StreamId};
use burst::heartbeat::{HeartbeatMonitor, PeerHealth};
use burst::json::Json;
use burst::stream::ProxyStreamTable;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};

/// Default microseconds between proxy→BRASS heartbeat pings.
pub const HOST_HEARTBEAT_INTERVAL_US: u64 = 5_000_000;
/// Default unanswered pings before a BRASS host is declared dead.
pub const HOST_HEARTBEAT_MISSES: u32 = 3;

/// How the proxy picks a BRASS host for a fresh (non-sticky) subscribe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteStrategy {
    /// Hash the topic onto a host: curtails Pylon subscription counts for
    /// low-fanout applications (all streams of a topic share a host).
    ByTopic,
    /// Route to the least-loaded host: spreads high-fanout applications.
    ByLoad,
}

/// What the proxy asks its environment to do.
#[derive(Clone, Debug, PartialEq)]
pub enum ProxyEffect {
    /// Forward a frame to a BRASS host.
    ToBrass {
        /// Target host.
        host: u32,
        /// Originating device (BRASS needs it to address the stream).
        device: u64,
        /// The frame.
        frame: Frame,
    },
    /// Forward a frame toward a device (via its POP).
    ToDevice {
        /// Target device.
        device: u64,
        /// The frame.
        frame: Frame,
    },
    /// Send a heartbeat ping to a BRASS host (§4 footnote 11).
    PingHost {
        /// Target host.
        host: u32,
        /// Ping token (echoed back in the pong).
        token: u64,
    },
    /// This proxy's heartbeat monitor declared a BRASS host dead. Emitted
    /// once per (proxy, failure), right before the repair effects.
    HostDown {
        /// The dead host.
        host: u32,
    },
}

/// Proxy counters (Fig. 10 bottom: proxy-induced stream reconnects).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProxyCounters {
    /// Streams re-established by this proxy after BRASS failures/drains.
    pub induced_reconnects: u64,
    /// Streams routed sticky (honouring `brass_host`).
    pub sticky_routes: u64,
    /// State entries garbage-collected.
    pub gc_collected: u64,
}

/// A reverse proxy at the edge of a BRASS datacenter.
pub struct ReverseProxy {
    id: u32,
    strategy: RouteStrategy,
    hosts: Vec<u32>,
    host_loads: HashMap<u32, u64>,
    table: ProxyStreamTable,
    counters: ProxyCounters,
    /// One heartbeat monitor per host in the routing pool: the proxy's only
    /// way of learning that a host died unplanned (no omniscient teardown).
    heartbeats: HashMap<u32, HeartbeatMonitor>,
    hb_interval_us: u64,
    hb_misses: u32,
}

impl ReverseProxy {
    /// Creates a proxy in front of the given BRASS hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty.
    pub fn new(id: u32, strategy: RouteStrategy, hosts: Vec<u32>) -> Self {
        assert!(!hosts.is_empty(), "proxy needs at least one BRASS host");
        ReverseProxy {
            id,
            strategy,
            host_loads: hosts.iter().map(|&h| (h, 0)).collect(),
            heartbeats: hosts
                .iter()
                .map(|&h| {
                    (
                        h,
                        HeartbeatMonitor::new(HOST_HEARTBEAT_INTERVAL_US, HOST_HEARTBEAT_MISSES),
                    )
                })
                .collect(),
            hb_interval_us: HOST_HEARTBEAT_INTERVAL_US,
            hb_misses: HOST_HEARTBEAT_MISSES,
            hosts,
            table: ProxyStreamTable::new(),
            counters: ProxyCounters::default(),
        }
    }

    /// Overrides the heartbeat cadence (builder-style; recreates the
    /// per-host monitors).
    ///
    /// # Panics
    ///
    /// Panics if `interval_us` or `misses` is zero.
    pub fn with_heartbeat(mut self, interval_us: u64, misses: u32) -> Self {
        self.hb_interval_us = interval_us;
        self.hb_misses = misses;
        self.heartbeats = self
            .hosts
            .iter()
            .map(|&h| (h, HeartbeatMonitor::new(interval_us, misses)))
            .collect();
        self
    }

    /// This proxy's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Streams currently tracked.
    pub fn stream_count(&self) -> usize {
        self.table.len()
    }

    /// Counters.
    pub fn counters(&self) -> &ProxyCounters {
        &self.counters
    }

    /// Removes a failed host from the routing pool (until re-added).
    pub fn remove_host(&mut self, host: u32) {
        self.hosts.retain(|&h| h != host);
        self.host_loads.remove(&host);
        self.heartbeats.remove(&host);
    }

    /// Adds a (possibly recovered) host to the routing pool and repairs any
    /// orphaned streams (streams whose repair previously had no surviving
    /// host to land on). Axiom 2: the closest downstream component repairs
    /// once connectivity returns.
    pub fn add_host(&mut self, host: u32) -> Vec<ProxyEffect> {
        if !self.hosts.contains(&host) {
            self.hosts.push(host);
            self.host_loads.insert(host, 0);
        }
        self.heartbeats
            .entry(host)
            .or_insert_with(|| HeartbeatMonitor::new(self.hb_interval_us, self.hb_misses));
        let live: Vec<u64> = self.hosts.iter().map(|&h| h as u64).collect();
        let orphans = self.table.streams_not_via(&live);
        let mut out = Vec::new();
        for (device, sid) in orphans {
            *self.host_loads.entry(host).or_insert(0) += 1;
            if let Some(frame) = self.table.rebuild_subscribe(device, sid, host as u64) {
                self.counters.induced_reconnects += 1;
                out.push(ProxyEffect::ToBrass {
                    host,
                    device,
                    frame,
                });
                out.push(ProxyEffect::ToDevice {
                    device,
                    frame: Frame::Response {
                        sid,
                        batch: vec![Delta::FlowStatus(FlowStatus::Recovered)],
                    },
                });
            }
        }
        out
    }

    /// Drives heartbeat-based failure detection (§4 footnote 11): emits a
    /// ping per host whose interval elapsed, and — for hosts whose miss
    /// threshold was crossed — a [`ProxyEffect::HostDown`] marker followed
    /// by the stream-repair effects of
    /// [`on_brass_host_failed`](Self::on_brass_host_failed). This is the
    /// only path by which a proxy learns of an unplanned host crash.
    pub fn on_heartbeat_tick(&mut self, now_us: u64) -> Vec<ProxyEffect> {
        let mut pool: Vec<u32> = self.hosts.clone();
        pool.sort_unstable();
        let mut out = Vec::new();
        let mut dead = Vec::new();
        for host in pool {
            let Some(hb) = self.heartbeats.get_mut(&host) else {
                continue;
            };
            if let Some(Frame::Ping { token }) = hb.on_tick(now_us) {
                out.push(ProxyEffect::PingHost { host, token });
            }
            if hb.health() == PeerHealth::Failed {
                dead.push(host);
            }
        }
        for host in dead {
            out.push(ProxyEffect::HostDown { host });
            out.extend(self.on_brass_host_failed(host, now_us));
        }
        out
    }

    /// Handles a heartbeat pong from a BRASS host.
    pub fn on_host_pong(&mut self, host: u32, token: u64) {
        if let Some(hb) = self.heartbeats.get_mut(&host) {
            hb.on_pong(token);
        }
    }

    /// Credits any frame received from a BRASS host as heartbeat
    /// liveness evidence.
    ///
    /// Without this, an overloaded-but-healthy host whose pong responses
    /// queue behind a data backlog is declared dead the moment the miss
    /// threshold crosses — even while it is actively streaming updates
    /// through this proxy — and the resulting repair storm re-subscribes
    /// every stream onto other hosts, amplifying the very overload that
    /// delayed the pongs. Data frames are proof of life; only true
    /// silence should fail a host.
    pub fn note_host_activity(&mut self, host: u32) {
        if let Some(hb) = self.heartbeats.get_mut(&host) {
            hb.on_activity();
        }
    }

    fn pick_host(&self, header: &Json) -> u32 {
        // Sticky routing first: a header-carried brass_host wins if alive.
        if let Some(h) = header.get("brass_host").and_then(Json::as_u64) {
            let h = h as u32;
            if self.hosts.contains(&h) {
                return h;
            }
        }
        match self.strategy {
            RouteStrategy::ByTopic => {
                let topic = header.get("topic").and_then(Json::as_str).unwrap_or("");
                let gql = header.get("gql").and_then(Json::as_str).unwrap_or("");
                let key = if topic.is_empty() { gql } else { topic };
                let h = pylon::hash::hash_key(key.as_bytes());
                self.hosts[(h % self.hosts.len() as u64) as usize]
            }
            RouteStrategy::ByLoad => *self
                .hosts
                .iter()
                .min_by_key(|h| (self.host_loads.get(h).copied().unwrap_or(0), **h))
                .expect("hosts is non-empty"),
        }
    }

    /// Handles a frame arriving from a POP (device side).
    pub fn on_downstream_frame(
        &mut self,
        device: u64,
        frame: Frame,
        now_us: u64,
    ) -> Vec<ProxyEffect> {
        match &frame {
            Frame::Subscribe { sid, header, body } => {
                let host = self.pick_host(header);
                if header
                    .get("brass_host")
                    .and_then(Json::as_u64)
                    .is_some_and(|h| h as u32 == host)
                {
                    self.counters.sticky_routes += 1;
                }
                *self.host_loads.entry(host).or_insert(0) += 1;
                self.table.on_subscribe(
                    device,
                    *sid,
                    header.clone(),
                    body.clone(),
                    Some(host as u64),
                    now_us,
                );
                vec![ProxyEffect::ToBrass {
                    host,
                    device,
                    frame,
                }]
            }
            Frame::Cancel { sid } => {
                let host = self
                    .table
                    .get(device, *sid)
                    .and_then(|e| e.upstream)
                    .map(|h| h as u32);
                self.table.on_cancel(device, *sid);
                match host {
                    Some(host) => vec![ProxyEffect::ToBrass {
                        host,
                        device,
                        frame,
                    }],
                    None => Vec::new(),
                }
            }
            Frame::Ack { sid, .. } => {
                let host = self
                    .table
                    .get(device, *sid)
                    .and_then(|e| e.upstream)
                    .map(|h| h as u32);
                match host {
                    Some(host) => vec![ProxyEffect::ToBrass {
                        host,
                        device,
                        frame,
                    }],
                    None => Vec::new(),
                }
            }
            _ => Vec::new(),
        }
    }

    /// Handles a frame arriving from a BRASS host (server side): updates
    /// stored stream state (rewrites, terminations) and forwards it down.
    pub fn on_upstream_frame(
        &mut self,
        device: u64,
        frame: Frame,
        now_us: u64,
    ) -> Vec<ProxyEffect> {
        if let Frame::Response { sid, batch } = &frame {
            self.table.on_response(device, *sid, batch, now_us);
        }
        vec![ProxyEffect::ToDevice { device, frame }]
    }

    /// Handles a detected BRASS host failure (axioms 1 and 2): every
    /// affected stream is signalled degraded to its device, re-routed to an
    /// alternate host from stored state, and signalled recovered.
    pub fn on_brass_host_failed(&mut self, host: u32, now_us: u64) -> Vec<ProxyEffect> {
        self.remove_host(host);
        let affected = self.table.streams_via(host as u64);
        let mut out = Vec::new();
        for (device, sid) in affected {
            // Axiom 1: inform the downstream endpoint.
            out.push(ProxyEffect::ToDevice {
                device,
                frame: Frame::Response {
                    sid,
                    batch: vec![Delta::FlowStatus(FlowStatus::Degraded)],
                },
            });
            if self.hosts.is_empty() {
                // Nothing to repair onto; the stream is orphaned until a
                // host returns (see [`add_host`](Self::add_host)).
                self.table.clear_upstream(device, sid);
                continue;
            }
            // Axiom 2: this proxy is the closest downstream component, so
            // it repairs the stream itself from stored state.
            let entry_header = self
                .table
                .get(device, sid)
                .map(|e| e.header.unpack())
                .expect("streams_via returned a live entry");
            let new_host = {
                // Ignore the stale sticky hint pointing at the dead host.
                let mut h = entry_header;
                if h.get("brass_host")
                    .and_then(Json::as_u64)
                    .is_some_and(|x| x as u32 == host)
                {
                    h.remove("brass_host");
                }
                self.pick_host(&h)
            };
            *self.host_loads.entry(new_host).or_insert(0) += 1;
            if let Some(frame) = self.table.rebuild_subscribe(device, sid, new_host as u64) {
                self.counters.induced_reconnects += 1;
                out.push(ProxyEffect::ToBrass {
                    host: new_host,
                    device,
                    frame,
                });
                out.push(ProxyEffect::ToDevice {
                    device,
                    frame: Frame::Response {
                        sid,
                        batch: vec![Delta::FlowStatus(FlowStatus::Recovered)],
                    },
                });
            }
        }
        let _ = now_us;
        out
    }

    /// Handles a BRASS host process restart that the heartbeat monitor
    /// never saw (crash + revive inside the miss window). The restarted
    /// process inherited none of the old incarnation's connections or
    /// stream state, so every stream routed through it is dead upstream
    /// even though ping evidence says the host is continuously healthy.
    /// The connection reset is what the proxy actually observes; it
    /// re-establishes each affected stream from stored state (axiom 2) —
    /// the host itself is live, so repair lands straight back on it —
    /// and restarts the heartbeat monitor so the fresh incarnation
    /// starts with a clean slate.
    pub fn on_host_restarted(&mut self, host: u32, now_us: u64) -> Vec<ProxyEffect> {
        if !self.hosts.contains(&host) {
            // The monitor did catch the death: streams were already
            // repaired off the host, and the failed/add_host pair owns
            // the rest of the lifecycle.
            return Vec::new();
        }
        self.heartbeats.insert(
            host,
            HeartbeatMonitor::new(self.hb_interval_us, self.hb_misses),
        );
        let affected = self.table.streams_via(host as u64);
        let mut out = Vec::new();
        for (device, sid) in affected {
            // Axiom 1: inform the downstream endpoint.
            out.push(ProxyEffect::ToDevice {
                device,
                frame: Frame::Response {
                    sid,
                    batch: vec![Delta::FlowStatus(FlowStatus::Degraded)],
                },
            });
            // Axiom 2: re-subscribe from stored state.
            if let Some(frame) = self.table.rebuild_subscribe(device, sid, host as u64) {
                self.counters.induced_reconnects += 1;
                out.push(ProxyEffect::ToBrass {
                    host,
                    device,
                    frame,
                });
                out.push(ProxyEffect::ToDevice {
                    device,
                    frame: Frame::Response {
                        sid,
                        batch: vec![Delta::FlowStatus(FlowStatus::Recovered)],
                    },
                });
            }
        }
        let _ = now_us;
        out
    }

    /// Handles a device connection closing at the POP: all of its stream
    /// state is dropped, and the owning BRASSes are informed via cancels
    /// (axiom 1 upstream direction).
    pub fn on_device_disconnected(&mut self, device: u64) -> Vec<ProxyEffect> {
        let mut out = Vec::new();
        // Collect (sid, host) pairs before mutating the table.
        let pairs: Vec<(StreamId, Option<u64>)> = {
            let mut v = Vec::new();
            for host in self.host_set() {
                for (d, sid) in self.table.streams_via(host as u64) {
                    if d == device {
                        v.push((sid, Some(host as u64)));
                    }
                }
            }
            v
        };
        for (sid, host) in pairs {
            if let Some(host) = host {
                out.push(ProxyEffect::ToBrass {
                    host: host as u32,
                    device,
                    frame: Frame::Cancel { sid },
                });
            }
        }
        let dropped = self.table.on_connection_closed(device);
        self.counters.gc_collected += dropped.len() as u64;
        out
    }

    /// Garbage-collects idle stream state (§3.5).
    pub fn gc(&mut self, cutoff_us: u64) -> usize {
        let n = self.table.gc(cutoff_us);
        self.counters.gc_collected += n as u64;
        n
    }

    fn host_set(&self) -> Vec<u32> {
        self.hosts.clone()
    }

    /// Writes the proxy's complete state into a snapshot. The host pool
    /// vec is written verbatim (its order feeds `ByTopic` modulo routing);
    /// hash-map fields are written in sorted key order.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.id);
        w.put_u8(match self.strategy {
            RouteStrategy::ByTopic => 0,
            RouteStrategy::ByLoad => 1,
        });
        w.put_usize(self.hosts.len());
        for &h in &self.hosts {
            w.put_u32(h);
        }
        let mut loads: Vec<u32> = self.host_loads.keys().copied().collect();
        loads.sort_unstable();
        w.put_usize(loads.len());
        for h in loads {
            w.put_u32(h);
            w.put_u64(self.host_loads[&h]);
        }
        self.table.snap(w);
        w.put_u64(self.counters.induced_reconnects);
        w.put_u64(self.counters.sticky_routes);
        w.put_u64(self.counters.gc_collected);
        let mut monitored: Vec<u32> = self.heartbeats.keys().copied().collect();
        monitored.sort_unstable();
        w.put_usize(monitored.len());
        for h in monitored {
            w.put_u32(h);
            self.heartbeats[&h].snap(w);
        }
        w.put_u64(self.hb_interval_us);
        w.put_u32(self.hb_misses);
    }

    /// Reads a proxy back, rejecting duplicate keys and bad tags.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let id = r.get_u32()?;
        let strategy = match r.get_u8()? {
            0 => RouteStrategy::ByTopic,
            1 => RouteStrategy::ByLoad,
            _ => return Err(SnapError::Invalid("bad route-strategy tag".into())),
        };
        let n = r.get_len()?;
        let mut hosts = Vec::with_capacity(n);
        for _ in 0..n {
            hosts.push(r.get_u32()?);
        }
        let n = r.get_len()?;
        let mut host_loads = HashMap::with_capacity(n);
        let mut last = None;
        for _ in 0..n {
            let h = r.get_u32()?;
            if last.is_some_and(|l| l >= h) {
                return Err(SnapError::Invalid("host_loads keys not ascending".into()));
            }
            last = Some(h);
            host_loads.insert(h, r.get_u64()?);
        }
        let table = ProxyStreamTable::restore(r)?;
        let counters = ProxyCounters {
            induced_reconnects: r.get_u64()?,
            sticky_routes: r.get_u64()?,
            gc_collected: r.get_u64()?,
        };
        let n = r.get_len()?;
        let mut heartbeats = HashMap::with_capacity(n);
        let mut last = None;
        for _ in 0..n {
            let h = r.get_u32()?;
            if last.is_some_and(|l| l >= h) {
                return Err(SnapError::Invalid("heartbeat keys not ascending".into()));
            }
            last = Some(h);
            heartbeats.insert(h, HeartbeatMonitor::restore(r)?);
        }
        let hb_interval_us = r.get_u64()?;
        let hb_misses = r.get_u32()?;
        Ok(ReverseProxy {
            id,
            strategy,
            hosts,
            host_loads,
            table,
            counters,
            heartbeats,
            hb_interval_us,
            hb_misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub_frame(sid: u64, header: Json) -> Frame {
        Frame::Subscribe {
            sid: StreamId(sid),
            header,
            body: vec![],
        }
    }

    fn header(topic: &str) -> Json {
        Json::obj([
            ("viewer", Json::from(1u64)),
            ("app", Json::from("lvc")),
            ("topic", Json::from(topic)),
        ])
    }

    #[test]
    fn by_topic_routing_is_consistent() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByTopic, vec![10, 11, 12]);
        let fx1 = p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        let fx2 = p.on_downstream_frame(2, sub_frame(1, header("/LVC/5")), 0);
        let host_of = |fx: &[ProxyEffect]| match &fx[0] {
            ProxyEffect::ToBrass { host, .. } => *host,
            other => panic!("expected ToBrass, got {other:?}"),
        };
        assert_eq!(host_of(&fx1), host_of(&fx2), "same topic, same host");
    }

    #[test]
    fn by_load_routing_balances() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11]);
        let mut hosts = Vec::new();
        for d in 0..4 {
            let fx = p.on_downstream_frame(d, sub_frame(1, header("/LVC/5")), 0);
            if let ProxyEffect::ToBrass { host, .. } = fx[0] {
                hosts.push(host);
            }
        }
        assert_eq!(hosts, vec![10, 11, 10, 11]);
    }

    #[test]
    fn sticky_header_wins_over_strategy() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11, 12]);
        let mut h = header("/LVC/5");
        h.set("brass_host", Json::from(12u64));
        let fx = p.on_downstream_frame(1, sub_frame(1, h), 0);
        assert!(matches!(fx[0], ProxyEffect::ToBrass { host: 12, .. }));
        assert_eq!(p.counters().sticky_routes, 1);
    }

    #[test]
    fn sticky_to_dead_host_falls_back() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11]);
        let mut h = header("/LVC/5");
        h.set("brass_host", Json::from(99u64)); // not in the pool
        let fx = p.on_downstream_frame(1, sub_frame(1, h), 0);
        match fx[0] {
            ProxyEffect::ToBrass { host, .. } => assert!(host == 10 || host == 11),
            ref other => panic!("expected ToBrass, got {other:?}"),
        }
    }

    #[test]
    fn brass_failure_repairs_streams_and_signals_device() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11]);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0); // → 10
        p.on_downstream_frame(2, sub_frame(1, header("/LVC/6")), 0); // → 11
        let fx = p.on_brass_host_failed(10, 100);
        // Degraded → resubscribe to 11 → recovered, for device 1 only.
        assert_eq!(fx.len(), 3);
        assert!(matches!(
            &fx[0],
            ProxyEffect::ToDevice { device: 1, frame: Frame::Response { batch, .. } }
            if batch == &vec![Delta::FlowStatus(FlowStatus::Degraded)]
        ));
        assert!(matches!(
            &fx[1],
            ProxyEffect::ToBrass {
                host: 11,
                device: 1,
                frame: Frame::Subscribe { .. }
            }
        ));
        assert!(matches!(
            &fx[2],
            ProxyEffect::ToDevice { device: 1, frame: Frame::Response { batch, .. } }
            if batch == &vec![Delta::FlowStatus(FlowStatus::Recovered)]
        ));
        assert_eq!(p.counters().induced_reconnects, 1);
    }

    #[test]
    fn repair_uses_rewritten_header() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11]);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        // BRASS 10 rewrites resumption state into the header in flight.
        p.on_upstream_frame(
            1,
            Frame::Response {
                sid: StreamId(1),
                batch: vec![Delta::RewriteRequest {
                    patch: Json::obj([("last_seq", Json::from(41u64))]),
                }],
            },
            10,
        );
        let fx = p.on_brass_host_failed(10, 100);
        let resub = fx.iter().find_map(|e| match e {
            ProxyEffect::ToBrass {
                frame: Frame::Subscribe { header, .. },
                ..
            } => header.get("last_seq").and_then(Json::as_u64),
            _ => None,
        });
        assert_eq!(resub, Some(41), "repair resumes from rewritten state");
    }

    #[test]
    fn failure_with_no_alternates_leaves_devices_degraded() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        let fx = p.on_brass_host_failed(10, 100);
        assert_eq!(fx.len(), 1, "only the degraded signal");
        assert_eq!(p.counters().induced_reconnects, 0);
    }

    #[test]
    fn host_return_repairs_orphaned_streams() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        // The only host dies: the stream is orphaned (degraded only).
        let fx = p.on_brass_host_failed(10, 100);
        assert_eq!(fx.len(), 1);
        // The host returns: the orphan is repaired onto it.
        let fx = p.add_host(10);
        assert!(matches!(
            &fx[0],
            ProxyEffect::ToBrass {
                host: 10,
                device: 1,
                frame: Frame::Subscribe { .. }
            }
        ));
        assert!(matches!(
            &fx[1],
            ProxyEffect::ToDevice { frame: Frame::Response { batch, .. }, .. }
            if batch == &vec![Delta::FlowStatus(FlowStatus::Recovered)]
        ));
        assert_eq!(p.counters().induced_reconnects, 1);
    }

    #[test]
    fn terminate_clears_stream_state() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        assert_eq!(p.stream_count(), 1);
        p.on_upstream_frame(
            1,
            Frame::Response {
                sid: StreamId(1),
                batch: vec![Delta::Terminate(burst::frame::TerminateReason::Cancelled)],
            },
            10,
        );
        assert_eq!(p.stream_count(), 0);
    }

    #[test]
    fn device_disconnect_cancels_upstream_and_gcs() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        p.on_downstream_frame(1, sub_frame(2, header("/LVC/6")), 0);
        p.on_downstream_frame(2, sub_frame(1, header("/LVC/7")), 0);
        let fx = p.on_device_disconnected(1);
        let cancels = fx
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ProxyEffect::ToBrass {
                        frame: Frame::Cancel { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(cancels, 2);
        assert_eq!(p.stream_count(), 1);
    }

    #[test]
    fn gc_drops_idle_state() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        p.on_downstream_frame(2, sub_frame(1, header("/LVC/6")), 1_000);
        assert_eq!(p.gc(500), 1);
        assert_eq!(p.stream_count(), 1);
    }

    #[test]
    fn cancel_for_unknown_stream_is_noop() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]);
        let fx = p.on_downstream_frame(1, Frame::Cancel { sid: StreamId(9) }, 0);
        assert!(fx.is_empty());
    }

    #[test]
    fn heartbeat_tick_pings_every_host() {
        let mut p =
            ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11]).with_heartbeat(1_000, 3);
        let fx = p.on_heartbeat_tick(1_000);
        let pinged: Vec<u32> = fx
            .iter()
            .filter_map(|e| match e {
                ProxyEffect::PingHost { host, .. } => Some(*host),
                _ => None,
            })
            .collect();
        assert_eq!(pinged, vec![10, 11]);
    }

    #[test]
    fn silent_host_is_detected_and_streams_repaired() {
        let mut p =
            ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11]).with_heartbeat(1_000, 3);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0); // → 10
        for t in 1..=4u64 {
            let fx = p.on_heartbeat_tick(t * 1_000);
            // Host 11 answers its pings; host 10 stays silent.
            for e in &fx {
                if let ProxyEffect::PingHost { host: 11, token } = e {
                    p.on_host_pong(11, *token);
                }
            }
            if t < 4 {
                assert!(
                    !fx.iter().any(|e| matches!(e, ProxyEffect::HostDown { .. })),
                    "not declared dead before the miss threshold (t={t})"
                );
            } else {
                // Miss threshold crossed: HostDown, then degraded →
                // resubscribe-to-11 → recovered repair effects.
                assert!(fx.contains(&ProxyEffect::HostDown { host: 10 }));
                assert!(fx.iter().any(|e| matches!(
                    e,
                    ProxyEffect::ToBrass {
                        host: 11,
                        device: 1,
                        frame: Frame::Subscribe { .. }
                    }
                )));
            }
        }
        assert_eq!(p.counters().induced_reconnects, 1);
    }

    #[test]
    fn responsive_hosts_are_never_declared_dead() {
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]).with_heartbeat(1_000, 3);
        for t in 1..=20u64 {
            let fx = p.on_heartbeat_tick(t * 1_000);
            for e in &fx {
                assert!(!matches!(e, ProxyEffect::HostDown { .. }));
                if let ProxyEffect::PingHost { host, token } = e {
                    p.on_host_pong(*host, *token);
                }
            }
        }
    }

    #[test]
    fn overloaded_host_streaming_data_is_never_declared_dead() {
        // Heartbeat-starvation regression: a host under pure overload
        // whose pong responses queue behind its data backlog must not
        // trip crash detection while its data frames keep arriving.
        let mut p = ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10]).with_heartbeat(1_000, 3);
        p.on_downstream_frame(1, sub_frame(1, header("/LVC/5")), 0);
        for t in 1..=20u64 {
            let fx = p.on_heartbeat_tick(t * 1_000);
            assert!(
                !fx.iter().any(|e| matches!(e, ProxyEffect::HostDown { .. })),
                "data-emitting host declared dead at t={t} despite activity"
            );
            // The host never answers a single ping — every pong is stuck
            // behind the backlog — but its update stream keeps flowing.
            p.note_host_activity(10);
        }
        assert_eq!(p.counters().induced_reconnects, 0);
    }

    #[test]
    fn readded_host_gets_a_fresh_monitor() {
        let mut p =
            ReverseProxy::new(1, RouteStrategy::ByLoad, vec![10, 11]).with_heartbeat(1_000, 3);
        for t in 1..=4u64 {
            for e in p.on_heartbeat_tick(t * 1_000) {
                if let ProxyEffect::PingHost { host: 11, token } = e {
                    p.on_host_pong(11, token);
                }
            }
        }
        // Host 10 is gone from the pool; ticks stop mentioning it.
        let fx = p.on_heartbeat_tick(5_000);
        assert!(!fx
            .iter()
            .any(|e| matches!(e, ProxyEffect::PingHost { host: 10, .. })));
        // It recovers: pings resume and it is not instantly re-failed.
        p.add_host(10);
        let fx = p.on_heartbeat_tick(6_000);
        assert!(fx
            .iter()
            .any(|e| matches!(e, ProxyEffect::PingHost { host: 10, .. })));
        assert!(!fx.iter().any(|e| matches!(e, ProxyEffect::HostDown { .. })));
    }
}
