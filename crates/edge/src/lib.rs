//! The edge: devices, POPs (points of presence), and reverse proxies.
//!
//! BURST request-streams span "multiple hops: first to a Point of Presence
//! (POP) at the edge, then to a reverse proxy at the edge of the target
//! datacenter, before ending at a BRASS" (§1). This crate provides the
//! sans-io state machines for each hop:
//!
//! * [`device::Device`] — owns the per-stream [`ClientStream`]s, issues
//!   subscribes, renders delivered updates, and resubscribes with the
//!   current (rewritten) headers after failures.
//! * [`pop::Pop`] — the edge access point: tracks device connections,
//!   relays frames, detects device disconnects, and repairs streams onto an
//!   alternate proxy when its upstream proxy fails.
//! * [`proxy::ReverseProxy`] — the datacenter-edge proxy: routes subscribes
//!   to BRASS hosts (sticky via the `brass_host` header field, otherwise by
//!   load or topic), stores per-stream state, and — when a BRASS host fails
//!   or drains — signals affected devices (axiom 1) and resubscribes every
//!   affected stream to an alternate host from stored state (axiom 2).
//!
//! [`ClientStream`]: burst::stream::ClientStream

pub mod device;
pub mod pop;
pub mod proxy;

pub use device::{Device, DeviceOutput};
pub use pop::{Pop, PopEffect};
pub use proxy::{ProxyEffect, ReverseProxy, RouteStrategy};
