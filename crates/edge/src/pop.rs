//! The POP (point of presence) at the network edge.
//!
//! POPs terminate device connections (the flaky last mile) and relay
//! frames to a reverse proxy at the target datacenter. Like proxies, POPs
//! keep per-stream state so they can repair streams when their upstream
//! proxy fails (axiom 2), and they are the component that *detects* device
//! disconnects, informing upstream parties (axiom 1: "If a client device
//! fails or loses TCP connectivity, POP Pi will detect this, and it will
//! inform all BRASSes servicing streams instantiated by the device").

use std::collections::HashMap;

use burst::frame::{Delta, FlowStatus, Frame};
use burst::heartbeat::{HeartbeatMonitor, PeerHealth};
use burst::stream::ProxyStreamTable;
use simkit::snap::{SnapError, SnapReader, SnapResult, SnapWriter};

/// Microseconds between device heartbeats.
const HEARTBEAT_INTERVAL_US: u64 = 5_000_000;
/// Unanswered heartbeats before a device is declared gone.
const HEARTBEAT_MISSES: u32 = 3;

/// What the POP asks its environment to do.
#[derive(Clone, Debug, PartialEq)]
pub enum PopEffect {
    /// Forward a frame to a reverse proxy.
    ToProxy {
        /// Target proxy.
        proxy: u32,
        /// Originating device.
        device: u64,
        /// The frame.
        frame: Frame,
    },
    /// Forward a frame to a connected device.
    ToDevice {
        /// Target device.
        device: u64,
        /// The frame.
        frame: Frame,
    },
    /// Inform upstream that a device vanished (proxies cancel its streams).
    DeviceGone {
        /// The proxy to inform.
        proxy: u32,
        /// The vanished device.
        device: u64,
    },
}

/// POP counters (Fig. 10 top: last-mile connections dropped).
#[derive(Clone, Copy, Debug, Default)]
pub struct PopCounters {
    /// Device connections dropped (detected here).
    pub device_drops: u64,
    /// Streams repaired after an upstream proxy failure.
    pub repaired_streams: u64,
}

/// A point of presence.
pub struct Pop {
    id: u32,
    /// Available upstream proxies.
    proxies: Vec<u32>,
    /// device → proxy currently carrying its streams.
    device_proxy: HashMap<u64, u32>,
    /// device → heartbeat monitor (fast last-mile failure detection).
    heartbeats: HashMap<u64, HeartbeatMonitor>,
    table: ProxyStreamTable,
    counters: PopCounters,
}

impl Pop {
    /// Creates a POP with the given upstream proxies.
    ///
    /// # Panics
    ///
    /// Panics if `proxies` is empty.
    pub fn new(id: u32, proxies: Vec<u32>) -> Self {
        assert!(!proxies.is_empty(), "POP needs at least one proxy");
        Pop {
            id,
            proxies,
            device_proxy: HashMap::new(),
            heartbeats: HashMap::new(),
            table: ProxyStreamTable::new(),
            counters: PopCounters::default(),
        }
    }

    /// This POP's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Counters.
    pub fn counters(&self) -> &PopCounters {
        &self.counters
    }

    /// Devices currently connected through this POP.
    pub fn connected_devices(&self) -> usize {
        self.device_proxy.len()
    }

    /// Streams tracked by this POP.
    pub fn stream_count(&self) -> usize {
        self.table.len()
    }

    fn proxy_for(&mut self, device: u64) -> u32 {
        if let Some(&p) = self.device_proxy.get(&device) {
            if self.proxies.contains(&p) {
                return p;
            }
        }
        // Stable assignment by device id.
        let p = self.proxies[(device % self.proxies.len() as u64) as usize];
        self.device_proxy.insert(device, p);
        p
    }

    /// Handles a frame from a connected device.
    pub fn on_device_frame(&mut self, device: u64, frame: Frame, now_us: u64) -> Vec<PopEffect> {
        // Any device traffic proves liveness; pongs specifically do.
        let hb = self
            .heartbeats
            .entry(device)
            .or_insert_with(|| HeartbeatMonitor::new(HEARTBEAT_INTERVAL_US, HEARTBEAT_MISSES));
        match &frame {
            Frame::Pong { token } => {
                hb.on_pong(*token);
                return Vec::new(); // Pongs terminate at the POP.
            }
            _ => hb.on_activity(),
        }
        let proxy = self.proxy_for(device);
        match &frame {
            Frame::Subscribe { sid, header, body } => {
                self.table.on_subscribe(
                    device,
                    *sid,
                    header.clone(),
                    body.clone(),
                    Some(proxy as u64),
                    now_us,
                );
            }
            Frame::Cancel { sid } => {
                self.table.on_cancel(device, *sid);
            }
            _ => {}
        }
        vec![PopEffect::ToProxy {
            proxy,
            device,
            frame,
        }]
    }

    /// Handles a frame from an upstream proxy: updates stored stream state
    /// and relays it to the device.
    pub fn on_proxy_frame(&mut self, device: u64, frame: Frame, now_us: u64) -> Vec<PopEffect> {
        if let Frame::Response { sid, batch } = &frame {
            self.table.on_response(device, *sid, batch, now_us);
        }
        vec![PopEffect::ToDevice { device, frame }]
    }

    /// Handles a detected device disconnect: stream state is dropped and
    /// upstream parties are informed (axiom 1).
    pub fn on_device_disconnected(&mut self, device: u64) -> Vec<PopEffect> {
        self.counters.device_drops += 1;
        self.table.on_connection_closed(device);
        self.heartbeats.remove(&device);
        match self.device_proxy.remove(&device) {
            Some(proxy) => vec![PopEffect::DeviceGone { proxy, device }],
            None => Vec::new(),
        }
    }

    /// Runs the heartbeat loop: emits due pings and converts silent devices
    /// into full disconnect handling — detecting dead last-mile links in
    /// seconds instead of waiting out a TCP timeout (§4 footnote 11).
    pub fn on_heartbeat_tick(&mut self, now_us: u64) -> Vec<PopEffect> {
        let mut out = Vec::new();
        let mut dead = Vec::new();
        // Stable (sorted) iteration: effect order must not depend on hash
        // order, or simulations lose run-to-run determinism.
        let mut monitored: Vec<u64> = self.heartbeats.keys().copied().collect();
        monitored.sort_unstable();
        for device in monitored {
            let Some(hb) = self.heartbeats.get_mut(&device) else {
                continue;
            };
            if let Some(ping) = hb.on_tick(now_us) {
                out.push(PopEffect::ToDevice {
                    device,
                    frame: ping,
                });
            }
            if hb.health() == PeerHealth::Failed {
                dead.push(device);
            }
        }
        for device in dead {
            out.extend(self.on_device_disconnected(device));
        }
        out
    }

    /// Removes a failed proxy and repairs every affected stream onto an
    /// alternate proxy from stored state (axiom 2), signalling affected
    /// devices along the way (axiom 1).
    pub fn on_proxy_failed(&mut self, proxy: u32) -> Vec<PopEffect> {
        self.proxies.retain(|&p| p != proxy);
        let affected = self.table.streams_via(proxy as u64);
        let mut out = Vec::new();
        for (device, sid) in affected {
            out.push(PopEffect::ToDevice {
                device,
                frame: Frame::Response {
                    sid,
                    batch: vec![Delta::FlowStatus(FlowStatus::Degraded)],
                },
            });
            if self.proxies.is_empty() {
                // Nothing to repair onto; mark the stream orphaned so
                // [`add_proxy`](Self::add_proxy) can find and repair it
                // when a proxy returns.
                self.table.clear_upstream(device, sid);
                continue;
            }
            let new_proxy = self.proxies[(device % self.proxies.len() as u64) as usize];
            self.device_proxy.insert(device, new_proxy);
            if let Some(frame) = self.table.rebuild_subscribe(device, sid, new_proxy as u64) {
                self.counters.repaired_streams += 1;
                out.push(PopEffect::ToProxy {
                    proxy: new_proxy,
                    device,
                    frame,
                });
                out.push(PopEffect::ToDevice {
                    device,
                    frame: Frame::Response {
                        sid,
                        batch: vec![Delta::FlowStatus(FlowStatus::Recovered)],
                    },
                });
            }
        }
        out
    }

    /// Re-adds a recovered proxy to the pool and repairs any orphaned
    /// streams — streams degraded by [`on_proxy_failed`](Self::on_proxy_failed)
    /// while the pool was empty. Without this re-repair the devices
    /// behind a fully-dark POP region stayed `Degraded` forever after
    /// the outage healed: the failure path only ever emitted the
    /// terminal `Recovered` when an alternate proxy existed *at failure
    /// time*, and nothing retried later (the proxy layer's
    /// [`add_host`](crate::proxy::ReverseProxy::add_host) already did;
    /// the POP layer did not).
    pub fn add_proxy(&mut self, proxy: u32) -> Vec<PopEffect> {
        if !self.proxies.contains(&proxy) {
            self.proxies.push(proxy);
        }
        let live: Vec<u64> = self.proxies.iter().map(|&p| p as u64).collect();
        let orphans = self.table.streams_not_via(&live);
        let mut out = Vec::new();
        for (device, sid) in orphans {
            let new_proxy = self.proxies[(device % self.proxies.len() as u64) as usize];
            self.device_proxy.insert(device, new_proxy);
            if let Some(frame) = self.table.rebuild_subscribe(device, sid, new_proxy as u64) {
                self.counters.repaired_streams += 1;
                out.push(PopEffect::ToProxy {
                    proxy: new_proxy,
                    device,
                    frame,
                });
                out.push(PopEffect::ToDevice {
                    device,
                    frame: Frame::Response {
                        sid,
                        batch: vec![Delta::FlowStatus(FlowStatus::Recovered)],
                    },
                });
            }
        }
        out
    }

    /// Writes the POP's complete state into a snapshot. Hash-map fields
    /// are written in sorted key order; the proxy pool vec is written
    /// verbatim because its order feeds the modulo assignment in
    /// [`proxy_for`](Self::proxy_for).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.id);
        w.put_usize(self.proxies.len());
        for &p in &self.proxies {
            w.put_u32(p);
        }
        let mut devices: Vec<u64> = self.device_proxy.keys().copied().collect();
        devices.sort_unstable();
        w.put_usize(devices.len());
        for d in devices {
            w.put_u64(d);
            w.put_u32(self.device_proxy[&d]);
        }
        let mut monitored: Vec<u64> = self.heartbeats.keys().copied().collect();
        monitored.sort_unstable();
        w.put_usize(monitored.len());
        for d in monitored {
            w.put_u64(d);
            self.heartbeats[&d].snap(w);
        }
        self.table.snap(w);
        w.put_u64(self.counters.device_drops);
        w.put_u64(self.counters.repaired_streams);
    }

    /// Reads a POP back, rejecting duplicate keys.
    pub fn restore(r: &mut SnapReader<'_>) -> SnapResult<Self> {
        let id = r.get_u32()?;
        let n = r.get_len()?;
        let mut proxies = Vec::with_capacity(n);
        for _ in 0..n {
            proxies.push(r.get_u32()?);
        }
        let n = r.get_len()?;
        let mut device_proxy = HashMap::with_capacity(n);
        let mut last = None;
        for _ in 0..n {
            let d = r.get_u64()?;
            if last.is_some_and(|l| l >= d) {
                return Err(SnapError::Invalid("device_proxy keys not ascending".into()));
            }
            last = Some(d);
            device_proxy.insert(d, r.get_u32()?);
        }
        let n = r.get_len()?;
        let mut heartbeats = HashMap::with_capacity(n);
        let mut last = None;
        for _ in 0..n {
            let d = r.get_u64()?;
            if last.is_some_and(|l| l >= d) {
                return Err(SnapError::Invalid("heartbeat keys not ascending".into()));
            }
            last = Some(d);
            heartbeats.insert(d, HeartbeatMonitor::restore(r)?);
        }
        let table = ProxyStreamTable::restore(r)?;
        let counters = PopCounters {
            device_drops: r.get_u64()?,
            repaired_streams: r.get_u64()?,
        };
        Ok(Pop {
            id,
            proxies,
            device_proxy,
            heartbeats,
            table,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burst::frame::StreamId;
    use burst::json::Json;

    fn header() -> Json {
        Json::obj([
            ("viewer", Json::from(1u64)),
            ("app", Json::from("lvc")),
            ("topic", Json::from("/LVC/5")),
        ])
    }

    fn sub(sid: u64) -> Frame {
        Frame::Subscribe {
            sid: StreamId(sid),
            header: header(),
            body: vec![],
        }
    }

    #[test]
    fn relays_device_frames_to_stable_proxy() {
        let mut p = Pop::new(1, vec![100, 101]);
        let fx1 = p.on_device_frame(7, sub(1), 0);
        let fx2 = p.on_device_frame(7, sub(2), 0);
        let proxy_of = |fx: &[PopEffect]| match &fx[0] {
            PopEffect::ToProxy { proxy, .. } => *proxy,
            other => panic!("expected ToProxy, got {other:?}"),
        };
        assert_eq!(proxy_of(&fx1), proxy_of(&fx2), "same device, same proxy");
        assert_eq!(p.stream_count(), 2);
        assert_eq!(p.connected_devices(), 1);
    }

    #[test]
    fn relays_responses_to_device() {
        let mut p = Pop::new(1, vec![100]);
        p.on_device_frame(7, sub(1), 0);
        let frame = Frame::Response {
            sid: StreamId(1),
            batch: vec![Delta::update(0, b"x".to_vec())],
        };
        let fx = p.on_proxy_frame(7, frame.clone(), 1);
        assert_eq!(fx, vec![PopEffect::ToDevice { device: 7, frame }]);
    }

    #[test]
    fn device_disconnect_informs_upstream_and_drops_state() {
        let mut p = Pop::new(1, vec![100]);
        p.on_device_frame(7, sub(1), 0);
        p.on_device_frame(7, sub(2), 0);
        let fx = p.on_device_disconnected(7);
        assert_eq!(
            fx,
            vec![PopEffect::DeviceGone {
                proxy: 100,
                device: 7
            }]
        );
        assert_eq!(p.stream_count(), 0);
        assert_eq!(p.counters().device_drops, 1);
    }

    #[test]
    fn heartbeats_detect_silent_devices() {
        let mut p = Pop::new(1, vec![100]);
        p.on_device_frame(7, sub(1), 0);
        // The device answers the first ping, then goes silent.
        let fx = p.on_heartbeat_tick(5_000_000);
        let token = fx
            .iter()
            .find_map(|e| match e {
                PopEffect::ToDevice {
                    frame: Frame::Ping { token },
                    ..
                } => Some(*token),
                _ => None,
            })
            .expect("ping emitted");
        p.on_device_frame(7, Frame::Pong { token }, 5_100_000);
        // Silence across the next four intervals crosses the threshold.
        let mut gone = false;
        for i in 2..=6u64 {
            let fx = p.on_heartbeat_tick(i * 5_000_000);
            gone |= fx
                .iter()
                .any(|e| matches!(e, PopEffect::DeviceGone { device: 7, .. }));
        }
        assert!(gone, "silent device declared disconnected");
        assert_eq!(p.stream_count(), 0, "its stream state was dropped");
        assert_eq!(p.counters().device_drops, 1);
    }

    #[test]
    fn active_devices_survive_heartbeat_ticks() {
        let mut p = Pop::new(1, vec![100]);
        p.on_device_frame(7, sub(1), 0);
        for i in 1..=10u64 {
            p.on_heartbeat_tick(i * 5_000_000);
            // The device keeps sending real traffic; no pongs needed.
            p.on_device_frame(
                7,
                Frame::Ack {
                    sid: StreamId(1),
                    seq: i,
                },
                i * 5_000_000 + 1,
            );
        }
        assert_eq!(p.connected_devices(), 1);
        assert_eq!(p.counters().device_drops, 0);
    }

    #[test]
    fn proxy_failure_repairs_streams() {
        let mut p = Pop::new(1, vec![100, 101]);
        // Device 200 maps to proxy 100 (200 % 2 == 0).
        p.on_device_frame(200, sub(1), 0);
        let fx = p.on_proxy_failed(100);
        assert_eq!(fx.len(), 3);
        assert!(matches!(
            &fx[0],
            PopEffect::ToDevice { frame: Frame::Response { batch, .. }, .. }
            if batch == &vec![Delta::FlowStatus(FlowStatus::Degraded)]
        ));
        assert!(matches!(
            &fx[1],
            PopEffect::ToProxy {
                proxy: 101,
                frame: Frame::Subscribe { .. },
                ..
            }
        ));
        assert!(matches!(
            &fx[2],
            PopEffect::ToDevice { frame: Frame::Response { batch, .. }, .. }
            if batch == &vec![Delta::FlowStatus(FlowStatus::Recovered)]
        ));
        assert_eq!(p.counters().repaired_streams, 1);
        // Future frames from the device go to the new proxy.
        let fx = p.on_device_frame(200, sub(2), 10);
        assert!(matches!(fx[0], PopEffect::ToProxy { proxy: 101, .. }));
    }

    #[test]
    fn proxy_failure_with_no_alternative_degrades_only() {
        let mut p = Pop::new(1, vec![100]);
        p.on_device_frame(200, sub(1), 0);
        let fx = p.on_proxy_failed(100);
        assert_eq!(fx.len(), 1);
        assert_eq!(p.counters().repaired_streams, 0);
    }

    #[test]
    fn proxy_return_repairs_streams_orphaned_by_total_outage() {
        // Regional outage: every proxy fails, so on_proxy_failed can only
        // degrade. When a proxy returns, add_proxy must repair the
        // orphans and send the terminal Recovered — otherwise the
        // devices stay Degraded forever.
        let mut p = Pop::new(1, vec![100]);
        p.on_device_frame(200, sub(1), 0);
        p.on_device_frame(201, sub(1), 0);
        let fx = p.on_proxy_failed(100);
        assert_eq!(fx.len(), 2, "degraded-only: no repair target exists");
        assert_eq!(p.counters().repaired_streams, 0);

        let fx = p.add_proxy(101);
        let resubs = fx
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    PopEffect::ToProxy {
                        proxy: 101,
                        frame: Frame::Subscribe { .. },
                        ..
                    }
                )
            })
            .count();
        let recovered = fx
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    PopEffect::ToDevice { frame: Frame::Response { batch, .. }, .. }
                    if batch == &vec![Delta::FlowStatus(FlowStatus::Recovered)]
                )
            })
            .count();
        assert_eq!(resubs, 2, "both orphaned streams resubscribed");
        assert_eq!(recovered, 2, "both devices told Recovered");
        assert_eq!(p.counters().repaired_streams, 2);
        // Future frames from the devices go to the new proxy.
        let fx = p.on_device_frame(200, sub(2), 10);
        assert!(matches!(fx[0], PopEffect::ToProxy { proxy: 101, .. }));
    }

    #[test]
    fn add_proxy_with_healthy_streams_repairs_nothing() {
        let mut p = Pop::new(1, vec![100]);
        p.on_device_frame(200, sub(1), 0);
        let fx = p.add_proxy(101);
        assert!(fx.is_empty(), "healthy streams are left on their proxy");
        assert_eq!(p.counters().repaired_streams, 0);
    }

    #[test]
    fn rewrite_observed_before_repair_is_used() {
        let mut p = Pop::new(1, vec![100, 101]);
        p.on_device_frame(200, sub(1), 0);
        p.on_proxy_frame(
            200,
            Frame::Response {
                sid: StreamId(1),
                batch: vec![Delta::RewriteRequest {
                    patch: Json::obj([("brass_host", Json::from(55u64))]),
                }],
            },
            5,
        );
        let fx = p.on_proxy_failed(100);
        let resub_header = fx.iter().find_map(|e| match e {
            PopEffect::ToProxy {
                frame: Frame::Subscribe { header, .. },
                ..
            } => Some(header.clone()),
            _ => None,
        });
        assert_eq!(
            resub_header
                .unwrap()
                .get("brass_host")
                .and_then(Json::as_u64),
            Some(55),
            "POP repair carries the rewritten sticky-routing state"
        );
    }
}
