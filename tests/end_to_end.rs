//! Cross-crate integration tests: full update pipelines through every
//! component, one application at a time.

use bladerunner_repro::config::SystemConfig;
use bladerunner_repro::scenario::LiveVideo;
use bladerunner_repro::sim::SystemSim;
use simkit::time::{SimDuration, SimTime};

fn sim(seed: u64) -> SystemSim {
    SystemSim::new(SystemConfig::small(), seed)
}

#[test]
fn lvc_pipeline_delivers_to_all_viewers() {
    let mut s = sim(1);
    let lv = LiveVideo::setup(&mut s, 5, 2, SimTime::ZERO);
    s.post_comment(
        SimTime::from_secs(3),
        lv.posters[0],
        lv.video,
        "a comment destined for every viewer present",
    );
    s.run_until(SimTime::from_secs(40));
    assert_eq!(s.metrics().deliveries.get(), 5, "one delivery per viewer");
    for &v in &lv.viewers {
        assert_eq!(s.device(v).unwrap().delivered(), 1);
    }
}

#[test]
fn language_filtering_is_per_viewer() {
    let mut s = sim(2);
    let video = s.was_mut().create_video("v");
    let english = s.create_user_device("english", "en");
    let french = s.create_user_device("french", "fr");
    let poster = s.create_user_device("poster", "en"); // posts in English
    s.subscribe_lvc(SimTime::ZERO, english, video);
    s.subscribe_lvc(SimTime::ZERO, french, video);
    s.post_comment(
        SimTime::from_secs(2),
        poster,
        video,
        "an english comment of agreeable quality",
    );
    s.run_until(SimTime::from_secs(40));
    assert_eq!(s.device(english).unwrap().delivered(), 1);
    assert_eq!(
        s.device(french).unwrap().delivered(),
        0,
        "language mismatch filtered at the BRASS"
    );
}

#[test]
fn privacy_blocks_filter_at_fetch_time() {
    let mut s = sim(3);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    let poster = s.create_user_device("poster", "en");
    s.was_mut().block(viewer, poster, 1);
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    s.post_comment(
        SimTime::from_secs(2),
        poster,
        video,
        "the viewer must never see this text",
    );
    s.run_until(SimTime::from_secs(40));
    assert_eq!(s.metrics().deliveries.get(), 0, "blocked author filtered");
    assert!(s.was_mut().counters().privacy_denials >= 1);
}

#[test]
fn typing_indicator_is_bidirectional_pair() {
    let mut s = sim(4);
    let a = s.create_user_device("a", "en");
    let b = s.create_user_device("b", "en");
    let thread = s.was_mut().create_thread(&[a, b]);
    s.subscribe_typing(SimTime::ZERO, a, thread, b);
    s.subscribe_typing(SimTime::ZERO, b, thread, a);
    s.set_typing(SimTime::from_secs(2), a, thread, true);
    s.set_typing(SimTime::from_secs(3), b, thread, true);
    s.run_until(SimTime::from_secs(20));
    assert_eq!(s.device(a).unwrap().delivered(), 1, "a sees b typing");
    assert_eq!(s.device(b).unwrap().delivered(), 1, "b sees a typing");
}

#[test]
fn stories_tray_updates_push_to_friends() {
    let mut s = sim(5);
    let viewer = s.create_user_device("viewer", "en");
    let author = s.create_user_device("author", "en");
    s.was_mut().add_friend(viewer, author, 1);
    s.subscribe_stories(SimTime::ZERO, viewer);
    s.create_story(SimTime::from_secs(3), author, "sunset");
    s.run_until(SimTime::from_secs(30));
    assert!(
        s.device(viewer).unwrap().delivered() >= 1,
        "the new container reached the tray"
    );
}

#[test]
fn active_status_batches() {
    let mut s = sim(6);
    let viewer = s.create_user_device("viewer", "en");
    let friend = s.create_user_device("friend", "en");
    s.was_mut().add_friend(viewer, friend, 1);
    s.subscribe_active_status(SimTime::ZERO, viewer);
    for t in (5..65).step_by(5) {
        s.set_online(SimTime::from_secs(t), friend);
    }
    s.run_until(SimTime::from_secs(120));
    let delivered = s.device(viewer).unwrap().delivered();
    assert!(delivered >= 1, "online status reached the viewer");
    assert!(
        delivered <= 3,
        "12 pings collapse into periodic batches, got {delivered}"
    );
}

#[test]
fn subscription_rewrite_installs_sticky_routing() {
    let mut s = sim(7);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    s.run_until(SimTime::from_secs(10));
    let dev = s.device(viewer).unwrap();
    let stream = dev.stream(burst::frame::StreamId(1)).unwrap();
    assert!(
        stream.header().get("brass_host").is_some(),
        "the accepting BRASS patched its identity into the header"
    );
}

#[test]
fn hot_video_strategy_switch_maintains_delivery() {
    let mut s = sim(8);
    let lv = LiveVideo::setup(&mut s, 3, 3, SimTime::ZERO);
    // Give the viewers some friends so per-poster overflow topics matter.
    for &v in &lv.viewers {
        for &p in &lv.posters {
            s.was_mut().add_friend(v, p, 1);
        }
    }
    s.was_mut()
        .set_video_hot(lv.video, Some(Default::default()));
    lv.drive_comments(
        &mut s,
        SimTime::from_secs(5),
        SimDuration::from_secs(60),
        1.0,
    );
    s.run_until(SimTime::from_secs(120));
    assert!(
        s.metrics().deliveries.get() > 0,
        "hot-mode routing still delivers headline comments"
    );
}

#[test]
fn cancels_stop_delivery() {
    let mut s = sim(9);
    let video = s.was_mut().create_video("v");
    let viewer = s.create_user_device("viewer", "en");
    let poster = s.create_user_device("poster", "en");
    s.subscribe_lvc(SimTime::ZERO, viewer, video);
    s.post_comment(
        SimTime::from_secs(2),
        poster,
        video,
        "before cancel this arrives",
    );
    s.run_until(SimTime::from_secs(20));
    assert_eq!(s.metrics().deliveries.get(), 1);
    s.cancel_stream(SimTime::from_secs(21), viewer, burst::frame::StreamId(1));
    s.post_comment(
        SimTime::from_secs(30),
        poster,
        video,
        "after cancel this is unheard",
    );
    s.run_until(SimTime::from_secs(60));
    assert_eq!(s.metrics().deliveries.get(), 1, "no delivery after cancel");
}

#[test]
fn device_stream_cap_evicts_oldest() {
    let mut config = SystemConfig::small();
    config.max_streams_per_device = 3;
    let mut s = SystemSim::new(config, 10);
    let viewer = s.create_user_device("viewer", "en");
    for i in 0..5u64 {
        let video = s.was_mut().create_video(&format!("v{i}"));
        s.subscribe_lvc(SimTime::from_secs(i), viewer, video);
    }
    s.run_until(SimTime::from_secs(30));
    assert_eq!(
        s.device(viewer).unwrap().open_streams(),
        3,
        "oldest streams evicted at the cap"
    );
}

#[test]
fn post_likes_aggregate_into_rate_limited_counters() {
    let mut s = sim(11);
    let post = s.was_mut().create_video("a post, reusing the object type");
    let viewer = s.create_user_device("viewer", "en");
    s.subscribe_likes(SimTime::ZERO, viewer, post);
    // A burst of 30 likes within a few seconds.
    for i in 0..30u64 {
        let liker = s.create_user_device(&format!("liker{i}"), "en");
        s.like_post(SimTime::from_millis(2_000 + i * 100), liker, post);
    }
    s.run_until(SimTime::from_secs(60));
    let delivered = s.device(viewer).unwrap().delivered();
    assert!(delivered >= 2, "counter pushes arrived: {delivered}");
    assert!(
        delivered <= 6,
        "30 likes collapse into a handful of counter pushes: {delivered}"
    );
    assert!(s.total_decisions() >= 30, "every like was a decision");
}

#[test]
fn topic_routing_curtails_pylon_subscriptions() {
    // §3.2: "For applications with low fanout, routing is typically based
    // on topic, so as to curtail the number of subscriptions maintained by
    // Pylon" — all watchers of one topic land on one host, which holds a
    // single Pylon subscription; load routing spreads them over the fleet.
    use edge::proxy::RouteStrategy;
    let run = |strategy: RouteStrategy| {
        let mut config = SystemConfig::small();
        config.route_strategy = strategy;
        config.pops = 1; // a single edge path keeps proxy choice fixed
        config.proxies = 1;
        let mut s = SystemSim::new(config, 12);
        let video = s.was_mut().create_video("v");
        for i in 0..12 {
            let d = s.create_user_device(&format!("d{i}"), "en");
            s.subscribe_lvc(SimTime::from_millis(i * 10), d, video);
        }
        s.run_until(SimTime::from_secs(20));
        s.pylon().counters().subscribes
    };
    let by_topic = run(RouteStrategy::ByTopic);
    let by_load = run(RouteStrategy::ByLoad);
    assert_eq!(by_topic, 1, "one host, one Pylon subscription");
    assert!(
        by_load > 1,
        "load routing spreads watchers across hosts: {by_load} subscriptions"
    );
}

#[test]
fn viral_post_notifications_coalesce() {
    let mut s = sim(13);
    let owner = s.create_user_device("owner", "en");
    let post = s.was_mut().create_post(owner, "going viral today");
    s.subscribe_notifications(SimTime::ZERO, owner);
    // 40 fans like the post within two seconds.
    for i in 0..40u64 {
        let fan = s.create_user_device(&format!("fan{i}"), "en");
        s.like_post(SimTime::from_millis(3_000 + i * 50), fan, post);
    }
    s.run_until(SimTime::from_secs(60));
    let delivered = s.device(owner).unwrap().delivered();
    assert!(delivered >= 1, "the owner heard about it");
    assert!(
        delivered <= 4,
        "40 likes coalesce into a handful of notifications: {delivered}"
    );
    assert!(s.total_decisions() >= 40);
}
